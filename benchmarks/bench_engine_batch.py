"""Micro-benchmark: AnalysisEngine batch execution vs an ad-hoc loop.

The traffic shape the engine is built for: a batch of analysis requests
where sources repeat across requests (the same program analysed as
baseline and speculative, and the same request arriving more than once).
The ad-hoc loop — what every driver did before the engine existed —
recompiles and re-analyses every request from scratch; the engine
compiles each distinct source once, answers repeated requests from the
result cache, and (on multi-core machines, with ``max_workers > 1``)
fans the remaining work out over a process pool.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_batch.py -s
"""

from __future__ import annotations

import time

from repro.bench.programs import WCET_BENCHMARKS, wcet_benchmark_source
from repro.cache.config import CacheConfig
from repro.engine import AnalysisEngine, AnalysisRequest, execute_request

CACHE = CacheConfig(num_lines=64, line_size=64)

#: Distinct programs in the batch.
PROGRAMS = 4

#: How many times the whole request set repeats (simulated repeat traffic).
REPEATS = 2


def build_batch() -> list[AnalysisRequest]:
    """A 16-request batch: 4 programs x {baseline, speculative} x 2 repeats."""
    requests: list[AnalysisRequest] = []
    for name in list(WCET_BENCHMARKS)[:PROGRAMS]:
        source = wcet_benchmark_source(name, CACHE.num_lines, CACHE.line_size)
        common = dict(source=source, line_size=CACHE.line_size, cache_config=CACHE, label=name)
        requests.append(AnalysisRequest.baseline(**common))
        requests.append(AnalysisRequest.speculative(**common))
    return requests * REPEATS


def run_adhoc(requests: list[AnalysisRequest]) -> list:
    """The pre-engine execution model: every request compiles and runs."""
    return [execute_request(request) for request in requests]


def test_batch_beats_adhoc_loop(benchmark, once):
    requests = build_batch()
    assert len(requests) >= 16

    started = time.perf_counter()
    adhoc_results = run_adhoc(requests)
    adhoc_time = time.perf_counter() - started

    engine = AnalysisEngine()
    started = time.perf_counter()
    batch_results = once(benchmark, engine.run_batch, requests)
    batch_time = time.perf_counter() - started

    # Identical classifications, in request order.
    assert len(batch_results) == len(adhoc_results)
    for mine, theirs in zip(batch_results, adhoc_results):
        assert mine.classifications == theirs.classifications
        assert mine.program_name == theirs.program_name

    speedup = adhoc_time / batch_time if batch_time else float("inf")
    print()
    print(
        f"{len(requests)}-request batch: ad-hoc loop {adhoc_time:.3f}s, "
        f"engine batch {batch_time:.3f}s, {speedup:.1f}x speedup"
    )
    print(engine.stats)

    stats = engine.stats
    # Each distinct source compiled exactly once...
    assert stats.compile.misses == PROGRAMS
    # ...and repeated requests were answered from the result cache.
    assert stats.results.hits >= len(requests) // 2
    # Caching must convert the repeat traffic into a real wall-clock win.
    assert batch_time < adhoc_time
