"""Incremental re-analysis: cold vs warm-started edit loops on Table 7.

Two workloads, both over the Table-7 crypto-kernel client harnesses that
leak under the speculative analysis:

* **edit loop** — the interactive cycle the incremental engine exists
  for: analyse a kernel once, then evaluate a stream of single-fence
  edits.  Cold re-runs the full parse → compile → solve pipeline per
  edit; warm patches the fence into the compiled IR and warm-starts
  from the retained snapshot (exactly what the synthesiser's inner
  loop does).  Reported: mean per-edit latency, cold vs warm.
* **mitigation synthesis** — the full detect → repair → re-verify loop
  (``synthesize_mitigation``), cold engine vs incremental engine.
  Reported: candidate-scoring wall-clock (``scoring_time``), the part
  the snapshot chaining accelerates.

Every warm verdict is asserted identical to its cold twin before any
timing is reported — a speedup that changed the answer is a bug, not
a result.  The full run (not ``--smoke``) additionally asserts the
PR's acceptance bar: **≥5x aggregate scoring speedup** across the
leaking kernels.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--smoke]

or under pytest (explicit path, as for all benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py -s
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.bench.crypto import CRYPTO_BENCHMARKS
from repro.bench.tables import table7_client_request
from repro.engine.engine import AnalysisEngine, execute_request
from repro.lang.parser import parse_program
from repro.mitigation.patch import (
    apply_fence_points,
    apply_fence_points_ir,
    enumerate_fence_points,
)
from repro.ir.printer import program_to_source
from repro.mitigation import synthesize_mitigation

#: Kernels whose harness leaks under speculation (Table 7's findings).
EXPECTED_LEAKY = ("hash", "encoder", "chacha20", "ocb", "des")

#: Acceptance bar for the aggregate scoring speedup on the full suite.
TARGET_SPEEDUP = 5.0


def _clear_vcfg_memo() -> None:
    # The scenario memo is global and content-keyed, and both workloads
    # build the same fence-patched program variants — without a reset,
    # whichever arm runs second gets free memo hits off the first arm's
    # work and the comparison measures cache luck, not the warm start.
    from repro.speculation.vcfg import _vcfg_memo

    _vcfg_memo.clear()


def bench_edit_loop(name: str, max_edits: int = 6) -> dict:
    """Re-analyse a stream of single-fence edits cold and warm.

    This is the interactive mitigation loop's inner cycle: place one
    fence, re-analyse, look at the verdict.  The warm arm does what the
    synthesiser does — patch the fence into the already-compiled IR
    (``apply_fence_points_ir``, which delta-derives the content
    fingerprints) and warm-start from the retained snapshot.  The cold
    arm is what a non-incremental tool pays for the same question: the
    full parse → compile → unroll → solve pipeline on the patched
    source.  IR-patched runs are verdict-identical but not line-faithful
    (fences carry no source line), so identity here is asserted on the
    verdict fields; full bit-identity of source-level warm re-analysis
    is pinned by ``tests/test_incremental.py``.
    """
    base = table7_client_request(name)
    program_ast = parse_program(base.source)
    points = enumerate_fence_points(program_ast)[:max_edits]

    engine = AnalysisEngine(incremental=True)
    engine.ensure_snapshot(base)
    program = engine.compile(base)

    cold_times, warm_times, edits = [], [], 0
    for index, point in enumerate(points):
        source = program_to_source(apply_fence_points(program_ast, (point,)))
        patched = apply_fence_points_ir(program, (point,), source)
        if patched is None:
            continue  # unmappable point: the product takes the cold path
        edits += 1
        edited = replace(base, source=source, warm_from=base.result_key())

        started = time.perf_counter()
        warm = engine.run_ephemeral(edited, patched)
        warm_times.append(time.perf_counter() - started)

        _clear_vcfg_memo()
        started = time.perf_counter()
        cold = execute_request(replace(edited, warm_from=None))
        cold_times.append(time.perf_counter() - started)

        for field in (
            "leak_site_count",
            "hit_count",
            "miss_count",
            "speculative_miss_count",
            "widenings",
        ):
            assert getattr(warm, field) == getattr(cold, field), (
                f"{name} edit #{index}: warm and cold disagree on {field}"
            )

    stats = engine.stats.incremental
    assert edits > 0, f"{name}: no mappable fence edits"
    assert stats.warm_hits == edits, (
        f"{name}: only {stats.warm_hits}/{edits} edits warm-started"
    )
    cold_mean = sum(cold_times) / len(cold_times)
    warm_mean = sum(warm_times) / len(warm_times)
    return {
        "kernel": name,
        "edits": edits,
        "cold_mean_ms": cold_mean * 1e3,
        "warm_mean_ms": warm_mean * 1e3,
        "speedup": cold_mean / warm_mean if warm_mean else float("inf"),
    }


def bench_synthesis(name: str, repeats: int = 2) -> dict:
    """Full mitigation synthesis, cold engine vs incremental engine.

    Each arm runs ``repeats`` times on a fresh engine and reports its
    best scoring time — the standard low-noise estimator; a single shot
    of a ~25ms loop is at the mercy of the allocator and the scheduler.
    """
    request = table7_client_request(name)
    cold_times, warm_times = [], []
    for _ in range(repeats):
        _clear_vcfg_memo()
        cold = synthesize_mitigation(
            request, engine=AnalysisEngine(incremental=False)
        )
        cold_times.append(cold.scoring_time)
        _clear_vcfg_memo()
        warm = synthesize_mitigation(
            request, engine=AnalysisEngine(incremental=True)
        )
        warm_times.append(warm.scoring_time)

    assert cold.chosen == warm.chosen, f"{name}: placements diverged"
    assert cold.leak_sites_before == warm.leak_sites_before
    cold_sel, warm_sel = cold.selected(), warm.selected()
    assert (cold_sel is None) == (warm_sel is None)
    if cold_sel is not None:
        assert cold_sel.points == warm_sel.points, f"{name}: fence points diverged"
        assert cold_sel.leak_sites_after == warm_sel.leak_sites_after
        assert cold_sel.verified and warm_sel.verified

    cold_best, warm_best = min(cold_times), min(warm_times)
    return {
        "kernel": name,
        "leak_sites_before": cold.leak_sites_before,
        "chosen": cold.chosen,
        "cold_scoring_ms": cold_best * 1e3,
        "warm_scoring_ms": warm_best * 1e3,
        "speedup": cold_best / warm_best if warm_best else float("inf"),
    }


def run_suite(names: list[str]) -> tuple[list[dict], list[dict]]:
    edit_rows = [bench_edit_loop(name) for name in names]
    synth_rows = [bench_synthesis(name) for name in names]
    return edit_rows, synth_rows


def aggregate_speedup(rows: list[dict], cold_key: str, warm_key: str) -> float:
    cold = sum(row[cold_key] for row in rows)
    warm = sum(row[warm_key] for row in rows)
    return cold / warm if warm else float("inf")


def report(edit_rows: list[dict], synth_rows: list[dict]) -> None:
    print("edit loop — per-edit re-analysis latency (mean over edits)")
    print(f"{'KERNEL':10s} {'EDITS':>5s} {'COLD ms':>9s} {'WARM ms':>9s} {'SPEEDUP':>8s}")
    for row in edit_rows:
        print(
            f"{row['kernel']:10s} {row['edits']:5d} "
            f"{row['cold_mean_ms']:9.2f} {row['warm_mean_ms']:9.2f} "
            f"{row['speedup']:7.1f}x"
        )
    agg_edit = aggregate_speedup(edit_rows, "cold_mean_ms", "warm_mean_ms")
    print(f"{'aggregate':10s} {'':5s} {'':9s} {'':9s} {agg_edit:7.1f}x")
    print()
    print("mitigation synthesis — candidate-scoring wall-clock")
    print(f"{'KERNEL':10s} {'LEAKS':>5s} {'COLD ms':>9s} {'WARM ms':>9s} {'SPEEDUP':>8s}")
    for row in synth_rows:
        print(
            f"{row['kernel']:10s} {row['leak_sites_before']:5d} "
            f"{row['cold_scoring_ms']:9.1f} {row['warm_scoring_ms']:9.1f} "
            f"{row['speedup']:7.1f}x"
        )
    agg = aggregate_speedup(synth_rows, "cold_scoring_ms", "warm_scoring_ms")
    print(f"{'aggregate':10s} {'':5s} {'':9s} {'':9s} {agg:7.1f}x")


def check(edit_rows: list[dict], synth_rows: list[dict], full: bool) -> None:
    for row in edit_rows:
        assert row["speedup"] > 1.0, (
            f"{row['kernel']}: warm edit loop slower than cold "
            f"({row['speedup']:.2f}x)"
        )
    if full:
        agg = aggregate_speedup(synth_rows, "cold_scoring_ms", "warm_scoring_ms")
        assert agg >= TARGET_SPEEDUP, (
            f"aggregate scoring speedup {agg:.1f}x below the "
            f"{TARGET_SPEEDUP:.0f}x acceptance bar"
        )


def test_incremental_cold_vs_warm(once=None, benchmark=None):
    """Pytest entry point (fixtures optional so plain invocation works).

    CI-sized: one kernel, verdict identity + warm-faster-than-cold only;
    the 5x aggregate bar is asserted by the full standalone run.
    """
    edit_rows, synth_rows = run_suite(["des"])
    print()
    report(edit_rows, synth_rows)
    check(edit_rows, synth_rows, full=False)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one kernel only, no 5x bar (CI-sized)")
    parser.add_argument("kernels", nargs="*",
                        help=f"kernels to benchmark (default: {', '.join(EXPECTED_LEAKY)})")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_incremental.json (see benchlib)")
    args = parser.parse_args(argv)
    names = args.kernels or list(EXPECTED_LEAKY)
    if args.smoke:
        names = names[:1]
    unknown = [name for name in names if name not in CRYPTO_BENCHMARKS]
    if unknown:
        print(f"unknown kernels: {unknown}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    edit_rows, synth_rows = run_suite(names)
    elapsed = time.perf_counter() - started
    report(edit_rows, synth_rows)
    print(f"\ntotal benchmark wall time: {elapsed:.2f}s")
    full = not args.smoke and set(names) >= set(EXPECTED_LEAKY)
    check(edit_rows, synth_rows, full=full)
    print(
        "OK: every warm verdict identical to cold"
        + ("; aggregate scoring speedup meets the 5x bar" if full else "")
    )
    if args.json:
        import benchlib

        path = benchlib.write_bench_json(
            "incremental",
            params={"smoke": args.smoke, "kernels": names},
            rows=edit_rows + synth_rows,
            speedups={
                "edit_loop": aggregate_speedup(
                    edit_rows, "cold_mean_ms", "warm_mean_ms"
                ),
                "synthesis_scoring": aggregate_speedup(
                    synth_rows, "cold_scoring_ms", "warm_scoring_ms"
                ),
            },
            wall_seconds=elapsed,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
