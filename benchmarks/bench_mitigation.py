"""Mitigation synthesis: naive vs optimized fence placement on Table 7.

For every Table-7 crypto kernel whose client harness leaks under the
speculative analysis, run the full detect → repair → re-verify loop and
compare the two placements the synthesiser evaluates:

* **baseline** — fence-every-branch (both arms of every source
  conditional; what blind ``lfence`` hardening does), and
* **optimized** — the dominator-guided greedy minimiser, which only
  fences what the analysis proves matters.

Reported per kernel: source fences inserted, fence instructions in the
compiled program, and the WCET-cycle overhead of each placement (cycle
bound from :func:`repro.apps.wcet.estimated_cycles` plus the per-fence
pipeline penalty).  Both placements must re-analyse to **zero** leak
sites; the optimized one is expected to use strictly fewer fences.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_mitigation.py [--smoke]

or under pytest (explicit path, as for all benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_mitigation.py -s
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.crypto import CRYPTO_BENCHMARKS
from repro.bench.tables import table7_client_request
from repro.engine.engine import AnalysisEngine
from repro.mitigation import MitigationResult, synthesize_mitigation

#: Kernels whose harness leaks under speculation (Table 7's findings).
EXPECTED_LEAKY = ("hash", "encoder", "chacha20", "ocb", "des")


def run_suite(names: list[str], engine: AnalysisEngine) -> list[MitigationResult]:
    return [
        synthesize_mitigation(table7_client_request(name), engine=engine)
        for name in names
    ]


def report(results: list[MitigationResult]) -> None:
    from repro.apps.report import format_mitigation_table

    print(format_mitigation_table(
        results, title="Mitigation synthesis — naive vs optimized placement"
    ))
    leaking = [result for result in results if result.leak_sites_before >= 1]
    fewer = sum(
        1
        for result in leaking
        if result.optimized is not None
        and result.baseline is not None
        and result.optimized.source_fences < result.baseline.source_fences
    )
    print(
        f"\noptimized placement uses strictly fewer fences on "
        f"{fewer}/{len(leaking)} leaking kernels"
    )


def check(results: list[MitigationResult]) -> None:
    """Assert the PR's acceptance shape over the *leaking* kernels; safe
    kernels (any CRYPTO_BENCHMARKS name is accepted on the command line)
    just have to come back marked safe."""
    leaking = [result for result in results if result.leak_sites_before >= 1]
    for result in results:
        if result not in leaking:
            assert result.already_safe and result.chosen == "none", result.name
            continue
        selected = result.selected()
        assert selected is not None and selected.verified, (
            f"{result.name}: no verified placement"
        )
        assert result.baseline is not None and result.baseline.verified
    fewer = sum(
        1
        for result in leaking
        if result.optimized is not None
        and result.optimized.verified
        and result.optimized.source_fences < result.baseline.source_fences
    )
    assert fewer * 2 >= len(leaking), (
        f"optimized beat the baseline on only {fewer}/{len(leaking)} leaking kernels"
    )


def test_mitigation_naive_vs_optimized(once=None, benchmark=None):
    """Pytest entry point (fixtures optional so plain invocation works)."""
    engine = AnalysisEngine()
    results = run_suite(list(EXPECTED_LEAKY), engine)
    print()
    report(results)
    print(engine.stats)
    check(results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one kernel only (CI-sized)")
    parser.add_argument("kernels", nargs="*",
                        help=f"kernels to mitigate (default: {', '.join(EXPECTED_LEAKY)})")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_mitigation.json (see benchlib)")
    args = parser.parse_args(argv)
    names = args.kernels or list(EXPECTED_LEAKY)
    if args.smoke:
        names = names[:1]
    unknown = [name for name in names if name not in CRYPTO_BENCHMARKS]
    if unknown:
        print(f"unknown kernels: {unknown}", file=sys.stderr)
        return 2
    engine = AnalysisEngine()
    started = time.perf_counter()
    results = run_suite(names, engine)
    elapsed = time.perf_counter() - started
    report(results)
    print(f"total synthesis wall time: {elapsed:.2f}s")
    check(results)
    print("OK: every placement verified to zero leak sites")
    if args.json:
        import benchlib

        path = benchlib.write_bench_json(
            "mitigation",
            params={"smoke": args.smoke, "kernels": names},
            rows=[
                {
                    "kernel": result.name,
                    "leak_sites_before": result.leak_sites_before,
                    "chosen": result.chosen,
                    "fences": (
                        result.selected().source_fences
                        if result.selected() is not None
                        else 0
                    ),
                    "baseline_fences": (
                        result.baseline.source_fences
                        if result.baseline is not None
                        else 0
                    ),
                    "verified": (
                        result.selected().verified
                        if result.selected() is not None
                        else True
                    ),
                    "wall_seconds": result.synthesis_time,
                }
                for result in results
            ],
            wall_seconds=elapsed,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
