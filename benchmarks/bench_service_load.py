"""Sustained-load latency: percentiles from the jobs' own lifecycle events.

Fires a duplicate-heavy burst of mixed traffic — WCET kernels analysed
both ways, Table-7 side-channel clients, plus concurrent ``mitigate``
calls — at a live daemon from many client threads, then computes
queue-wait and end-to-end latency percentiles **from the recorded
lifecycle events** (the ``events`` RPC), not from client-side clocks:

* queue wait  = ``dispatched.t`` - ``queued.t`` (a coalesced job's
  execution events live on its primary, so the daemon concatenates
  both logs and the wait is primary-dispatch minus own enqueue);
* end-to-end  = terminal (``done``/``failed``) ``t`` - ``queued.t``.

By default the harness owns its daemon (an in-process
:class:`~repro.service.server.ReproServer` on an ephemeral port);
``--port`` aims it at an already-running daemon instead, which is how CI
exercises the real service stack.  ``--events-out`` dumps every recorded
event as JSON lines and ``--summary-out`` the latency summary, so a CI
run leaves artifacts a human can replay.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_load.py [--smoke]

or under pytest (explicit path, as for all benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_load.py -s
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path

from repro.bench.programs import WCET_BENCHMARKS, wcet_benchmark_source
from repro.bench.tables import BENCH_CACHE, BENCH_SPECULATION, table7_client_request
from repro.engine.request import AnalysisRequest
from repro.service.client import ServiceClient
from repro.service.server import ReproServer

#: Crypto kernels used for the side-channel slice of the mix (cheap ones
#: first so ``--smoke`` stays fast).
SIDECHANNEL_KERNELS = ("hash", "encoder", "chacha20", "ocb")


def build_request_pool(wcet_programs: int, sidechannel_programs: int) -> list[AnalysisRequest]:
    """The distinct requests: each WCET kernel both ways, plus Table-7
    side-channel clients.  The submit stream cycles over this pool, so a
    small pool under a large burst is exactly the duplicate-heavy shape
    that exercises coalescing."""
    pool: list[AnalysisRequest] = []
    for name in list(WCET_BENCHMARKS)[:wcet_programs]:
        source = wcet_benchmark_source(name, BENCH_CACHE.num_lines, BENCH_CACHE.line_size)
        common = dict(
            source=source,
            line_size=BENCH_CACHE.line_size,
            cache_config=BENCH_CACHE,
            label=name,
        )
        pool.append(AnalysisRequest.baseline(**common))
        pool.append(AnalysisRequest.speculative(speculation=BENCH_SPECULATION, **common))
    for name in SIDECHANNEL_KERNELS[:sidechannel_programs]:
        pool.append(table7_client_request(name))
    return pool


def percentile(samples: list[float], q: float) -> float:
    """Exact nearest-rank percentile of raw samples (no bucketing)."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _submit_worker(host, port, requests, job_ids, errors):
    """One client thread: fire every submit first (non-blocking RPCs, so
    duplicates land while their primaries are still in flight), then
    block on the results."""
    try:
        with ServiceClient(host=host, port=port) as client:
            ids = [client.submit(request) for request in requests]
            job_ids.extend(ids)
            for job_id in ids:
                client.result(job_id, timeout=600)
    except Exception as error:  # noqa: BLE001 - recorded, re-raised by main
        errors.append(error)


def _mitigate_worker(host, port, count, errors):
    """Concurrent ``mitigate`` traffic on the connection threads — load
    the scheduler does not see, mixed in to keep the daemon honest."""
    try:
        with ServiceClient(host=host, port=port) as client:
            for index in range(count):
                name = SIDECHANNEL_KERNELS[index % 2]  # hash / encoder
                client.mitigate(table7_client_request(name), optimize=True)
    except Exception as error:  # noqa: BLE001
        errors.append(error)


def harvest_latencies(host: str, port: int, job_ids: list[str]):
    """Fetch every job's lifecycle log and extract the two latencies.

    Returns ``(all_events, queue_waits, e2e, coalesced_count, failed)``.
    Every latency is computed from the daemon's monotonic ``t`` stamps.
    """
    all_events: list[dict] = []
    queue_waits: list[float] = []
    e2e: list[float] = []
    coalesced = 0
    failed = 0
    with ServiceClient(host=host, port=port) as client:
        for job_id in job_ids:
            events = client.events(job_id)
            all_events.extend(events)
            queued = next(
                e for e in events if e["event"] == "queued" and e["job_id"] == job_id
            )
            if any(e["event"] == "coalesced" and e["job_id"] == job_id for e in events):
                coalesced += 1
            dispatched = next((e for e in events if e["event"] == "dispatched"), None)
            terminal = next(
                (e for e in events if e["event"] in ("done", "failed")), None
            )
            assert dispatched is not None and terminal is not None, (
                f"job {job_id} has no terminal lifecycle event"
            )
            if terminal["event"] == "failed":
                failed += 1
            # A job that coalesced into an already-dispatched primary
            # never waited: work on its behalf was in flight on arrival.
            queue_waits.append(max(0.0, dispatched["t"] - queued["t"]))
            e2e.append(terminal["t"] - queued["t"])
    return all_events, queue_waits, e2e, coalesced, failed


def run(args, host: str, port: int) -> dict:
    pool = build_request_pool(args.wcet_programs, args.sidechannel_programs)
    stream = [pool[i % len(pool)] for i in range(args.submits)]
    random.Random(args.seed).shuffle(stream)
    distinct = len({request.result_key() for request in pool})
    print(
        f"workload: {args.submits} submits over {distinct} distinct requests, "
        f"{args.threads} client threads, {args.mitigate} mitigate calls"
    )

    errors: list[Exception] = []
    job_ids: list[str] = []
    threads = []
    per_thread = (len(stream) + args.threads - 1) // args.threads
    started = time.perf_counter()
    for index in range(args.threads):
        chunk = stream[index * per_thread : (index + 1) * per_thread]
        if not chunk:
            continue
        thread = threading.Thread(
            target=_submit_worker, args=(host, port, chunk, job_ids, errors)
        )
        thread.start()
        threads.append(thread)
    if args.mitigate:
        thread = threading.Thread(
            target=_mitigate_worker, args=(host, port, args.mitigate, errors)
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]

    events, queue_waits, e2e, coalesced, failed = harvest_latencies(host, port, job_ids)
    assert len(job_ids) == args.submits, "every submit must produce a job id"
    assert failed == 0, f"{failed} job(s) failed under load"
    assert coalesced > 0, "a duplicate-heavy burst must coalesce at least one job"

    summary = {
        "submits": args.submits,
        "distinct_requests": distinct,
        "threads": args.threads,
        "mitigate_calls": args.mitigate,
        "wall_seconds": wall,
        "throughput_jobs_per_s": args.submits / wall if wall > 0 else float("inf"),
        "coalesced_jobs": coalesced,
        "coalesced_fraction": coalesced / len(job_ids),
        "failed_jobs": failed,
        "events_recorded": len(events),
        "queue_wait_ms": {
            "p50": percentile(queue_waits, 0.50) * 1e3,
            "p95": percentile(queue_waits, 0.95) * 1e3,
            "p99": percentile(queue_waits, 0.99) * 1e3,
        },
        "e2e_ms": {
            "p50": percentile(e2e, 0.50) * 1e3,
            "p95": percentile(e2e, 0.95) * 1e3,
            "p99": percentile(e2e, 0.99) * 1e3,
        },
    }
    for metric in ("queue_wait_ms", "e2e_ms"):
        p = summary[metric]
        assert p["p50"] <= p["p95"] <= p["p99"], f"{metric} percentiles not monotone: {p}"

    print(f"burst wall time: {wall:.3f}s ({summary['throughput_jobs_per_s']:.1f} jobs/s)")
    print(
        f"coalesced: {coalesced}/{len(job_ids)} jobs "
        f"({100 * summary['coalesced_fraction']:.1f}%)"
    )
    for metric, label in (("queue_wait_ms", "queue wait"), ("e2e_ms", "end-to-end")):
        p = summary[metric]
        print(
            f"{label:>11}: p50={p['p50']:8.2f}ms  p95={p['p95']:8.2f}ms  "
            f"p99={p['p99']:8.2f}ms"
        )

    if args.events_out:
        path = Path(args.events_out)
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        print(f"wrote {len(events)} lifecycle events to {path}")
    if args.summary_out:
        Path(args.summary_out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote summary to {args.summary_out}")
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small burst for CI (~60 submits, 4 threads)")
    parser.add_argument("--submits", type=int, default=600,
                        help="total submit calls (duplicate-heavy: cycles the pool)")
    parser.add_argument("--threads", type=int, default=8,
                        help="concurrent client connections")
    parser.add_argument("--wcet-programs", type=int, default=4)
    parser.add_argument("--sidechannel-programs", type=int, default=2)
    parser.add_argument("--mitigate", type=int, default=2,
                        help="concurrent mitigate calls mixed into the burst")
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="target a running daemon instead of spawning one")
    parser.add_argument("--max-workers", type=int, default=2,
                        help="workers for the spawned daemon (ignored with --port)")
    parser.add_argument("--events-out", default=None,
                        help="write every recorded lifecycle event as JSON lines")
    parser.add_argument("--summary-out", default=None,
                        help="write the latency summary as JSON")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_service_load.json (see benchlib)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.submits = min(args.submits, 60)
        args.threads = min(args.threads, 4)
        args.wcet_programs = min(args.wcet_programs, 2)
        args.sidechannel_programs = min(args.sidechannel_programs, 1)
        args.mitigate = min(args.mitigate, 1)

    if args.port is not None:
        summary = run(args, args.host, args.port)
    else:
        server = ReproServer(port=0, max_workers=args.max_workers).start()
        try:
            summary = run(args, server.host, server.port)
        finally:
            server.stop()

    if args.json:
        import benchlib

        benchlib_path = benchlib.write_bench_json(
            "service_load",
            params={
                "smoke": args.smoke,
                "submits": args.submits,
                "threads": args.threads,
                "mitigate": args.mitigate,
            },
            rows=[
                {"metric": "queue_wait_ms", **summary["queue_wait_ms"]},
                {"metric": "e2e_ms", **summary["e2e_ms"]},
                {
                    "metric": "burst",
                    "wall_seconds": summary["wall_seconds"],
                    "coalesced_fraction": summary["coalesced_fraction"],
                },
            ],
            wall_seconds=summary["wall_seconds"],
        )
        print(f"wrote {benchlib_path}")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (explicit: pytest benchmarks/bench_service_load.py)
# ----------------------------------------------------------------------
def test_latency_percentiles_from_lifecycle_events(tmp_path):
    argv = [
        "--smoke",
        "--events-out", str(tmp_path / "events.jsonl"),
        "--summary-out", str(tmp_path / "summary.json"),
    ]
    assert main(argv) == 0
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["coalesced_jobs"] > 0
    assert summary["e2e_ms"]["p50"] <= summary["e2e_ms"]["p99"]
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    assert len(lines) == summary["events_recorded"]


if __name__ == "__main__":
    sys.exit(main())
