"""E5 — Table 5: execution-time estimation on the WCET benchmark set.

Runs the non-speculative and speculative analyses on all ten synthetic
Table-3 benchmarks and prints the Table-5 columns (analysis time, #Miss,
#SpMiss, #Branch, #Iteration).  The shape to reproduce: the speculative
analysis never reports fewer misses, reports strictly more on most
benchmarks, and takes longer.

All 20 analyses are submitted to a fresh :class:`AnalysisEngine` as one
batch; set ``REPRO_MAX_WORKERS`` (or pass ``max_workers``) to fan the
batch out over a process pool on multi-core machines.
"""

from repro.apps.report import format_comparison_table
from repro.bench.tables import generate_table5
from repro.engine import AnalysisEngine


def test_table5_execution_time_estimation(benchmark, once):
    engine = AnalysisEngine()
    rows = once(benchmark, generate_table5, engine=engine)

    print()
    print(format_comparison_table(rows, title="Table 5 — execution time estimation"))
    print(engine.stats)

    assert len(rows) == 10
    for row in rows:
        assert row.speculative.misses >= row.non_speculative.misses
    strictly_more = sum(
        1 for row in rows if row.speculative.misses > row.non_speculative.misses
    )
    assert strictly_more >= 7
    # The two small-working-set benchmarks agree, as in the paper.
    by_name = {row.name: row for row in rows}
    assert by_name["vga"].speculative.misses == by_name["vga"].non_speculative.misses
    assert by_name["jcphuff"].speculative.misses == by_name["jcphuff"].non_speculative.misses
