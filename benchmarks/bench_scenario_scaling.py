"""Scenario-count scaling of the multi-color engine.

The multi-color lifting exists so that *all* speculation scenarios are
analysed in one pass — which only pays off if the per-visit cost does not
itself grow with the scenario count.  This benchmark sweeps synthetic
straight-line kernels with 8 → 256 data-dependent branches (16 → 512
scenarios, see :func:`repro.bench.programs.branchy_kernel_source`) and
times three schedulers on each:

* **pre-PR** — a faithful reconstruction of the engine before the sparse
  rebuild: dense per-visit re-transfer of every slot at the block, the
  O(#scenarios) linear ``vcfg.scenario(color)`` scan on every slot visit,
  the sort-per-pop ``compute_window``, and the inverted
  farthest-postdominator convergence points (resume slots survived to the
  last join instead of the branch's merge point);
* **dense** — the retained in-tree reference (``mode="dense"``): same
  per-visit re-transfer, but with the O(1) lookups and the corrected
  convergence points;
* **sparse** — the default delta-driven engine, which re-transfers only
  slots whose inputs changed.

Classifications are asserted bit-identical between the dense reference
and the sparse engine on every size (they share one schedule by
construction), and — on these loop-free kernels, where widening never
fires — also for the scenario-sharded scheduler.  In full mode the
128-branch kernel must show the sparse engine at least 5x faster than
the pre-PR reconstruction.

With ``--backend threads|processes`` the sharded column runs on that
shard backend instead of the serial in-process scheduler, a serial
sharded run is timed alongside it for comparison, and results are
asserted bit-identical between the two.  In full mode with
``--backend processes`` the 256-branch kernel must additionally show the
process pool at least 2.5x faster than the serial sharded run — skipped
(with a note) on machines with fewer cores than ``--workers``, where the
hardware cannot express the speedup.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scenario_scaling.py \
        [--smoke] [--backend processes] [--workers 4]

or under pytest (explicit path, as for all benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenario_scaling.py -s
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import time

from repro.analysis.multicolor import SpeculativeCacheAnalysis
from repro.bench.programs import branchy_kernel_source
from repro.cache.config import CacheConfig
from repro.frontend import compile_source
from repro.ir.dominators import VIRTUAL_EXIT, compute_postdominators
from repro.speculation.config import SpeculationConfig

#: Branch counts swept in full mode.  The pre-PR reconstruction is
#: quadratic-ish in the branch count, so it is only timed up to
#: MAX_REFERENCE_BRANCHES; the sparse engine runs the whole sweep.
FULL_SIZES = (8, 16, 32, 64, 128, 256)
SMOKE_SIZES = (8, 16)
MAX_REFERENCE_BRANCHES = 128

#: Small states (4-line cache) and a medium window keep a single transfer
#: cheap, so the sweep isolates *scheduling* cost rather than abstract-
#: domain cost; the windows still overlap ~10 diamonds, which is what
#: populates the blocks with many concurrent slots.
BENCH_CACHE = CacheConfig(num_lines=4, line_size=64)
BENCH_SPECULATION = SpeculationConfig(depth_miss=64, depth_hit=16)

#: Required sparse-over-pre-PR speedup on the 128-branch kernel.
REQUIRED_SPEEDUP_AT_128 = 5.0

#: Required process-pool-over-serial-sharded speedup on the 256-branch
#: kernel (full mode with ``--backend processes``, given enough cores).
REQUIRED_SHARD_SPEEDUP_AT_256 = 2.5


def _legacy_farthest_postdominator(cfg, pdom, block):
    """The pre-PR convergence-point selection (inverted chain test plus the
    ``sorted(...)[0]`` fallback): picks the postdominator *nearest the
    exit*, not the branch's merge point."""
    candidates = pdom.get(block, set()) - {block, VIRTUAL_EXIT}
    if not candidates:
        return None
    for candidate in candidates:
        if all(candidate in pdom[other] for other in candidates if other != candidate):
            return candidate
    return sorted(candidates)[0]


class PrePRReference(SpeculativeCacheAnalysis):
    """The engine as it behaved before the sparse rebuild (see module doc)."""

    def __init__(self, *args, **kwargs):
        kwargs["mode"] = "dense"
        super().__init__(*args, **kwargs)
        pdom = compute_postdominators(self.cfg)
        self.vcfg.scenarios = [
            dataclasses.replace(
                scenario,
                convergence_block=_legacy_farthest_postdominator(
                    self.cfg, pdom, scenario.branch_block
                ),
            )
            for scenario in self.vcfg.scenarios
        ]
        self.vcfg.invalidate_indices()
        self._scenario_by_color = {s.color: s for s in self.vcfg.scenarios}
        self._scenarios_by_branch = {}
        for scenario in self.vcfg.scenarios:
            self._scenarios_by_branch.setdefault(scenario.branch_block, []).append(scenario)

    def _linear_scenario_scan(self, color):
        for scenario in self.vcfg.scenarios:
            if scenario.color == color:
                return scenario
        raise KeyError(color)

    def _process_window_slot(self, name, slot, slot_state, successors, chooser=None):
        self._linear_scenario_scan(slot[1])
        return super()._process_window_slot(name, slot, slot_state, successors, chooser)

    def _process_resume_slot(self, name, slot, slot_state, successors):
        self._linear_scenario_scan(slot[1])
        return super()._process_resume_slot(name, slot, slot_state, successors)


def _timed(factory):
    started = time.perf_counter()
    result = factory().run()
    return time.perf_counter() - started, result


def run_sweep(sizes, shards: int, time_reference: bool, backend: str = "serial"):
    rows = []
    for num_branches in sizes:
        program = compile_source(branchy_kernel_source(num_branches))

        def engine(**kwargs):
            return SpeculativeCacheAnalysis(
                program,
                cache_config=BENCH_CACHE,
                speculation=BENCH_SPECULATION,
                **kwargs,
            )

        sparse_time, sparse = _timed(engine)
        dense_time, dense = _timed(lambda: engine(mode="dense"))
        assert dense.classifications == sparse.classifications, (
            f"sparse/dense divergence at {num_branches} branches"
        )
        assert dense.iterations == sparse.iterations, (
            f"sparse/dense schedule divergence at {num_branches} branches"
        )
        # The serial sharded scheduler optimises for distribution, not
        # single-thread latency; its redundant outer rounds make it
        # uncompetitive on the largest kernels, so it is swept only up to
        # the reference cut-off.  A parallel backend is the point of the
        # exercise, so it runs the whole sweep, with a serial sharded run
        # timed alongside for the speedup ratio and the identity check.
        sharded_time = sharded_serial_time = None
        run_parallel = backend != "serial"
        run_serial = num_branches <= MAX_REFERENCE_BRANCHES or run_parallel
        if run_serial:
            sharded_serial_time, sharded_serial = _timed(
                lambda: engine(scenario_shards=shards)
            )
            assert sharded_serial.classifications == sparse.classifications, (
                f"sharded divergence at {num_branches} branches "
                "(unexpected: these kernels are loop-free, widening never fires)"
            )
        if run_parallel:
            sharded_time, sharded = _timed(
                lambda: engine(scenario_shards=shards, shard_backend=backend)
            )
            assert sharded.entry_states == sharded_serial.entry_states, (
                f"{backend} sharding diverged from serial sharding "
                f"at {num_branches} branches"
            )
            assert sharded.iterations == sharded_serial.iterations
            assert sharded.classifications == sharded_serial.classifications
        else:
            sharded_time, sharded_serial_time = sharded_serial_time, None
        rows.append(
            {
                "branches": num_branches,
                "scenarios": 2 * num_branches,
                "pre_pr": (
                    _timed(
                        lambda: PrePRReference(
                            program,
                            cache_config=BENCH_CACHE,
                            speculation=BENCH_SPECULATION,
                        )
                    )[0]
                    if time_reference and num_branches <= MAX_REFERENCE_BRANCHES
                    else None
                ),
                "dense": dense_time,
                "sparse": sparse_time,
                "sharded": sharded_time,
                "sharded_serial": sharded_serial_time,
                "iterations": sparse.iterations,
            }
        )
    return rows


def report(rows, shards: int, backend: str):
    sharded_label = (
        f"sharded x{shards}" if backend == "serial" else f"{backend} x{shards}"
    )
    serial_column = "" if backend == "serial" else f" {'serial-shard':>12}"
    print(
        f"{'branches':>8} {'scenarios':>9} {'pre-PR':>10} {'dense':>10} "
        f"{'sparse':>10} {sharded_label:>12}{serial_column} {'pre-PR/sparse':>14}"
    )
    for row in rows:
        pre = "-" if row["pre_pr"] is None else f"{row['pre_pr'] * 1000:8.1f}ms"
        sharded = (
            "-" if row["sharded"] is None else f"{row['sharded'] * 1000:8.1f}ms"
        )
        serial_cell = ""
        if backend != "serial":
            serial_time = row["sharded_serial"]
            serial_cell = (
                f" {'-':>12}"
                if serial_time is None
                else f" {serial_time * 1000:10.1f}ms"
            )
        ratio = (
            "-"
            if row["pre_pr"] is None
            else f"{row['pre_pr'] / row['sparse']:12.1f}x"
        )
        print(
            f"{row['branches']:>8} {row['scenarios']:>9} {pre:>10} "
            f"{row['dense'] * 1000:8.1f}ms {row['sparse'] * 1000:8.1f}ms "
            f"{sharded:>12}{serial_cell} {ratio:>14}"
        )


def _maybe_write_json(args, rows, speedups, elapsed) -> None:
    if not args.json:
        return
    import benchlib

    path = benchlib.write_bench_json(
        "scenario_scaling",
        params={
            "smoke": args.smoke,
            "shards": args.shards,
            "backend": args.backend,
            "workers": args.workers,
        },
        rows=rows,
        speedups=speedups,
        wall_seconds=elapsed,
    )
    print(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="8/16 branches, identity checks only (CI-sized)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count for the sharded column (default 4)")
    parser.add_argument("--backend", choices=("serial", "threads", "processes"),
                        default="serial",
                        help="shard backend for the sharded column")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker cap for parallel backends (default 4; "
                             "sets REPRO_MAX_WORKERS for this run)")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_scenario_scaling.json (see benchlib)")
    args = parser.parse_args(argv)
    os.environ["REPRO_MAX_WORKERS"] = str(args.workers)
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    started = time.perf_counter()
    rows = run_sweep(
        sizes, args.shards, time_reference=not args.smoke, backend=args.backend
    )
    elapsed = time.perf_counter() - started
    report(rows, args.shards, args.backend)
    print(f"\n{len(rows)} kernel sizes analysed in {elapsed:.2f}s")
    if args.smoke:
        print(
            "OK (smoke): sparse, dense and sharded "
            f"({args.backend}) results bit-identical"
        )
        _maybe_write_json(args, rows, {}, elapsed)
        return 0
    at_128 = next(row for row in rows if row["branches"] == 128)
    speedup = at_128["pre_pr"] / at_128["sparse"]
    assert speedup >= REQUIRED_SPEEDUP_AT_128, (
        f"sparse engine only {speedup:.1f}x faster than the pre-PR engine "
        f"at 128 branches (required: {REQUIRED_SPEEDUP_AT_128}x)"
    )
    print(
        f"OK: sparse engine {speedup:.1f}x faster than the pre-PR engine on the "
        f"128-branch kernel (>= {REQUIRED_SPEEDUP_AT_128}x), classifications bit-identical"
    )
    speedups = {"sparse_over_pre_pr_at_128": speedup}
    if args.backend == "processes":
        at_256 = next(row for row in rows if row["branches"] == 256)
        shard_speedup = at_256["sharded_serial"] / at_256["sharded"]
        speedups["processes_over_serial_sharding_at_256"] = shard_speedup
        cores = os.cpu_count() or 1
        if cores < args.workers:
            print(
                f"NOTE: process-pool speedup at 256 branches was "
                f"{shard_speedup:.1f}x; the >= {REQUIRED_SHARD_SPEEDUP_AT_256}x "
                f"assertion is skipped ({cores} cores < {args.workers} workers)"
            )
        else:
            assert shard_speedup >= REQUIRED_SHARD_SPEEDUP_AT_256, (
                f"process pool only {shard_speedup:.1f}x faster than serial "
                f"sharding at 256 branches "
                f"(required: {REQUIRED_SHARD_SPEEDUP_AT_256}x)"
            )
            print(
                f"OK: process pool {shard_speedup:.1f}x faster than serial "
                f"sharding on the 256-branch kernel "
                f"(>= {REQUIRED_SHARD_SPEEDUP_AT_256}x)"
            )
    _maybe_write_json(args, rows, speedups, elapsed)
    return 0


def test_scenario_scaling_smoke():
    """Pytest entry point: the smoke-sized sweep with identity checks."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
