"""Standardised machine-readable benchmark output.

Every ``bench_*.py`` can emit one ``BENCH_<name>.json`` file with the
same top-level shape — ``name``, ``params`` (the knobs the run was
invoked with), ``rows`` (per-configuration wall times and counters),
``speedups`` (the headline ratios the benchmark asserts on) and
``wall_seconds`` — so CI can upload the files as artifacts and scripts
can diff runs without scraping stdout.

Two activation paths:

* the argparse-style benchmarks take a ``--json`` flag and call
  :func:`write_bench_json` explicitly;
* the pytest-style benchmarks write automatically whenever the
  ``REPRO_BENCH_JSON`` environment variable is set (``1`` writes into
  the current directory, any other value names the target directory) —
  the ``once`` fixture in ``conftest.py`` does it for them.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Mapping, Sequence


def json_dir_from_env() -> str | None:
    """Target directory selected by ``REPRO_BENCH_JSON`` (None = off)."""
    value = os.environ.get("REPRO_BENCH_JSON")
    if not value:
        return None
    return "." if value in ("1", "true", "yes") else value


def write_bench_json(
    name: str,
    params: Mapping[str, Any] | None,
    rows: Sequence[Mapping[str, Any]],
    speedups: Mapping[str, float] | None = None,
    wall_seconds: float | None = None,
    path: str | None = None,
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    Row values that are not JSON-native (dataclasses, configs) are
    stringified rather than rejected, so benchmarks can pass their
    internal row dicts through unfiltered.
    """
    payload = {
        "name": name,
        "params": dict(params or {}),
        "rows": [dict(row) for row in rows],
        "speedups": dict(speedups or {}),
        "wall_seconds": wall_seconds,
        "created_at": time.time(),
    }
    if path is None:
        path = os.path.join(json_dir_from_env() or ".", f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def maybe_write_bench_json(
    name: str,
    params: Mapping[str, Any] | None,
    rows: Sequence[Mapping[str, Any]],
    **kwargs,
) -> str | None:
    """Environment-gated :func:`write_bench_json` (for pytest runs)."""
    if json_dir_from_env() is None:
        return None
    return write_bench_json(name, params, rows, **kwargs)
