"""Micro-benchmark: heap-based worklist kernel vs the legacy min-scan.

Before the engine refactor, both fixpoint loops selected the next block
with ``min(worklist, key=rpo_position)`` followed by ``remove`` — an O(n)
scan per pop, O(n²) over a drain of a wide frontier.  The shared kernel
(:class:`repro.engine.worklist.PriorityWorklist`) replaces the scan with
a heap.

The workload drains a *wide CFG*: a binary fan-out tree with ``WIDTH``
leaves, all of whose blocks are enqueued at once — exactly the shape the
multi-color engine produces when a speculative window grows and every
block of the old window is re-propagated.  The legacy scheduler is
vendored below (``NaiveMinScanWorklist``) so the comparison runs the same
driver over both.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_worklist_throughput.py -s
"""

from __future__ import annotations

import time
from collections import deque

from repro.engine.worklist import PriorityWorklist, run_fixpoint
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instructions import CondBranch, Const, Jump, Return

#: Number of leaves of the fan-out tree (the CFG has 2*WIDTH blocks).
WIDTH = 2048

#: Number of full enqueue-all/drain rounds per measurement.
ROUNDS = 3


def build_wide_cfg(width: int) -> CFG:
    """A complete binary tree of conditional branches with ``width`` leaves
    (heap-indexed blocks ``n0 .. n{2*width-2}``), every leaf jumping to a
    common sink.  ``width`` must be a power of two."""
    cfg = CFG(name="wide", entry="n0")
    for i in range(2 * width - 1):
        block = BasicBlock(name=f"n{i}")
        if i < width - 1:
            block.terminator = CondBranch(
                cond=Const(0), true_target=f"n{2 * i + 1}", false_target=f"n{2 * i + 2}"
            )
        else:
            block.terminator = Jump(target="sink")
        cfg.add_block(block)
    sink = BasicBlock(name="sink")
    sink.terminator = Return(None)
    cfg.add_block(sink)
    return cfg


class NaiveMinScanWorklist:
    """The pre-refactor scheduler: a deque popped with ``min`` + ``remove``.

    Same interface as :class:`PriorityWorklist` so :func:`run_fixpoint`
    drives both.
    """

    def __init__(self, order, initial=()):
        self._order = order
        self._deque: deque[str] = deque()
        self._queued: set[str] = set()
        self.extend(initial)

    def push(self, name: str) -> bool:
        if name in self._queued:
            return False
        self._queued.add(name)
        self._deque.append(name)
        return True

    def extend(self, names) -> None:
        for name in names:
            self.push(name)

    def pop(self) -> str:
        name = min(self._deque, key=lambda block: self._order.get(block, 1 << 30))
        self._deque.remove(name)
        self._queued.discard(name)
        return name

    def __len__(self) -> int:
        return len(self._deque)

    def __bool__(self) -> bool:
        return bool(self._deque)


def _drain(worklist, names, rounds: int) -> int:
    """Enqueue every block and drain to empty, ``rounds`` times."""
    pops = 0
    for _ in range(rounds):
        worklist.extend(names)
        pops += run_fixpoint(worklist, lambda name: (), max_visits=10 * len(names))
    return pops


def _timed(function) -> tuple[float, int]:
    started = time.perf_counter()
    value = function()
    return time.perf_counter() - started, value


def test_kernel_pops_in_same_order_as_min_scan():
    """The heap kernel is a drop-in replacement: identical pop sequence."""
    cfg = build_wide_cfg(64)
    order = {name: i for i, name in enumerate(cfg.reverse_postorder())}
    names = list(cfg.reachable_blocks())
    heap_order, scan_order = [], []
    for worklist, log in (
        (PriorityWorklist(order, initial=names), heap_order),
        (NaiveMinScanWorklist(order, initial=names), scan_order),
    ):
        while worklist:
            log.append(worklist.pop())
    assert heap_order == scan_order


def test_worklist_throughput_on_wide_cfg(benchmark, once):
    cfg = build_wide_cfg(WIDTH)
    order = {name: i for i, name in enumerate(cfg.reverse_postorder())}
    names = list(cfg.reachable_blocks())

    naive_time, naive_pops = _timed(
        lambda: _drain(NaiveMinScanWorklist(order), names, ROUNDS)
    )
    heap_time, heap_pops = _timed(
        lambda: once(benchmark, _drain, PriorityWorklist(order), names, ROUNDS)
    )
    assert naive_pops == heap_pops == ROUNDS * len(names)

    speedup = naive_time / heap_time if heap_time else float("inf")
    print()
    print(
        f"wide-CFG drain ({len(names)} blocks x {ROUNDS} rounds): "
        f"min-scan {naive_time:.3f}s, heap {heap_time:.3f}s, {speedup:.1f}x speedup"
    )
    # The asymptotic gap (O(n²) vs O(n log n)) leaves a wide margin; 3x
    # keeps the assertion robust on slow or noisy machines.
    assert speedup >= 3.0
