"""Taint-driven scenario pruning: reduction ratio and wall-clock win.

The taint pass (:mod:`repro.analysis.taint`) lets the multi-color engine
drop every speculation scenario whose windows contain no memory-access
site before the fixpoint starts: an access-free window has an identity
transfer, so its slots, virtual edges and rollback joins are pure
bookkeeping — see ``prune_scenarios`` on
:class:`repro.analysis.multicolor.SpeculativeCacheAnalysis`.

This benchmark sweeps :func:`repro.bench.programs.taint_sparse_kernel_source`
— ``n`` access-free register diamonds in front of a Figure-2-shaped leaky
tail, so ``2n`` of the ``2n + 2`` scenarios are prunable — and times the
solver cold vs pruned on each size.  On every size it asserts:

* classifications (and hence the leak verdict, which both runs must
  report: the tail's speculation-only leak survives pruning) are
  **bit-identical** between the cold and the pruned run;
* the pruner removed at least ``REQUIRED_REDUCTION`` of the scenarios.

In full mode the 128-branch kernel must additionally show the pruned
run at least ``REQUIRED_SPEEDUP_AT_128``x faster than the cold run.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_taint_pruning.py [--smoke] [--json]

or under pytest (explicit path, as for all benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_taint_pruning.py -s
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.multicolor import SpeculativeCacheAnalysis
from repro.bench.programs import taint_sparse_kernel_source
from repro.bench.tables import BENCH_CACHE, BENCH_SPECULATION
from repro.frontend import compile_source

#: Branch counts swept in full mode (scenarios = 2n + 2).
FULL_SIZES = (32, 64, 128, 256)
SMOKE_SIZES = (32,)

#: Minimum fraction of scenarios the pruner must remove on every size
#: (the acceptance floor; these kernels actually prune ~97-99%).
REQUIRED_REDUCTION = 0.30

#: Required pruned-over-cold speedup on the 128-branch kernel (full
#: mode).  Measured 1.2-1.5x; 1.1x leaves headroom for machine noise.
REQUIRED_SPEEDUP_AT_128 = 1.1


def _timed(factory):
    started = time.perf_counter()
    analysis = factory()
    result = analysis.run()
    return time.perf_counter() - started, analysis, result


def run_sweep(sizes):
    rows = []
    for num_branches in sizes:
        program = compile_source(
            taint_sparse_kernel_source(
                num_branches, BENCH_CACHE.num_lines, BENCH_CACHE.line_size
            )
        )

        def engine(**kwargs):
            return SpeculativeCacheAnalysis(
                program,
                cache_config=BENCH_CACHE,
                speculation=BENCH_SPECULATION,
                **kwargs,
            )

        cold_time, cold, cold_result = _timed(engine)
        pruned_time, pruned, pruned_result = _timed(
            lambda: engine(prune_scenarios=True)
        )
        assert pruned_result.classifications == cold_result.classifications, (
            f"pruned/cold classification divergence at {num_branches} branches"
        )
        assert cold_result.leak_detected and pruned_result.leak_detected, (
            f"the tail's speculation-only leak went missing at {num_branches} "
            "branches (cold "
            f"{cold_result.leak_detected}, pruned {pruned_result.leak_detected})"
        )
        total = len(cold.vcfg.scenarios)
        dropped = len(pruned.pruned_scenarios)
        retained = len(pruned.vcfg.scenarios)
        assert dropped + retained == total
        reduction = dropped / total
        assert reduction >= REQUIRED_REDUCTION, (
            f"only {dropped}/{total} scenarios pruned at {num_branches} "
            f"branches (required: >= {REQUIRED_REDUCTION:.0%})"
        )
        rows.append(
            {
                "branches": num_branches,
                "scenarios": total,
                "pruned": dropped,
                "retained": retained,
                "reduction": reduction,
                "cold": cold_time,
                "pruned_time": pruned_time,
                "cold_iterations": cold_result.iterations,
                "pruned_iterations": pruned_result.iterations,
            }
        )
    return rows


def report(rows):
    print(
        f"{'branches':>8} {'scenarios':>9} {'pruned':>7} {'reduction':>9} "
        f"{'cold':>10} {'pruned-run':>10} {'cold/pruned':>12} "
        f"{'iters':>11}"
    )
    for row in rows:
        ratio = row["cold"] / row["pruned_time"]
        iters = f"{row['cold_iterations']}/{row['pruned_iterations']}"
        print(
            f"{row['branches']:>8} {row['scenarios']:>9} {row['pruned']:>7} "
            f"{row['reduction']:>8.0%} {row['cold'] * 1000:8.1f}ms "
            f"{row['pruned_time'] * 1000:8.1f}ms {ratio:>11.1f}x {iters:>11}"
        )


def _maybe_write_json(args, rows, speedups, elapsed) -> None:
    if not args.json:
        return
    import benchlib

    path = benchlib.write_bench_json(
        "taint_pruning",
        params={"smoke": args.smoke},
        rows=rows,
        speedups=speedups,
        wall_seconds=elapsed,
    )
    print(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="32 branches, identity + reduction checks only "
                             "(CI-sized)")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_taint_pruning.json (see benchlib)")
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    started = time.perf_counter()
    rows = run_sweep(sizes)
    elapsed = time.perf_counter() - started
    report(rows)
    print(f"\n{len(rows)} kernel sizes analysed in {elapsed:.2f}s")
    if args.smoke:
        row = rows[0]
        print(
            f"OK (smoke): {row['pruned']}/{row['scenarios']} scenarios pruned "
            f"({row['reduction']:.0%}), classifications and leak verdict "
            "bit-identical"
        )
        _maybe_write_json(args, rows, {}, elapsed)
        return 0
    at_128 = next(row for row in rows if row["branches"] == 128)
    speedup = at_128["cold"] / at_128["pruned_time"]
    assert speedup >= REQUIRED_SPEEDUP_AT_128, (
        f"pruned run only {speedup:.2f}x faster than the cold run at 128 "
        f"branches (required: {REQUIRED_SPEEDUP_AT_128}x)"
    )
    print(
        f"OK: pruning removed {at_128['reduction']:.0%} of scenarios and ran "
        f"{speedup:.1f}x faster on the 128-branch kernel "
        f"(>= {REQUIRED_SPEEDUP_AT_128}x), classifications bit-identical"
    )
    _maybe_write_json(args, rows, {"pruned_over_cold_at_128": speedup}, elapsed)
    return 0


def test_taint_pruning_smoke():
    """Pytest entry point: the smoke-sized sweep with identity checks."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
