"""E4 — Figures 11/13, Appendix C: the shadow-variable refinement.

Analyses the Figure 11 loop with and without shadow variables: the plain
must analysis spuriously evicts ``a`` at the loop join, the refined one
(Figure 13) keeps it as a must hit.
"""

from repro import compile_source
from repro.analysis import analyze_baseline, analyze_speculative
from repro.bench.programs import figure11_source
from repro.cache.config import CacheConfig

CACHE = CacheConfig.small(num_lines=4)


def _final_a(result):
    return [c for c in result.normal_classifications() if c.ref.symbol == "a"][-1]


def _run():
    program = compile_source(figure11_source(iterations=6))
    plain = analyze_baseline(program, CACHE, use_shadow_state=False)
    refined = analyze_baseline(program, CACHE, use_shadow_state=True)
    spec_plain = analyze_speculative(program, CACHE, use_shadow_state=False)
    spec_refined = analyze_speculative(program, CACHE, use_shadow_state=True)
    return plain, refined, spec_plain, spec_refined


def test_figure11_shadow_variables(benchmark, once):
    plain, refined, spec_plain, spec_refined = once(benchmark, _run)

    print()
    print("Figure 11/13 — the re-load of 'a' after the loop (4-line cache)")
    print(f"  plain must analysis        : must-hit = {_final_a(plain).must_hit}")
    print(f"  with shadow variables      : must-hit = {_final_a(refined).must_hit}")
    print(f"  speculative, plain         : must-hit = {_final_a(spec_plain).must_hit}")
    print(f"  speculative, shadow        : hits {spec_refined.hit_count} >= {spec_plain.hit_count}")

    assert not _final_a(plain).must_hit
    assert _final_a(refined).must_hit
    assert refined.hit_count >= plain.hit_count
    assert spec_refined.hit_count >= spec_plain.hit_count
