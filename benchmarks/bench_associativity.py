"""Geometry x policy sweep over the Table-7 crypto kernels.

The paper evaluates a single cache shape — fully associative, LRU.  With
the per-set abstract domain the same analysis runs on any geometry, so
this benchmark sweeps the Table-7 client harnesses across associativity
(direct-mapped, 2-way, 4-way, fully associative) and replacement policy
(LRU, FIFO) and reports, per configuration: must-hits, possible misses,
the side-channel verdict, and analysis wall time.

Two invariants are asserted:

* the fully-associative LRU column reproduces the Table-7 leak verdicts
  (it is the paper's configuration, bit-identical to the pre-geometry
  code path);
* every configuration's speculative must-hits are a subset of the
  non-speculative baseline's at the same configuration (the lifted
  analysis only removes guarantees, whatever the geometry).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_associativity.py [--smoke]

or under pytest (explicit path, as for all benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_associativity.py -s
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, replace

from repro.bench.crypto import CRYPTO_BENCHMARKS
from repro.bench.tables import BENCH_CACHE, table7_client_request
from repro.cache.config import CacheConfig
from repro.engine.engine import AnalysisEngine
from repro.engine.request import AnalysisKind

#: Kernels whose harness leaks at the paper configuration (Table 7).
EXPECTED_LEAKY = {"hash", "encoder", "chacha20", "ocb", "des"}

#: Associativities swept (None = fully associative).
ASSOCIATIVITIES = (1, 2, 4, None)

POLICIES = ("lru", "fifo")


def geometry_label(config: CacheConfig) -> str:
    ways = "full" if config.associativity is None else f"{config.associativity}-way"
    return f"{ways}/{config.policy}"


def sweep_configs(associativities=ASSOCIATIVITIES, policies=POLICIES):
    return [
        replace(BENCH_CACHE, associativity=associativity, policy=policy)
        for associativity in associativities
        for policy in policies
    ]


@dataclass(frozen=True)
class SweepRow:
    """One (kernel, geometry, policy) cell of the sweep."""

    kernel: str
    config: CacheConfig
    access_sites: int
    base_must_hits: int
    spec_must_hits: int
    spec_misses: int
    leak_detected: bool
    analysis_time: float


def run_sweep(
    names: list[str], configs: list[CacheConfig], engine: AnalysisEngine
) -> list[SweepRow]:
    rows: list[SweepRow] = []
    for name in names:
        for config in configs:
            spec_request = table7_client_request(name, config)
            base_request = replace(
                spec_request, kind=AnalysisKind.BASELINE, speculation=None
            )
            base = engine.run(base_request)
            spec = engine.run(spec_request)
            base_sites = base.must_hit_sites()
            spec_sites = spec.must_hit_sites()
            assert spec_sites <= base_sites, (
                f"{name} at {geometry_label(config)}: the speculative analysis "
                f"claimed must-hits the baseline does not "
                f"({sorted(spec_sites - base_sites)[:3]}...)"
            )
            rows.append(
                SweepRow(
                    kernel=name,
                    config=config,
                    access_sites=spec.access_count,
                    base_must_hits=base.hit_count,
                    spec_must_hits=spec.hit_count,
                    spec_misses=spec.miss_count,
                    leak_detected=spec.leak_detected,
                    analysis_time=spec.analysis_time,
                )
            )
    return rows


def report(rows: list[SweepRow]) -> None:
    print(
        f"{'kernel':10s} {'geometry':11s} {'#acc':>5s} {'base hit':>8s} "
        f"{'spec hit':>8s} {'spec miss':>9s} {'leak':>5s} {'time':>7s}"
    )
    for row in rows:
        print(
            f"{row.kernel:10s} {geometry_label(row.config):11s} "
            f"{row.access_sites:5d} {row.base_must_hits:8d} "
            f"{row.spec_must_hits:8d} {row.spec_misses:9d} "
            f"{'leak' if row.leak_detected else '-':>5s} "
            f"{row.analysis_time:6.2f}s"
        )


def check(rows: list[SweepRow]) -> None:
    """The fully-associative LRU column must reproduce Table 7 exactly."""
    for row in rows:
        if row.config.associativity is None and row.config.policy == "lru":
            expected = row.kernel in EXPECTED_LEAKY
            assert row.leak_detected == expected, (
                f"{row.kernel} at the paper configuration: leak_detected="
                f"{row.leak_detected}, Table 7 says {expected}"
            )


def test_associativity_policy_sweep(once=None, benchmark=None):
    """Pytest entry point (fixtures optional so plain invocation works)."""
    engine = AnalysisEngine()
    rows = run_sweep(["hash", "des"], sweep_configs((1, None)), engine)
    print()
    report(rows)
    print(engine.stats)
    check(rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="two kernels, two geometries (CI-sized)")
    parser.add_argument("kernels", nargs="*",
                        help="kernels to sweep (default: all Table-7 kernels)")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_associativity.json (see benchlib)")
    args = parser.parse_args(argv)
    names = args.kernels or sorted(CRYPTO_BENCHMARKS)
    unknown = [name for name in names if name not in CRYPTO_BENCHMARKS]
    if unknown:
        print(f"unknown kernels: {unknown}", file=sys.stderr)
        return 2
    configs = sweep_configs()
    if args.smoke:
        names = [name for name in names if name in ("hash", "des")] or names[:2]
        configs = sweep_configs((1, None))
    engine = AnalysisEngine()
    started = time.perf_counter()
    rows = run_sweep(names, configs, engine)
    elapsed = time.perf_counter() - started
    report(rows)
    print(f"\n{len(rows)} configurations analysed in {elapsed:.2f}s")
    check(rows)
    print("OK: paper-configuration verdicts match Table 7; "
          "speculative must-hits subsume-checked at every geometry")
    if args.json:
        import benchlib

        path = benchlib.write_bench_json(
            "associativity",
            params={"smoke": args.smoke, "kernels": names},
            rows=[
                {
                    "kernel": row.kernel,
                    "geometry": geometry_label(row.config),
                    "access_sites": row.access_sites,
                    "base_must_hits": row.base_must_hits,
                    "spec_must_hits": row.spec_must_hits,
                    "spec_misses": row.spec_misses,
                    "leak_detected": row.leak_detected,
                    "wall_seconds": row.analysis_time,
                }
                for row in rows
            ],
            wall_seconds=elapsed,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
