"""Service throughput: warm on-disk store vs cold start.

Replays the evaluation's traffic shape — every WCET kernel analysed both
ways, repeated, exactly what :mod:`repro.bench.workloads` generates for
the tables — through the full service stack (scheduler → engine → store)
twice against the same store directory:

* **cold**: empty store; every distinct request compiles and runs its
  fixpoint (repeats are answered by coalescing and the result LRU);
* **warm**: a fresh engine and scheduler (simulating a daemon restart)
  over the now-populated store; every request is served from disk.

The measured ratio is the number the ISSUE asks the PR to report: what a
restart costs with and without the persistent tier.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--smoke]

or under pytest (explicit path, as for all benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -s
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.programs import WCET_BENCHMARKS, wcet_benchmark_source
from repro.bench.tables import BENCH_CACHE, BENCH_SPECULATION
from repro.engine.engine import AnalysisEngine
from repro.engine.request import AnalysisRequest
from repro.service.scheduler import JobScheduler
from repro.service.store import ResultStore
from repro.service.wire import result_fingerprint


def build_workload(programs: int, repeats: int) -> list[AnalysisRequest]:
    """``programs`` kernels x {baseline, speculative} x ``repeats``."""
    requests: list[AnalysisRequest] = []
    for name in list(WCET_BENCHMARKS)[:programs]:
        source = wcet_benchmark_source(name, BENCH_CACHE.num_lines, BENCH_CACHE.line_size)
        common = dict(
            source=source,
            line_size=BENCH_CACHE.line_size,
            cache_config=BENCH_CACHE,
            label=name,
        )
        requests.append(AnalysisRequest.baseline(**common))
        requests.append(
            AnalysisRequest.speculative(speculation=BENCH_SPECULATION, **common)
        )
    return requests * repeats


def replay(store_dir: Path, requests: list[AnalysisRequest], max_workers: int):
    """One daemon lifetime: fresh engine + scheduler over ``store_dir``.

    Returns ``(elapsed_seconds, fingerprints, engine_stats)``.
    """
    engine = AnalysisEngine(result_store=ResultStore(store_dir))
    started = time.perf_counter()
    with JobScheduler(engine, max_workers=max_workers) as scheduler:
        jobs = [scheduler.submit(request) for request in requests]
        results = [job.result(timeout=600) for job in jobs]
    elapsed = time.perf_counter() - started
    return elapsed, [result_fingerprint(result) for result in results], engine.stats


def run(
    programs: int, repeats: int, max_workers: int, store_dir: Path
) -> tuple[float, float, float]:
    """Returns ``(speedup, cold_seconds, warm_seconds)``."""
    requests = build_workload(programs, repeats)
    distinct = len({request.result_key() for request in requests})
    print(
        f"workload: {len(requests)} requests ({distinct} distinct), "
        f"{max_workers} scheduler workers"
    )

    cold_time, cold_prints, cold_stats = replay(store_dir, requests, max_workers)
    print(f"cold start (empty store):     {cold_time:8.3f}s   [{cold_stats.store}]")

    warm_time, warm_prints, warm_stats = replay(store_dir, requests, max_workers)
    print(f"warm start (populated store): {warm_time:8.3f}s   [{warm_stats.store}]")

    assert cold_prints == warm_prints, "warm results must be bit-identical to cold"
    assert warm_stats.store.hits == distinct, "every distinct request must hit the store"
    assert warm_stats.compile.lookups == 0, "warm traffic must never reach the front end"

    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    print(f"warm-vs-cold speedup:         {speedup:8.1f}x")
    return speedup, cold_time, warm_time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload for CI (2 kernels, 2 repeats)")
    parser.add_argument("--programs", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument("--store-dir", default=None,
                        help="reuse a store directory instead of a fresh temp dir")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_service_throughput.json (see benchlib)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.programs, args.repeats = 2, 2

    if args.store_dir is not None:
        timings = run(args.programs, args.repeats, args.max_workers, Path(args.store_dir))
    else:
        tmp = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
        try:
            timings = run(args.programs, args.repeats, args.max_workers, tmp)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    speedup, cold_time, warm_time = timings
    if args.json:
        import benchlib

        path = benchlib.write_bench_json(
            "service_throughput",
            params={
                "smoke": args.smoke,
                "programs": args.programs,
                "repeats": args.repeats,
                "max_workers": args.max_workers,
            },
            rows=[
                {"phase": "cold", "wall_seconds": cold_time},
                {"phase": "warm", "wall_seconds": warm_time},
            ],
            speedups={"warm_over_cold": speedup},
            wall_seconds=cold_time + warm_time,
        )
        print(f"wrote {path}")
    return 0 if speedup > 1.0 else 1


# ----------------------------------------------------------------------
# pytest entry point (explicit: pytest benchmarks/bench_service_throughput.py)
# ----------------------------------------------------------------------
def test_warm_store_beats_cold_start(tmp_path):
    speedup, _, _ = run(programs=2, repeats=2, max_workers=2, store_dir=tmp_path / "store")
    assert speedup > 2.0, f"warm store should be >2x faster, got {speedup:.1f}x"


if __name__ == "__main__":
    sys.exit(main())
