"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints the rows it produced, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the evaluation section.  Analyses are deterministic, so each
experiment is executed once (``rounds=1``) — the timing reported by
pytest-benchmark is the analysis wall-clock time the paper's tables quote.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
