"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints the rows it produced, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the evaluation section.  Analyses are deterministic, so each
experiment is executed once (``rounds=1``) — the timing reported by
pytest-benchmark is the analysis wall-clock time the paper's tables quote.

With ``REPRO_BENCH_JSON`` set (``1`` = current directory, anything else
= target directory), every benchmark additionally writes a standardized
``BENCH_<name>.json`` file via :mod:`benchlib`.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import benchlib  # noqa: E402  — sibling module, needs the path entry above


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(request):
    """Like :func:`run_once`, and — when ``REPRO_BENCH_JSON`` is set —
    record every timed call into ``BENCH_<module>.json`` (benchmarks
    that time several variants accumulate one row per call)."""
    module = request.node.module.__name__
    name = module[len("bench_"):] if module.startswith("bench_") else module
    rows: list[dict] = []

    def run(benchmark, function, *args, **kwargs):
        started = time.perf_counter()
        result = run_once(benchmark, function, *args, **kwargs)
        rows.append(
            {"function": function.__name__,
             "wall_seconds": time.perf_counter() - started}
        )
        benchlib.maybe_write_bench_json(
            name,
            params={"test": request.node.name},
            rows=rows,
            wall_seconds=sum(row["wall_seconds"] for row in rows),
        )
        return result

    return run
