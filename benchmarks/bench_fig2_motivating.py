"""E1 — Figure 2/3: the motivating example at full (512-line) scale.

Regenerates the paper's headline numbers: 512 misses + 1 hit under correct
prediction, 514 misses (513 observable) under a misprediction, the
non-speculative analysis proving the secret access hits, and the
speculative analysis detecting the leak.
"""

from repro.bench.tables import run_motivating_example


def test_figure2_motivating_example(benchmark, once):
    result = once(benchmark, run_motivating_example, 512, 64)

    print()
    print("Figure 2/3 — motivating example (512-line cache)")
    print(f"  concrete, correct prediction : {result.concrete_misses_correct_prediction} misses"
          f" + {result.concrete_hits_correct_prediction} hit")
    print(f"  concrete, misprediction      : {result.concrete_misses_misprediction} misses"
          f" ({result.concrete_observable_misses_misprediction} observable)")
    print(f"  non-speculative analysis     : ph[k] must-hit={result.non_speculative_must_hit},"
          f" leak={result.non_speculative_leak}")
    print(f"  speculative analysis         : ph[k] must-hit={result.speculative_must_hit},"
          f" leak={result.speculative_leak}")

    assert result.concrete_misses_correct_prediction == 512
    assert result.concrete_hits_correct_prediction == 1
    assert result.concrete_misses_misprediction == 514
    assert result.concrete_observable_misses_misprediction == 513
    assert result.non_speculative_must_hit and not result.speculative_must_hit
    assert result.speculative_leak and not result.non_speculative_leak
