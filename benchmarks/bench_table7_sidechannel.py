"""E7 — Table 7: side-channel detection on the crypto benchmark set.

Each kernel runs inside the Figure-10 client harness with its calibrated
attacker-controlled buffer size.  Shape to reproduce: the non-speculative
analysis finds no leaks anywhere; the speculative analysis finds leaks in
half of the benchmarks (hash, encoder, chacha20, ocb, des — the latter
even with a zero-byte buffer).
"""

from repro.apps.report import format_leak_table
from repro.bench.tables import generate_table7
from repro.engine import AnalysisEngine


EXPECTED_LEAKY = {"hash", "encoder", "chacha20", "ocb", "des"}


def test_table7_side_channel_detection(benchmark, once):
    engine = AnalysisEngine()
    rows = once(benchmark, generate_table7, engine=engine)

    print()
    print(format_leak_table(rows, title="Table 7 — side channel detection"))
    print(engine.stats)

    assert len(rows) == 10
    leaky = {row.name for row in rows if row.speculative.leak_detected}
    baseline_leaky = {row.name for row in rows if row.non_speculative.leak_detected}
    assert leaky == EXPECTED_LEAKY
    assert baseline_leaky == set()
    des_row = next(row for row in rows if row.name == "des")
    assert des_row.buffer_bytes == 0
