"""E2 — Tables 1/2, Figure 9: the quantl fixed-point computation.

Runs the non-speculative and speculative analyses on the Figure 8 DSP
kernel and checks the qualitative facts of Tables 1 and 2: the fixed point
is reached in a bounded number of iterations, the Table-1 placeholder
convention (``decis_lev[1*]``/``[2*]``) shows up in the loop states, and
the speculative analysis additionally accounts for both quantisation
tables being touched in one execution.
"""

from repro import compile_source
from repro.analysis import analyze_baseline, analyze_speculative
from repro.bench.programs import quantl_client_source
from repro.cache.config import CacheConfig

CACHE = CacheConfig(num_lines=16, line_size=64)


def _run():
    program = compile_source(quantl_client_source())
    baseline = analyze_baseline(program, cache_config=CACHE)
    speculative = analyze_speculative(program, cache_config=CACHE)
    return program, baseline, speculative


def test_quantl_fixpoint(benchmark, once):
    program, baseline, speculative = once(benchmark, _run)

    placeholder_symbols = set()
    for state in baseline.entry_states.values():
        if getattr(state, "is_bottom", False):
            continue
        placeholder_symbols |= {b.symbol for b in state.cached_blocks() if b.is_placeholder}
    speculated = {c.ref.symbol for c in speculative.speculative_classifications()}

    print()
    print("quantl (Figure 8/9, Tables 1/2)")
    print(f"  non-speculative: {baseline.miss_count} potential misses,"
          f" {baseline.iterations} iterations")
    print(f"  speculative:     {speculative.miss_count} potential misses,"
          f" {speculative.speculative_miss_count} speculative misses,"
          f" {speculative.iterations} iterations,"
          f" {speculative.num_speculative_branches} branches")
    print(f"  placeholder lines observed: {sorted(placeholder_symbols)}")
    print(f"  tables touched speculatively: {sorted(s for s in speculated if 'quant' in s)}")

    assert "decis_levl" in placeholder_symbols
    assert {"quant26bt_pos", "quant26bt_neg"} <= speculated
    assert speculative.miss_count >= baseline.miss_count
    assert baseline.iterations < 200
