"""E3 — Figures 6/7: merge strategies and Just-in-Time merging.

Analyses the Figure 7 diamond with a 4-line cache under all four merge
strategies (the speculative window limited to the branch body, as in the
figure) and checks the bottom-right state of Figure 7: only ``b`` and
``c`` remain guaranteed cached at the merge point, while the
non-speculative analysis would also keep ``a``.
"""

from repro import compile_source
from repro.analysis import analyze_baseline, analyze_speculative
from repro.bench.programs import figure7_source
from repro.cache.config import CacheConfig
from repro.ir.memory import MemoryBlock
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy

CACHE = CacheConfig.small(num_lines=4)


def _run():
    program = compile_source(figure7_source())
    merge_block = [
        name
        for name in program.cfg.reachable_blocks()
        if any(ref.symbol == "a" for ref in program.cfg.block(name).memory_refs())
    ][-1]
    baseline = analyze_baseline(program, cache_config=CACHE)
    by_strategy = {}
    for strategy in MergeStrategy:
        config = SpeculationConfig(depth_miss=2, depth_hit=2, merge_strategy=strategy)
        by_strategy[strategy] = analyze_speculative(program, CACHE, speculation=config)
    return program, merge_block, baseline, by_strategy


def test_figure7_merge_strategies(benchmark, once):
    program, merge_block, baseline, by_strategy = once(benchmark, _run)

    print()
    print("Figure 7 — guaranteed-cached blocks at the merge point (4-line cache)")
    base_state = baseline.entry_states[merge_block]
    print(f"  non-speculative   : {sorted(str(b) for b in base_state.cached_blocks())}")
    for strategy, result in by_strategy.items():
        state = result.entry_states[merge_block]
        cached = sorted(str(b) for b in state.cached_blocks() if not b.is_placeholder)
        print(f"  {strategy.name:18s}: {cached}")

    assert base_state.must_hit(MemoryBlock("a", 0))
    jit_state = by_strategy[MergeStrategy.JUST_IN_TIME].entry_states[merge_block]
    assert not jit_state.must_hit(MemoryBlock("a", 0))
    assert jit_state.must_hit(MemoryBlock("b", 0))
    assert jit_state.must_hit(MemoryBlock("c", 0))
    # Every strategy is sound: none may keep 'a'.
    for result in by_strategy.values():
        assert not result.entry_states[merge_block].must_hit(MemoryBlock("a", 0))
