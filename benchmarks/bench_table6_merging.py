"""E6 — Table 6: merge-at-rollback (Figure 6d) vs Just-in-Time merging
(Figure 6c) on the WCET benchmark set.

Shape to reproduce: Just-in-Time merging is at least as accurate on most
benchmarks (never unsound either way) and converges in a comparable or
smaller number of iterations, at comparable cost.
"""

from repro.apps.report import format_merge_table
from repro.bench.tables import generate_table6
from repro.engine import AnalysisEngine


def test_table6_merge_strategies(benchmark, once):
    engine = AnalysisEngine()
    rows = once(benchmark, generate_table6, engine=engine)

    print()
    print(format_merge_table(rows, title="Table 6 — merging strategies"))
    print(engine.stats)

    assert len(rows) == 10
    jit_no_worse = 0
    for _, rollback, jit in rows:
        if jit.speculative.misses <= rollback.speculative.misses:
            jit_no_worse += 1
    # JIT is at least as precise on the vast majority of benchmarks (the
    # paper notes occasional exceptions are possible).
    assert jit_no_worse >= 8
