"""E8 — Section 6.2 ablation: dynamic bounding of the speculation depth.

Runs the speculative analysis on the WCET benchmark set with the
optimisation on and off.  Shape to reproduce: bounding removes virtual
edges (reducing work) and never loses precision (it may gain some).
"""

from repro.bench.tables import run_depth_ablation


def test_depth_bounding_ablation(benchmark, once):
    rows = once(benchmark, run_depth_ablation)

    print()
    print("Section 6.2 — dynamic speculation-depth bounding")
    header = f"{'Name':10s} {'edges on':>9s} {'edges off':>10s} {'removed':>8s} {'miss on':>8s} {'miss off':>9s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.name:10s} {row.edges_with_bounding:9d} {row.edges_without_bounding:10d} "
            f"{row.edges_removed:8d} {row.misses_with_bounding:8d} {row.misses_without_bounding:9d}"
        )

    assert len(rows) == 10
    for row in rows:
        assert row.edges_with_bounding <= row.edges_without_bounding
        assert row.misses_with_bounding <= row.misses_without_bounding
    assert any(row.edges_removed > 0 for row in rows)
