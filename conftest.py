"""Repository-level pytest configuration: the per-test timeout.

Both fixpoint engines are guarded by ``MAX_VISITS``, but a genuinely
divergent transfer function (or a deadlocked service test) can still burn
minutes before that guard trips.  Every test therefore runs under a
wall-clock alarm; exceeding it raises ``TimeoutError`` inside the test,
which fails fast with a normal traceback instead of hanging the job.

The timeout defaults to 300 seconds (far above the slowest legitimate
test) and can be tuned per run::

    pytest --per-test-timeout=120    # CI tier-1 uses this
    pytest --per-test-timeout=0      # disable (e.g. when debugging)

Implemented with ``SIGALRM``, so it is active on POSIX main-thread runs
only — exactly the environments the tier-1 suite targets.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--per-test-timeout",
        type=float,
        default=float(os.environ.get("REPRO_TEST_TIMEOUT", "300")),
        help="fail any single test exceeding this many wall-clock seconds "
        "(0 disables; default 300, or the REPRO_TEST_TIMEOUT env var)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item, nextitem):
    # Wraps the whole protocol (setup + call + teardown), not just the
    # call phase: the service tests start their daemon in fixtures, and a
    # deadlock there must fail just as fast as one inside the test body.
    timeout = item.config.getoption("--per-test-timeout")
    supported = (
        timeout
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not supported:
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the per-test timeout of {timeout:g}s"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
