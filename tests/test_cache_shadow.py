"""Unit tests for the shadow-variable refined state (Section 6.3, Appendix B)."""

from repro.cache.abstract import AGE_INFINITY, CacheState
from repro.cache.shadow import ShadowCacheState
from repro.ir.memory import AccessKind, BlockAccess, MemoryBlock, MemoryRef


def block(name: str, index: int = 0) -> MemoryBlock:
    return MemoryBlock(name, index)


def unknown_access(name: str, num_blocks: int) -> BlockAccess:
    blocks = tuple(block(name, i) for i in range(num_blocks))
    return BlockAccess(
        kind=AccessKind.UNKNOWN,
        symbol=name,
        blocks=blocks,
        is_write=False,
        ref=MemoryRef(symbol=name, index_const=None),
    )


class TestTransfer:
    def test_access_sets_both_components(self):
        state = ShadowCacheState.empty(4).access_block(block("a"))
        assert state.age(block("a")) == 1
        assert state.shadow_age(block("a")) == 1

    def test_sequential_accesses_age_like_plain_state(self):
        shadow = ShadowCacheState.empty(4)
        plain = CacheState.empty(4)
        for name in ["a", "b", "c"]:
            shadow = shadow.access_block(block(name))
            plain = plain.access_block(block(name))
        for name in ["a", "b", "c"]:
            assert shadow.age(block(name)) == plain.age(block(name))

    def test_appendix_b_example_ref_x(self):
        """Appendix B, Example B.2: ref x on the merged Figure-5 state."""
        state = ShadowCacheState(
            num_lines=4,
            must={block("x"): 3, block("z"): 3, block("k"): 4},
            may={block("x"): 1, block("t"): 1, block("y"): 2, block("z"): 2, block("k"): 4},
        )
        result = state.access_block(block("x"))
        # Must component: [x, {}, z, k]
        assert result.age(block("x")) == 1
        assert result.age(block("z")) == 3
        assert result.age(block("k")) == 4
        # May component: x jumps to front, former front entries age.
        assert result.shadow_age(block("x")) == 1
        assert result.shadow_age(block("t")) == 2
        assert result.shadow_age(block("y")) == 2
        assert result.shadow_age(block("z")) == 2
        assert result.shadow_age(block("k")) == 4

    def test_appendix_b_example_ref_y(self):
        """Appendix B, Example B.2: ref y evicts k in the original analysis
        and here as well (y was not in the must state)."""
        state = ShadowCacheState(
            num_lines=4,
            must={block("x"): 3, block("z"): 3, block("k"): 4},
            may={block("x"): 1, block("t"): 1, block("y"): 2, block("z"): 2, block("k"): 4},
        )
        result = state.access_block(block("y"))
        assert result.age(block("y")) == 1
        assert result.age(block("x")) == 4
        assert result.age(block("z")) == 4
        assert not result.must_hit(block("k"))

    def test_nyoung_rule_prevents_spurious_aging(self):
        """Appendix C, step S8: with only two shadow blocks younger than
        ``a``, the access to ``b`` must not age ``a`` past its real bound."""
        state = ShadowCacheState(
            num_lines=4,
            must={block("a"): 3},
            may={block("b"): 1, block("c"): 1, block("a"): 2},
        )
        result = state.access_block(block("b"))
        # NYoung(a) = |{b, c}| = 2 < Age(a) = 3, so a keeps its age.
        assert result.age(block("a")) == 3

    def test_plain_state_would_age_in_same_situation(self):
        plain = CacheState.from_ages(4, {block("a"): 3})
        assert plain.access_block(block("b")).age(block("a")) == 4

    def test_unknown_access_inserts_placeholders(self):
        state = ShadowCacheState.empty(8).access_block(block("x"))
        state = state.access(unknown_access("t", 2))
        assert any(b.is_placeholder for b in state.cached_blocks())
        # All candidate blocks become may-cached.
        assert state.shadow_age(block("t", 0)) == 1
        assert state.shadow_age(block("t", 1)) == 1

    def test_unknown_access_guard_after_placeholders_exhausted(self):
        """Once every placeholder is resident, blocks whose may-age exceeds
        the oldest placeholder do not age (they are provably older than
        whatever line the access reused)."""
        state = ShadowCacheState.empty(16)
        for i in range(6):
            state = state.access_block(block("old", i))
        # old#5..old#0 have ages 1..6 and shadow ages 1..6.
        state = state.access(unknown_access("t", 1))
        state = state.access(unknown_access("t", 1))
        age_before = state.age(block("old", 0))
        state = state.access(unknown_access("t", 1))
        assert state.age(block("old", 0)) == age_before

    def test_secret_access_conservative(self):
        state = ShadowCacheState.empty(8)
        for i in range(3):
            state = state.access_block(block("sbox", i))
        aged = state.access(
            BlockAccess(
                kind=AccessKind.SECRET,
                symbol="sbox",
                blocks=tuple(block("sbox", i) for i in range(3)),
                is_write=False,
                ref=MemoryRef(symbol="sbox", index_const=None, index_secret=True),
            )
        )
        for i in range(3):
            assert aged.age(block("sbox", i)) == state.age(block("sbox", i)) + 1


class TestLattice:
    def test_join_must_max_may_min(self):
        left = ShadowCacheState(num_lines=4, must={block("a"): 1}, may={block("a"): 1})
        right = ShadowCacheState(
            num_lines=4, must={block("a"): 2, block("b"): 1}, may={block("a"): 2, block("b"): 1}
        )
        joined = left.join(right)
        assert joined.age(block("a")) == 2
        assert not joined.must_hit(block("b"))
        assert joined.shadow_age(block("a")) == 1
        assert joined.shadow_age(block("b")) == 1

    def test_join_bottom_identity(self):
        state = ShadowCacheState.empty(4).access_block(block("a"))
        assert state.join(ShadowCacheState.bottom(4)) == state
        assert ShadowCacheState.bottom(4).join(state) == state

    def test_leq_requires_both_components(self):
        small = ShadowCacheState(num_lines=4, must={block("a"): 1}, may={block("a"): 1})
        large = ShadowCacheState(num_lines=4, must={block("a"): 2}, may={block("a"): 1, block("b"): 1})
        assert small.leq(large)
        assert not large.leq(small)

    def test_join_is_upper_bound(self):
        left = ShadowCacheState.empty(4).access_block(block("a")).access_block(block("b"))
        right = ShadowCacheState.empty(4).access_block(block("c"))
        joined = left.join(right)
        assert left.leq(joined)
        assert right.leq(joined)

    def test_widen_only_touches_must(self):
        previous = ShadowCacheState(num_lines=4, must={block("a"): 1}, may={block("a"): 1})
        current = ShadowCacheState(num_lines=4, must={block("a"): 2}, may={block("a"): 1})
        widened = current.widen(previous)
        assert not widened.must_hit(block("a"))
        assert widened.shadow_age(block("a")) == 1

    def test_repr(self):
        state = ShadowCacheState.empty(4).access_block(block("a"))
        assert "∃" in repr(state)
        assert ShadowCacheState.bottom(4).age(block("a")) == AGE_INFINITY


class TestFigure13Scenario:
    """The Figure 11 / Figure 13 loop, replayed directly on the states."""

    def _loop_round(self, state):
        left = state.access_block(block("b"))
        right = state.access_block(block("c"))
        return left.join(right)

    def test_shadow_state_keeps_a_cached(self):
        state = ShadowCacheState.empty(4).access_block(block("a"))
        for _ in range(5):
            state = self._loop_round(state)
        assert state.must_hit(block("a"))

    def test_plain_state_loses_a(self):
        """Figure 11: each round the plain join ages ``a`` once more, so after
        enough iterations it is (spuriously) evicted."""
        state = CacheState.empty(4).access_block(block("a"))
        for _ in range(5):
            left = state.access_block(block("b"))
            right = state.access_block(block("c"))
            state = left.join(right)
        assert not state.must_hit(block("a"))
