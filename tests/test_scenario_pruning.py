"""Taint-driven scenario pruning: differential identity against the
unpruned engine, the request/wire/CLI plumbing, and the env knob."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro import compile_source
from repro.analysis.multicolor import SpeculativeCacheAnalysis
from repro.bench.client import build_client_source
from repro.bench.crypto import crypto_kernel
from repro.bench.programs import taint_sparse_kernel_source
from repro.cache.config import CacheConfig
from repro.engine.engine import (
    PRUNE_SCENARIOS_ENV,
    execute_request,
    resolve_prune_scenarios,
)
from repro.engine.request import AnalysisRequest
from repro.service.wire import request_from_wire, request_to_wire
from repro.speculation.config import SpeculationConfig

SEED = 0x7A1A7

BENCH_CACHE = CacheConfig(num_lines=64, line_size=64)


def random_secret_source(rng: random.Random, num_statements: int = 10) -> str:
    """Seeded random MiniC mixing public diamonds, register-only diamonds
    (prunable windows), and secret-derived accesses."""
    arrays = 4
    decls = [f"char a{i}[64];" for i in range(arrays)]
    decls += ["char cnd[256];", "char sbox[256];", "secret int key;", "reg int p;"]

    def access() -> str:
        return f"a{rng.randrange(arrays)}[{rng.choice([0, 32])}];"

    body = []
    for _ in range(num_statements):
        roll = rng.random()
        if roll < 0.30:
            body.append("  " + access())
        elif roll < 0.55:
            # Memory-condition diamond with accesses: never prunable.
            body.append(
                f"  if (cnd[{rng.randrange(4) * 64}]) "
                f"{{ {access()} }} else {{ {access()} }}"
            )
        elif roll < 0.80:
            # Register-only diamond: its windows may be access-free.
            bound = rng.randrange(4)
            body.append(f"  if (p > {bound}) {{ p = p + {bound + 1}; }}")
        else:
            body.append("  sbox[key];")
    return (
        "\n".join(decls)
        + "\n\nint main() {\n"
        + "\n".join(body)
        + "\n  return 0;\n}\n"
    )


def run_pair(program, cache, speculation=None):
    """(cold, pruned) analyses of one program, both run to completion."""
    speculation = speculation or SpeculationConfig.paper_default()

    def engine(**kwargs):
        return SpeculativeCacheAnalysis(
            program, cache_config=cache, speculation=speculation, **kwargs
        )

    cold_analysis = engine()
    cold = cold_analysis.run()
    pruned_analysis = engine(prune_scenarios=True)
    pruned = pruned_analysis.run()
    return cold_analysis, cold, pruned_analysis, pruned


class TestDifferentialIdentity:
    """Pruned runs are bit-identical to unpruned runs in everything the
    result reports as a verdict: classifications (hence must-hits, leak
    sites) and the leak flag itself."""

    @pytest.mark.parametrize("name", ["hash", "des", "str2key"])
    def test_table7_kernels(self, name):
        kernel = crypto_kernel(name, 64, 64)
        program = compile_source(build_client_source(kernel, 2880))
        _, cold, _, pruned = run_pair(program, BENCH_CACHE)
        assert pruned.classifications == cold.classifications
        assert pruned.leak_detected == cold.leak_detected
        assert pruned.must_hit_sites() == cold.must_hit_sites()

    def test_seeded_random_programs(self):
        rng = random.Random(SEED)
        for _ in range(6):
            source = random_secret_source(rng)
            program = compile_source(source)
            for cache in (
                CacheConfig(num_lines=4, line_size=64),
                CacheConfig(num_lines=8, line_size=64, associativity=2, policy="fifo"),
            ):
                _, cold, _, pruned = run_pair(program, cache)
                assert pruned.classifications == cold.classifications, source
                assert pruned.leak_detected == cold.leak_detected, source

    def test_taint_sparse_kernel_prunes_and_matches(self):
        program = compile_source(taint_sparse_kernel_source(8))
        _, cold, pruned_analysis, pruned = run_pair(program, BENCH_CACHE)
        assert len(pruned_analysis.pruned_scenarios) >= 1
        assert pruned.classifications == cold.classifications
        assert cold.leak_detected and pruned.leak_detected

    def test_reported_scenario_counters_are_pre_prune(self):
        """Pruning must not shrink the *reported* branch/edge counters:
        they describe the program, not the schedule."""
        program = compile_source(taint_sparse_kernel_source(8))
        _, cold, _, pruned = run_pair(program, BENCH_CACHE)
        assert pruned.num_speculative_branches == cold.num_speculative_branches
        assert pruned.num_virtual_edges == cold.num_virtual_edges


class TestRequestPlumbing:
    def test_result_key_changes_only_when_enabled(self):
        request = AnalysisRequest.speculative(
            "char a[64];\nint main() { a[0]; return 0; }\n"
        )
        enabled = dataclasses.replace(request, prune_scenarios=True)
        assert request.result_key() != enabled.result_key()
        # Flag-off keys are position-independent of the new field: a fresh
        # request that never mentions pruning digests to the same key.
        untouched = AnalysisRequest.speculative(request.source)
        assert untouched.result_key() == request.result_key()

    def test_wire_round_trip(self):
        request = AnalysisRequest.speculative(
            "char a[64];\nint main() { a[0]; return 0; }\n"
        )
        for flag in (False, True):
            tagged = dataclasses.replace(request, prune_scenarios=flag)
            restored = request_from_wire(request_to_wire(tagged))
            assert restored.prune_scenarios is flag
            assert restored.result_key() == tagged.result_key()

    def test_wire_legacy_payload_defaults_off(self):
        request = AnalysisRequest.speculative(
            "char a[64];\nint main() { a[0]; return 0; }\n"
        )
        payload = request_to_wire(request)
        del payload["prune_scenarios"]
        restored = request_from_wire(payload)
        assert restored.prune_scenarios is False
        assert restored.result_key() == request.result_key()

    def test_cli_flag_reaches_request(self, tmp_path):
        from repro.service.cli import _build_request, build_parser

        path = tmp_path / "p.mc"
        path.write_text("char a[64];\nint main() { a[0]; return 0; }\n")
        args = build_parser().parse_args(["submit", str(path), "--prune-scenarios"])
        assert args.prune_scenarios is True
        request = _build_request(args, path.read_text())
        assert request.prune_scenarios is True
        default_args = build_parser().parse_args(["submit", str(path)])
        assert _build_request(default_args, path.read_text()).prune_scenarios is False


class TestEnvKnob:
    def test_resolution_order(self, monkeypatch):
        request = AnalysisRequest.speculative(
            "char a[64];\nint main() { a[0]; return 0; }\n"
        )
        monkeypatch.delenv(PRUNE_SCENARIOS_ENV, raising=False)
        assert resolve_prune_scenarios(request) is False
        assert resolve_prune_scenarios(
            dataclasses.replace(request, prune_scenarios=True)
        ) is True
        monkeypatch.setenv(PRUNE_SCENARIOS_ENV, "1")
        assert resolve_prune_scenarios(request) is True
        monkeypatch.setenv(PRUNE_SCENARIOS_ENV, "0")
        assert resolve_prune_scenarios(request) is False

    def test_env_forced_run_matches_cold(self, monkeypatch):
        source = taint_sparse_kernel_source(8)
        request = AnalysisRequest.speculative(source)
        monkeypatch.delenv(PRUNE_SCENARIOS_ENV, raising=False)
        cold = execute_request(request)
        monkeypatch.setenv(PRUNE_SCENARIOS_ENV, "1")
        forced = execute_request(request)
        assert forced.classifications == cold.classifications
        assert forced.leak_detected == cold.leak_detected
