"""IR lint/verifier tests: broken-CFG regressions, clean-program sweeps,
the ``repro lint`` CLI contract, and the ``REPRO_DEBUG_VERIFY`` hook."""

import json

import pytest

from repro import compile_source
from repro.bench.client import build_client_source
from repro.bench.crypto import CRYPTO_BENCHMARKS, crypto_kernel
from repro.bench.programs import (
    WCET_BENCHMARKS,
    motivating_example_source,
    taint_sparse_kernel_source,
    wcet_benchmark_source,
)
from repro.errors import VerificationError
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    CondBranch,
    Const,
    Fence,
    Jump,
    MemoryRef,
    Return,
    Store,
    Temp,
)
from repro.ir.verify import (
    DANGLING_SUCCESSOR,
    FENCE_AS_TERMINATOR,
    MID_BLOCK_TERMINATOR,
    MISSING_TERMINATOR,
    NO_RETURN,
    UNDECLARED_SYMBOL,
    assert_valid_ir,
    verify_cfg,
    verify_program,
)

VALID_SOURCE = """\
char buf[128];
char q;

int main() {
  if (q == 0) {
    buf[0];
  } else {
    buf[64];
  }
  return 0;
}
"""


def build_diamond() -> CFG:
    """entry -> (left | right) -> join -> return: structurally clean."""
    cfg = CFG(name="main")
    entry = cfg.add_block(BasicBlock("entry"))
    left = cfg.add_block(BasicBlock("left"))
    right = cfg.add_block(BasicBlock("right"))
    join = cfg.add_block(BasicBlock("join"))
    entry.terminator = CondBranch(
        cond=Temp("c"), true_target="left", false_target="right"
    )
    left.terminator = Jump(target="join")
    right.terminator = Jump(target="join")
    join.terminator = Return(value=Const(0))
    return cfg


def codes(findings) -> set:
    return {finding.code for finding in findings}


class TestBrokenCFGs:
    """The four mandated regressions, each a distinct finding code."""

    def test_dangling_successor(self):
        cfg = build_diamond()
        cfg.block("left").terminator = Jump(target="nowhere")
        findings = verify_cfg(cfg)
        assert codes(findings) == {DANGLING_SUCCESSOR}
        (finding,) = findings
        assert finding.block == "left"
        assert "nowhere" in finding.message

    def test_mid_block_terminator(self):
        cfg = build_diamond()
        cfg.block("right").instructions.append(Return(value=Const(1)))
        findings = verify_cfg(cfg)
        assert codes(findings) == {MID_BLOCK_TERMINATOR}
        (finding,) = findings
        assert finding.block == "right"

    def test_fence_in_terminator_slot(self):
        cfg = build_diamond()
        cfg.block("join").terminator = Fence()
        findings = verify_cfg(cfg)
        # The broken join also removes the only return block.
        assert FENCE_AS_TERMINATOR in codes(findings)
        fence_findings = [f for f in findings if f.code == FENCE_AS_TERMINATOR]
        assert fence_findings[0].block == "join"

    def test_store_to_undeclared_memory_block(self):
        program = compile_source(VALID_SOURCE)
        cfg = build_diamond()
        cfg.block("left").instructions.append(
            Store(
                ref=MemoryRef(symbol="ghost", is_write=True),
                value=Const(0),
            )
        )
        findings = verify_cfg(cfg, program.layout)
        assert codes(findings) == {UNDECLARED_SYMBOL}
        (finding,) = findings
        assert "ghost" in finding.message and "store" in finding.message

    def test_missing_terminator_and_no_return(self):
        cfg = build_diamond()
        cfg.block("join").terminator = None
        findings = verify_cfg(cfg)
        assert codes(findings) == {MISSING_TERMINATOR}
        # NO_RETURN only fires on otherwise-clean graphs: loop forever.
        cfg2 = CFG(name="main")
        a = cfg2.add_block(BasicBlock("entry"))
        b = cfg2.add_block(BasicBlock("b"))
        a.terminator = Jump(target="b")
        b.terminator = Jump(target="entry")
        assert codes(verify_cfg(cfg2)) == {NO_RETURN}

    def test_every_defect_reported_not_just_first(self):
        cfg = build_diamond()
        cfg.block("left").terminator = Jump(target="nowhere")
        cfg.block("right").instructions.append(Return(value=Const(1)))
        findings = verify_cfg(cfg)
        assert codes(findings) == {DANGLING_SUCCESSOR, MID_BLOCK_TERMINATOR}

    def test_assert_valid_ir_raises_with_findings(self):
        program = compile_source(VALID_SOURCE)
        program.cfg.block(program.cfg.entry).terminator = Jump(target="nowhere")
        with pytest.raises(VerificationError) as info:
            assert_valid_ir(program)
        assert info.value.findings
        assert DANGLING_SUCCESSOR in {f.code for f in info.value.findings}


class TestCleanPrograms:
    """The verifier accepts every program the frontend actually produces."""

    @pytest.mark.parametrize("name", sorted(WCET_BENCHMARKS))
    def test_wcet_benchmarks_clean(self, name):
        program = compile_source(wcet_benchmark_source(name))
        assert verify_program(program) == []

    @pytest.mark.parametrize("name", sorted(CRYPTO_BENCHMARKS))
    def test_table7_kernels_clean(self, name):
        kernel = crypto_kernel(name)
        source = build_client_source(kernel, 4096)
        program = compile_source(source)
        assert verify_program(program) == []

    def test_paper_example_clean(self):
        assert verify_program(compile_source(motivating_example_source())) == []

    def test_taint_sparse_kernel_clean(self):
        program = compile_source(taint_sparse_kernel_source(8))
        assert verify_program(program) == []


class TestLintCLI:
    def test_exit_zero_on_clean_source(self, tmp_path, capsys):
        from repro.service.cli import main

        path = tmp_path / "ok.mc"
        path.write_text(VALID_SOURCE)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "IR clean" in out

    def test_exit_zero_json_shape(self, tmp_path, capsys):
        from repro.service.cli import main

        path = tmp_path / "ok.mc"
        path.write_text(VALID_SOURCE)
        assert main(["lint", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["program"] == "main"

    def test_exit_two_on_compile_error(self, tmp_path, capsys):
        from repro.service.cli import main

        path = tmp_path / "broken.mc"
        path.write_text("int main( {\n")
        assert main(["lint", str(path)]) == 2
        assert "compile failed" in capsys.readouterr().err

    def test_exit_two_json_carries_error(self, tmp_path, capsys):
        from repro.service.cli import main

        path = tmp_path / "broken.mc"
        path.write_text("int main( {\n")
        assert main(["lint", str(path), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]
        assert payload["findings"] == []

    def test_exit_one_on_findings(self, tmp_path, capsys, monkeypatch):
        # The in-tree frontend only emits valid IR, so the findings path
        # is driven by substituting the verifier — the CLI contract under
        # test is the exit code and rendering, not the compiler.
        import repro.ir.verify as verify_module
        from repro.ir.verify import LintFinding
        from repro.service.cli import main

        def fake_verify(program):
            return [
                LintFinding(
                    code=DANGLING_SUCCESSOR,
                    function="main",
                    block="entry",
                    message="branches to unknown block 'nowhere'",
                )
            ]

        monkeypatch.setattr(verify_module, "verify_program", fake_verify)
        path = tmp_path / "ok.mc"
        path.write_text(VALID_SOURCE)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "1 finding(s)" in out and DANGLING_SUCCESSOR in out

    def test_lint_reads_stdin(self, capsys, monkeypatch):
        import io

        from repro.service.cli import main

        monkeypatch.setattr("sys.stdin", io.StringIO(VALID_SOURCE))
        assert main(["lint", "-"]) == 0


class TestDebugVerifyHook:
    def test_compile_runs_verifier_when_enabled(self, monkeypatch):
        calls = []
        monkeypatch.setenv("REPRO_DEBUG_VERIFY", "1")
        monkeypatch.setattr(
            "repro.frontend.assert_valid_ir", lambda program: calls.append(program)
        )
        compile_source(VALID_SOURCE)
        assert len(calls) == 1

    def test_compile_skips_verifier_by_default(self, monkeypatch):
        calls = []
        monkeypatch.delenv("REPRO_DEBUG_VERIFY", raising=False)
        monkeypatch.setattr(
            "repro.frontend.assert_valid_ir", lambda program: calls.append(program)
        )
        compile_source(VALID_SOURCE)
        assert calls == []

    def test_enabled_end_to_end_on_valid_program(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_VERIFY", "1")
        program = compile_source(VALID_SOURCE)
        assert program.cfg.entry in program.cfg.blocks
