"""Unit tests for the result containers, the depth chooser, and the
VCFG/engine bookkeeping that the tables report."""

from repro import compile_source
from repro.analysis.depth import DepthChooser
from repro.analysis.result import AccessClassification, CacheAnalysisResult
from repro.cache.abstract import CacheState
from repro.cache.config import CacheConfig
from repro.cache.shadow import ShadowCacheState
from repro.ir.instructions import MemoryRef
from repro.ir.memory import AccessKind, MemoryBlock
from repro.speculation.config import SpeculationConfig
from repro.speculation.vcfg import build_vcfg


def _classification(block="bb", index=0, **kwargs):
    defaults = dict(
        block=block,
        instruction_index=index,
        ref=MemoryRef(symbol="x"),
        kind=AccessKind.CONCRETE,
        must_hit=True,
    )
    defaults.update(kwargs)
    return AccessClassification(**defaults)


class TestCacheAnalysisResult:
    def _result(self, classifications):
        return CacheAnalysisResult(
            program_name="p",
            cache_config=CacheConfig.small(),
            speculation=SpeculationConfig.paper_default(),
            classifications=classifications,
        )

    def test_counts_split_normal_and_speculative(self):
        result = self._result(
            [
                _classification(index=0, must_hit=True),
                _classification(index=1, must_hit=False),
                _classification(index=2, must_hit=False, speculative=True, scenario_color=0),
            ]
        )
        assert result.access_count == 2
        assert result.hit_count == 1
        assert result.miss_count == 1
        assert result.speculative_miss_count == 1

    def test_speculative_miss_sites_deduplicated_across_colors(self):
        result = self._result(
            [
                _classification(index=5, must_hit=False, speculative=True, scenario_color=0),
                _classification(index=5, must_hit=False, speculative=True, scenario_color=1),
            ]
        )
        assert result.speculative_miss_count == 1

    def test_leak_detection_flags(self):
        clean = self._result([_classification(secret_indexed=True, secret_dependent=False)])
        leaky = self._result([_classification(secret_indexed=True, secret_dependent=True, must_hit=False)])
        assert not clean.leak_detected
        assert leaky.leak_detected
        assert len(leaky.secret_dependent_classifications()) == 1

    def test_site_sets(self):
        result = self._result(
            [
                _classification(index=0, must_hit=True),
                _classification(index=1, must_hit=False),
            ]
        )
        assert result.must_hit_sites() == {("bb", 0)}
        assert result.miss_sites() == {("bb", 1)}

    def test_is_speculative_flag(self):
        spec = self._result([])
        assert spec.is_speculative
        non_spec = CacheAnalysisResult(
            program_name="p", cache_config=CacheConfig.small(), speculation=None
        )
        assert not non_spec.is_speculative
        zero_depth = CacheAnalysisResult(
            program_name="p",
            cache_config=CacheConfig.small(),
            speculation=SpeculationConfig.no_speculation(),
        )
        assert not zero_depth.is_speculative

    def test_summary_mentions_side_channel_only_when_relevant(self):
        with_secret = self._result([_classification(secret_indexed=True, secret_dependent=True)])
        without_secret = self._result([_classification()])
        assert "side channel" in with_secret.summary()
        assert "side channel" not in without_secret.summary()


class TestDepthChooser:
    SOURCE = """
    char a[64]; char b[64]; char c[64]; char p;
    int main() {
      a[0]; p;
      if (p == 0) { b[0]; } else { c[0]; }
      a[0];
      return 0;
    }
    """

    def _setup(self, dynamic=True):
        program = compile_source(self.SOURCE)
        config = SpeculationConfig(
            depth_miss=200, depth_hit=2, dynamic_depth_bounding=dynamic
        )
        vcfg = build_vcfg(program.cfg, config)
        chooser = DepthChooser(config, program.layout)
        return program, vcfg, chooser

    def test_default_window_is_long(self):
        _, vcfg, chooser = self._setup()
        scenario = vcfg.scenarios[0]
        assert chooser.active_window(scenario) is scenario.window_miss

    def test_condition_must_hit_switches_to_short_window(self):
        program, vcfg, chooser = self._setup()
        scenario = vcfg.scenarios[0]
        state = ShadowCacheState.empty(64).access_block(MemoryBlock("p", 0))
        window = chooser.choose(scenario, state)
        assert window.depth == 2

    def test_condition_possibly_missing_locks_long_window(self):
        program, vcfg, chooser = self._setup()
        scenario = vcfg.scenarios[0]
        empty = ShadowCacheState.empty(64)
        window = chooser.choose(scenario, empty)
        assert window.depth == 200
        # Even if the condition later becomes a must hit, the long window is
        # kept (the switch is monotone in one direction only).
        cached = empty.access_block(MemoryBlock("p", 0))
        assert chooser.choose(scenario, cached).depth == 200

    def test_dynamic_bounding_disabled_always_long(self):
        program, vcfg, chooser = self._setup(dynamic=False)
        scenario = vcfg.scenarios[0]
        state = ShadowCacheState.empty(64).access_block(MemoryBlock("p", 0))
        assert chooser.choose(scenario, state).depth == 200

    def test_bottom_state_is_optimistic(self):
        program, vcfg, chooser = self._setup()
        scenario = vcfg.scenarios[0]
        window = chooser.choose(scenario, ShadowCacheState.bottom(64))
        assert window.depth == 2

    def test_stats_report_shortened_scenarios(self):
        program, vcfg, chooser = self._setup()
        state = ShadowCacheState.empty(64).access_block(MemoryBlock("p", 0))
        for scenario in vcfg.scenarios:
            chooser.choose(scenario, state)
        stats = chooser.stats(vcfg.scenarios)
        assert stats.scenarios_total == len(vcfg.scenarios)
        assert stats.scenarios_shortened == len(vcfg.scenarios)
        assert stats.virtual_edges_active <= stats.virtual_edges_full
        assert stats.virtual_edges_removed >= 0

    def test_plain_state_also_supported(self):
        program, vcfg, chooser = self._setup()
        scenario = vcfg.scenarios[0]
        state = CacheState.empty(64).access_block(MemoryBlock("p", 0))
        assert chooser.choose(scenario, state).depth == 2
