"""End-to-end tests for the analysis daemon and its client.

Each test stands up a real :class:`ReproServer` on an ephemeral
localhost port and talks to it through :class:`ServiceClient` — the same
code path ``repro serve`` / ``repro submit`` use.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.engine.engine import execute_request
from repro.engine.request import AnalysisRequest
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproServer
from repro.service.wire import (
    WireError,
    request_from_wire,
    request_to_wire,
    result_fingerprint,
)

SOURCE = "char a[64]; int p; int main() { if (p > 0) { a[0]; } a[0]; return 0; }"
BROKEN_SOURCE = "int main( { nope"


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(store_dir=str(tmp_path / "store"), port=0, max_workers=2).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as cli:
        yield cli


class TestWireFormat:
    def test_request_roundtrip_preserves_keys(self):
        from repro.cache.config import CacheConfig
        from repro.speculation.config import SpeculationConfig

        request = AnalysisRequest.speculative(
            SOURCE,
            entry="main",
            line_size=32,
            cache_config=CacheConfig(num_lines=16, line_size=32),
            speculation=SpeculationConfig.paper_default().with_depths(50, 10),
            label="roundtrip",
        )
        restored = request_from_wire(json.loads(json.dumps(request_to_wire(request))))
        assert restored == request
        assert restored.result_key() == request.result_key()
        assert restored.compile_key() == request.compile_key()
        assert restored.label == "roundtrip"

    def test_baseline_request_roundtrip(self):
        request = AnalysisRequest.baseline(SOURCE, use_shadow_state=False)
        restored = request_from_wire(request_to_wire(request))
        assert restored == request
        assert restored.result_key() == request.result_key()

    def test_malformed_requests_rejected(self):
        with pytest.raises(WireError):
            request_from_wire({})
        with pytest.raises(WireError):
            request_from_wire({"source": 42})
        with pytest.raises(WireError):
            request_from_wire({"source": SOURCE, "kind": "quantum"})

    def test_fingerprint_ignores_provenance(self):
        request = AnalysisRequest.speculative(SOURCE)
        result = execute_request(request)
        replay = execute_request(request)
        replay.analysis_time = result.analysis_time * 10 + 1.0
        replay.from_cache = True
        assert result_fingerprint(result) == result_fingerprint(replay)


class TestProtocol:
    def test_ping(self, client):
        assert client.ping() > 0

    def test_submit_status_result(self, client):
        request = AnalysisRequest.speculative(SOURCE)
        job_id = client.submit(request)
        assert job_id.startswith("job-")
        wire = client.result(job_id, timeout=60)
        assert wire["misses"] == 3
        status = client.status(job_id)
        assert status["state"] == "done"

    def test_analyze_single_roundtrip(self, client):
        wire = client.analyze(AnalysisRequest.baseline(SOURCE), timeout=60)
        direct = execute_request(AnalysisRequest.baseline(SOURCE))
        assert result_fingerprint(wire) == result_fingerprint(direct)

    def test_unknown_job_is_an_error(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("job-424242")

    def test_failed_analysis_reported_not_fatal(self, client):
        with pytest.raises(ServiceError):
            client.analyze(AnalysisRequest.speculative(BROKEN_SOURCE), timeout=60)
        # The daemon survives and keeps serving.
        assert client.analyze(AnalysisRequest.speculative(SOURCE), timeout=60)

    def test_stats_payload(self, client):
        client.analyze(AnalysisRequest.speculative(SOURCE), timeout=60)
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["scheduler"]["completed"] >= 1
        assert stats["result_store"]["writes"] >= 1

    def test_malformed_lines_answered_with_errors(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as conn:
            reader = conn.makefile("rb")
            for payload in (b"not json\n", b"[1,2,3]\n", b'{"op": "warp"}\n'):
                conn.sendall(payload)
                response = json.loads(reader.readline())
                assert response["ok"] is False and response["error"]
            # The connection is still usable afterwards.
            conn.sendall(b'{"op": "ping"}\n')
            assert json.loads(reader.readline())["ok"] is True

    def test_private_attributes_not_dispatchable(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as conn:
            reader = conn.makefile("rb")
            conn.sendall(b'{"op": "_dispatch"}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is False

    def test_concurrent_clients(self, server):
        import threading

        outcomes: list[str] = []

        def one_client(i: int) -> None:
            with ServiceClient(port=server.port) as cli:
                wire = cli.analyze(
                    AnalysisRequest.speculative(SOURCE, label=f"client-{i}"),
                    timeout=60,
                )
                outcomes.append(result_fingerprint(wire))

        threads = [threading.Thread(target=one_client, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(set(outcomes)) == 1 and len(outcomes) == 6

    def test_shutdown_op_stops_server(self, tmp_path):
        server = ReproServer(store_dir=str(tmp_path / "s"), port=0).start()
        with ServiceClient(port=server.port) as cli:
            cli.shutdown()
        # New connections are refused once the listener closes.
        import time

        for _ in range(50):
            try:
                socket.create_connection(("127.0.0.1", server.port), timeout=0.2).close()
                time.sleep(0.05)
            except OSError:
                break
        else:
            pytest.fail("server still accepting connections after shutdown")


class TestDaemonRestartServedFromStore:
    """The acceptance criterion: a second identical submission against a
    *restarted* daemon is served from the on-disk store — no recompile,
    no fixpoint — bit-identical to direct execution."""

    def test_warm_restart(self, tmp_path):
        store_dir = str(tmp_path / "store")
        request = AnalysisRequest.speculative(SOURCE, label="restart-me")

        first = ReproServer(store_dir=store_dir, port=0).start()
        with ServiceClient(port=first.port) as cli:
            cold = cli.analyze(request, timeout=60)
            assert cold["from_cache"] is False
        first.stop()

        second = ReproServer(store_dir=store_dir, port=0).start()
        try:
            with ServiceClient(port=second.port) as cli:
                warm = cli.analyze(request, timeout=60)
                stats = cli.stats()
        finally:
            second.stop()

        assert warm["from_cache"] is True, "restarted daemon must hit the store"
        assert result_fingerprint(warm) == result_fingerprint(cold)
        assert result_fingerprint(warm) == result_fingerprint(execute_request(request))
        assert stats["result_store"]["hits"] == 1
        assert stats["compile_cache"]["hits"] == 0
        assert stats["compile_cache"]["misses"] == 0, (
            "a store-served request must never reach the front end"
        )

    def test_restart_with_wire_rebuilt_request(self, tmp_path):
        """A client that round-trips the request through JSON (as real
        clients do) still hits the same store entry after a restart."""
        store_dir = str(tmp_path / "store")
        request = AnalysisRequest.baseline(SOURCE)

        first = ReproServer(store_dir=store_dir, port=0).start()
        with ServiceClient(port=first.port) as cli:
            cli.analyze(request, timeout=60)
        first.stop()

        rebuilt = request_from_wire(json.loads(json.dumps(request_to_wire(request))))
        second = ReproServer(store_dir=store_dir, port=0).start()
        try:
            with ServiceClient(port=second.port) as cli:
                warm = cli.analyze(rebuilt, timeout=60)
        finally:
            second.stop()
        assert warm["from_cache"] is True
