"""Differential tests for incremental re-analysis.

The contract under test: a warm-started sparse fixpoint seeded from a
retained :class:`~repro.engine.incremental.AnalysisSnapshot` is
*bit-identical* to a cold solve of the edited program — same
classifications, same entry states, same aggregate counters — across
edit shapes, cache geometries and merge strategies.  Only observational
fields (iterations, analysis_time) may differ.

Also pinned here: the ``warm_from=`` lineage handle never perturbs
request identity or caching; every incompatibility degrades to a
counted cold fallback rather than an error; snapshot codec round-trips;
ephemeral (IR-patched) runs never pollute the result tiers; and the
IR-level fence patching used by the incremental mitigation loop is
verdict-equivalent to source-level patching.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.cache.config import CacheConfig
from repro.engine.engine import AnalysisEngine, execute_request
from repro.engine.incremental import (
    _flatten_slots,
    _unflatten_slots,
    execute_retaining,
    snapshot_compatible,
    snapshot_eligible,
    snapshot_from_analysis,
    warm_start_from_snapshot,
)
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.frontend import compile_source
from repro.ir.cfg import diff_cfgs
from repro.ir.memory import MemoryBlock
from repro.ir.printer import program_to_source
from repro.lang.parser import parse_program
from repro.mitigation.patch import apply_fence_points, apply_fence_points_ir
from repro.mitigation.synthesis import synthesize_mitigation
from repro.service.wire import WireError, request_from_wire, request_to_wire
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy

# ----------------------------------------------------------------------
# Edited-program pairs
# ----------------------------------------------------------------------
BASE_SOURCE = """
char table[1024];
char cnd[256];
secret int key;
int k;
int main() {
    int x;
    x = 0;
    if (cnd[0] > 0) {
        x = x + table[64];
    }
    if (k > 0) {
        x = x + table[128];
    }
    x = x + table[key];
    return x;
}
"""

#: Each edit maps the base source to an edited source; the warm run
#: re-analyses the edited program seeded from the base snapshot.
EDITS = {
    # A fence inserted into a branch arm (what the mitigation loop does).
    "fence_insert": BASE_SOURCE.replace(
        "x = x + table[64];", "fence;\n        x = x + table[64];"
    ),
    # A fence *removed* again: the reverse direction of the edit loop.
    # (Realised by warm-starting the base from the fenced variant below.)
    "condition_change": BASE_SOURCE.replace("cnd[0]", "cnd[1]"),
    # New accesses appear in an existing block.
    "statement_add": BASE_SOURCE.replace(
        "x = x + table[128];",
        "x = x + table[128];\n        x = x + table[192];",
    ),
    # A whole conditional disappears: blocks removed, successors rewired.
    "branch_delete": BASE_SOURCE.replace(
        "    if (k > 0) {\n        x = x + table[128];\n    }\n", ""
    ),
}

GEOMETRIES = [
    CacheConfig(num_lines=4, line_size=64),
    CacheConfig(num_lines=8, line_size=64, associativity=2, policy="fifo"),
]


def _request(source: str, geometry: CacheConfig, **kwargs) -> AnalysisRequest:
    return AnalysisRequest.speculative(source, cache_config=geometry, **kwargs)


def assert_semantically_identical(warm, cold) -> None:
    """Bit-identity on everything except the observational fields."""
    assert warm.classifications == cold.classifications
    assert warm.entry_states == cold.entry_states
    assert warm.hit_count == cold.hit_count
    assert warm.miss_count == cold.miss_count
    assert warm.speculative_miss_count == cold.speculative_miss_count
    assert warm.leak_site_count == cold.leak_site_count
    assert warm.widenings == cold.widenings


def warm_vs_cold(base_source: str, edited_source: str, geometry, **kwargs):
    """Run the edit warm (seeded from the base snapshot) and cold
    (cache-free), returning ``(warm, cold, engine)``."""
    engine = AnalysisEngine(incremental=True)
    base = _request(base_source, geometry, **kwargs)
    engine.ensure_snapshot(base)
    edited = _request(
        edited_source, geometry, warm_from=base.result_key(), **kwargs
    )
    warm = engine.run(edited)
    cold = execute_request(edited)
    return warm, cold, engine


# ----------------------------------------------------------------------
# Warm-vs-cold differential matrix
# ----------------------------------------------------------------------
class TestWarmColdIdentity:
    @pytest.mark.parametrize("geometry", GEOMETRIES, ids=["paper-lru", "fifo-2way"])
    @pytest.mark.parametrize("edit", sorted(EDITS))
    def test_edit_matrix(self, edit, geometry):
        warm, cold, engine = warm_vs_cold(BASE_SOURCE, EDITS[edit], geometry)
        assert engine.stats.incremental.warm_hits == 1, (
            f"edit {edit!r} fell back cold"
        )
        assert_semantically_identical(warm, cold)

    @pytest.mark.parametrize("strategy", list(MergeStrategy))
    def test_merge_strategies(self, strategy):
        speculation = SpeculationConfig(
            depth_miss=64, depth_hit=16, merge_strategy=strategy
        )
        warm, cold, engine = warm_vs_cold(
            BASE_SOURCE,
            EDITS["fence_insert"],
            GEOMETRIES[0],
            speculation=speculation,
        )
        assert engine.stats.incremental.warm_hits == 1
        assert_semantically_identical(warm, cold)

    def test_fence_remove(self):
        """The reverse edit: base warm-started from the fenced variant."""
        warm, cold, engine = warm_vs_cold(
            EDITS["fence_insert"], BASE_SOURCE, GEOMETRIES[0]
        )
        assert engine.stats.incremental.warm_hits == 1
        assert_semantically_identical(warm, cold)

    def test_noop_reemit(self):
        """A printer round-trip changes the text (and the line numbers)
        but not the content fingerprints: the warm run must still match
        the re-emitted program's own cold analysis."""
        reemitted = program_to_source(parse_program(BASE_SOURCE))
        assert reemitted != BASE_SOURCE
        warm, cold, engine = warm_vs_cold(BASE_SOURCE, reemitted, GEOMETRIES[0])
        assert engine.stats.incremental.warm_hits == 1
        assert_semantically_identical(warm, cold)
        base_cfg = compile_source(BASE_SOURCE).cfg
        reemitted_cfg = compile_source(reemitted).cfg
        assert diff_cfgs(base_cfg, reemitted_cfg).is_identical

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_warm_matches_sharded_cold(self, backend):
        """The warm (unsharded) verdict equals a scenario-sharded cold
        run's on every backend — the sharded backends are pinned
        bit-identical to the canonical engine elsewhere; this closes the
        triangle."""
        warm, _, _ = warm_vs_cold(
            BASE_SOURCE, EDITS["statement_add"], GEOMETRIES[0]
        )
        sharded = execute_request(
            _request(
                EDITS["statement_add"],
                GEOMETRIES[0],
                scenario_shards=2,
                shard_backend=backend,
            )
        )
        assert warm.classifications == sharded.classifications
        assert warm.entry_states == sharded.entry_states
        assert warm.leak_site_count == sharded.leak_site_count
        assert warm.hit_count == sharded.hit_count
        assert warm.miss_count == sharded.miss_count
        assert warm.speculative_miss_count == sharded.speculative_miss_count


# ----------------------------------------------------------------------
# The warm_from lineage handle
# ----------------------------------------------------------------------
class TestWarmFromHandle:
    def test_never_affects_identity_or_keys(self):
        plain = AnalysisRequest.speculative(BASE_SOURCE)
        hinted = replace(plain, warm_from="0" * 64)
        assert plain == hinted
        assert plain.result_key() == hinted.result_key()
        assert plain.compile_key() == hinted.compile_key()

    def test_baseline_classmethod_survives(self):
        """``baseline`` is a constructor, not the lineage field (the
        field is ``warm_from``); both must coexist."""
        request = AnalysisRequest.baseline(BASE_SOURCE)
        assert request.kind is AnalysisKind.BASELINE
        assert request.warm_from is None

    def test_wire_round_trip(self):
        request = replace(
            AnalysisRequest.speculative(BASE_SOURCE), warm_from="ab" * 32
        )
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.warm_from == request.warm_from
        assert decoded.result_key() == request.result_key()

    def test_wire_legacy_and_malformed(self):
        wire = request_to_wire(AnalysisRequest.speculative(BASE_SOURCE))
        del wire["warm_from"]
        assert request_from_wire(wire).warm_from is None
        wire["warm_from"] = 7
        with pytest.raises(WireError, match="warm_from"):
            request_from_wire(wire)

    def test_cached_result_ignores_handle(self):
        """A result cached under the plain request replays for the hinted
        twin (same key), and vice versa — the handle is execution advice,
        not identity."""
        engine = AnalysisEngine(incremental=True)
        request = AnalysisRequest.speculative(BASE_SOURCE)
        engine.ensure_snapshot(request)
        hinted = replace(request, warm_from="not-a-real-key")
        replayed = engine.run(hinted)
        assert replayed.from_cache
        # The replay never attempted (and never counted) a warm start.
        assert engine.stats.incremental.cold_fallbacks == 0


# ----------------------------------------------------------------------
# Fallbacks: every incompatibility degrades to a counted cold run
# ----------------------------------------------------------------------
class TestColdFallbacks:
    def _warm_attempt(self, engine, base, edited_source, **overrides):
        edited = replace(
            _request(edited_source, GEOMETRIES[0]),
            warm_from=base.result_key(),
            **overrides,
        )
        result = engine.run(edited)
        cold = execute_request(replace(edited, warm_from=None))
        assert_semantically_identical(result, cold)
        return engine.stats.incremental

    def test_missing_snapshot(self):
        engine = AnalysisEngine(incremental=True)
        request = replace(
            _request(EDITS["fence_insert"], GEOMETRIES[0]), warm_from="9" * 64
        )
        result = engine.run(request)
        assert_semantically_identical(result, execute_request(request))
        stats = engine.stats.incremental
        assert stats.cold_fallbacks == 1
        assert stats.warm_hits == 0

    def test_geometry_mismatch(self):
        engine = AnalysisEngine(incremental=True)
        base = _request(BASE_SOURCE, GEOMETRIES[0])
        engine.ensure_snapshot(base)
        edited = replace(
            _request(EDITS["fence_insert"], GEOMETRIES[1]),
            warm_from=base.result_key(),
        )
        result = engine.run(edited)
        assert_semantically_identical(result, execute_request(edited))
        assert engine.stats.incremental.cold_fallbacks == 1

    def test_secret_symbols_gate(self):
        """Fixpoint states do not depend on secret annotations but the
        retained classifications do: flipping an annotation must reject
        the snapshot, not silently reuse leak verdicts."""
        engine = AnalysisEngine(incremental=True)
        base = _request(BASE_SOURCE, GEOMETRIES[0])
        engine.ensure_snapshot(base)
        desecreted = BASE_SOURCE.replace("secret int key;", "int key;")
        stats = self._warm_attempt(engine, base, desecreted)
        assert stats.cold_fallbacks == 1
        assert stats.warm_hits == 0

    def test_lru_eviction_means_cold(self):
        engine = AnalysisEngine(incremental=True, snapshot_cache_size=1)
        base = _request(BASE_SOURCE, GEOMETRIES[0])
        engine.ensure_snapshot(base)
        evictor = _request(EDITS["condition_change"], GEOMETRIES[0])
        engine.ensure_snapshot(evictor)  # capacity 1: evicts the base
        assert engine.stats.incremental.retained == 1
        stats = self._warm_attempt(engine, base, EDITS["fence_insert"])
        assert stats.cold_fallbacks == 1

    def test_compatibility_reasons(self):
        program = compile_source(BASE_SOURCE)
        request = _request(BASE_SOURCE, GEOMETRIES[0])
        result, analysis = execute_retaining(request, program)
        snapshot = snapshot_from_analysis(request, program, analysis, result)
        assert snapshot_compatible(snapshot, request, program) is None
        other_geometry = _request(BASE_SOURCE, GEOMETRIES[1])
        assert (
            snapshot_compatible(snapshot, other_geometry, program)
            == "cache_config_mismatch"
        )
        widened = replace(snapshot, widenings=3)
        assert snapshot_compatible(widened, request, program) == "baseline_widened"

    def test_eligibility(self):
        assert snapshot_eligible(AnalysisRequest.speculative(BASE_SOURCE))
        assert not snapshot_eligible(AnalysisRequest.baseline(BASE_SOURCE))
        assert not snapshot_eligible(
            AnalysisRequest.speculative(BASE_SOURCE, scenario_shards=2)
        )


# ----------------------------------------------------------------------
# Snapshot codec
# ----------------------------------------------------------------------
class TestSnapshotCodec:
    def _retained(self, compact: bool):
        program = compile_source(BASE_SOURCE)
        request = _request(BASE_SOURCE, GEOMETRIES[0])
        result, analysis = execute_retaining(request, program)
        snapshot = snapshot_from_analysis(
            request, program, analysis, result, compact=compact
        )
        return snapshot, analysis.last_fixpoint

    @staticmethod
    def _nonempty(slots):
        # The flat encoding has no way to say "this block has zero slots",
        # so empty per-block dicts vanish in the round trip; a missing
        # block and an empty one mean the same thing to the warm planner.
        return {name: per for name, per in slots.items() if per}

    def test_blob_round_trip(self):
        snapshot, fixpoint = self._retained(compact=True)
        assert snapshot.nbytes > 0
        warm = warm_start_from_snapshot(snapshot)
        assert warm.normal == fixpoint.normal
        assert warm.slots == self._nonempty(fixpoint.speculative)
        # The decode is memoised on the snapshot (same object back).
        assert warm_start_from_snapshot(snapshot) is warm

    def test_flatten_unflatten_inverse(self):
        _, fixpoint = self._retained(compact=True)
        assert fixpoint.speculative, "test program produced no slots"
        flat = _flatten_slots(fixpoint.speculative)
        assert _unflatten_slots(flat) == self._nonempty(fixpoint.speculative)

    def test_non_compact_skips_encode(self):
        """Chaining snapshots carry their states pre-decoded with empty
        blobs; the decoded view must equal the compact round-trip's."""
        snapshot, fixpoint = self._retained(compact=False)
        assert snapshot.nbytes == 0
        warm = warm_start_from_snapshot(snapshot)
        assert warm.normal == fixpoint.normal
        assert warm.slots == fixpoint.speculative


# ----------------------------------------------------------------------
# Ephemeral runs: the IR-patch quarantine
# ----------------------------------------------------------------------
LEAKY_POINTS_SOURCE = BASE_SOURCE  # branch arms exist at lines 10 and 13


def _first_arm_points(source: str):
    from repro.mitigation.patch import enumerate_fence_points

    return (enumerate_fence_points(parse_program(source))[0],)


class TestEphemeralQuarantine:
    def test_results_never_enter_the_cache(self):
        engine = AnalysisEngine(incremental=True)
        base = _request(BASE_SOURCE, GEOMETRIES[0])
        engine.ensure_snapshot(base)
        program = engine.compile(base)
        points = _first_arm_points(BASE_SOURCE)
        patched_ast = apply_fence_points(parse_program(BASE_SOURCE), points)
        source = program_to_source(patched_ast)
        patched_program = apply_fence_points_ir(program, points, source)
        assert patched_program is not None
        patched_request = replace(
            base, source=source, warm_from=base.result_key()
        )
        ephemeral = engine.run_ephemeral(patched_request, patched_program)
        # A later genuine run of the same request must recompute from the
        # *source-faithful* program, not replay the IR twin's result.
        genuine = engine.run(patched_request)
        assert not genuine.from_cache
        # Verdicts agree even though the line-carrying fields may not.
        assert ephemeral.leak_site_count == genuine.leak_site_count
        assert ephemeral.hit_count == genuine.hit_count
        assert ephemeral.miss_count == genuine.miss_count

    def test_retention_enables_chaining(self):
        engine = AnalysisEngine(incremental=True)
        base = _request(BASE_SOURCE, GEOMETRIES[0])
        engine.ensure_snapshot(base)
        before = engine.stats.incremental.retained
        program = engine.compile(base)
        points = _first_arm_points(BASE_SOURCE)
        patched_ast = apply_fence_points(parse_program(BASE_SOURCE), points)
        source = program_to_source(patched_ast)
        patched_program = apply_fence_points_ir(program, points, source)
        patched_request = replace(
            base, source=source, warm_from=base.result_key()
        )
        engine.run_ephemeral(patched_request, patched_program, retain=True)
        assert engine.stats.incremental.retained == before + 1

    def test_rejects_ineligible_requests(self):
        engine = AnalysisEngine(incremental=True)
        request = AnalysisRequest.baseline(BASE_SOURCE)
        with pytest.raises(ValueError, match="speculative"):
            engine.run_ephemeral(request, compile_source(BASE_SOURCE))


# ----------------------------------------------------------------------
# IR-level patching equals source-level patching (real kernel)
# ----------------------------------------------------------------------
class TestIRPatchEquivalence:
    def test_des_candidates(self):
        from repro.bench.tables import table7_client_request
        from repro.mitigation.synthesis import _candidate_groups

        request = replace(
            table7_client_request("des"), kind=AnalysisKind.SPECULATIVE
        )
        engine = AnalysisEngine(incremental=True)
        engine.ensure_snapshot(request)
        program = engine.compile(request)
        program_ast = parse_program(request.source)
        groups = _candidate_groups(program, request)
        assert groups, "no candidates for des"
        for points in groups:
            patched_ast = apply_fence_points(program_ast, points)
            source = program_to_source(patched_ast)
            patched_program = apply_fence_points_ir(program, points, source)
            if patched_program is None:
                continue  # no IR image (caller takes the source path)
            patched_request = replace(
                request, source=source, warm_from=request.result_key()
            )
            warm = engine.run_ephemeral(patched_request, patched_program)
            cold = execute_request(patched_request)
            assert warm.leak_site_count == cold.leak_site_count, points
            assert warm.hit_count == cold.hit_count, points
            assert warm.miss_count == cold.miss_count, points
            assert warm.speculative_miss_count == cold.speculative_miss_count, (
                points
            )


# ----------------------------------------------------------------------
# Incremental mitigation synthesis: identical placements, fewer cycles
# ----------------------------------------------------------------------
class TestIncrementalSynthesis:
    @pytest.mark.parametrize("kernel", ["des", "encoder"])
    def test_verdict_equivalence(self, kernel):
        from repro.bench.tables import table7_client_request

        request = table7_client_request(kernel)
        cold = synthesize_mitigation(
            request, engine=AnalysisEngine(incremental=False)
        )
        warm = synthesize_mitigation(
            request, engine=AnalysisEngine(incremental=True)
        )
        assert not cold.incremental and warm.incremental
        assert cold.chosen == warm.chosen
        assert cold.leak_sites_before == warm.leak_sites_before
        cold_sel, warm_sel = cold.selected(), warm.selected()
        assert (cold_sel is None) == (warm_sel is None)
        if cold_sel is not None:
            assert cold_sel.points == warm_sel.points
            assert cold_sel.leak_sites_after == warm_sel.leak_sites_after
            assert cold_sel.verified == warm_sel.verified
            assert cold_sel.wcet_cycles == warm_sel.wcet_cycles
            assert cold_sel.patched_source == warm_sel.patched_source


# ----------------------------------------------------------------------
# MemoryBlock fast dunders stay faithful to the dataclass semantics
# ----------------------------------------------------------------------
class TestMemoryBlockDunders:
    def test_equality_and_hash(self):
        a, b = MemoryBlock("table", 3), MemoryBlock("table", 3)
        assert a == b and hash(a) == hash(b)
        assert a != MemoryBlock("table", 4)
        assert a != MemoryBlock("elbat", 3)
        assert a != "table"
        assert len({a, b, MemoryBlock("table", 4)}) == 2

    def test_ordering_preserved(self):
        blocks = [MemoryBlock("b", 1), MemoryBlock("a", 2), MemoryBlock("a", 1)]
        assert sorted(blocks) == [
            MemoryBlock("a", 1),
            MemoryBlock("a", 2),
            MemoryBlock("b", 1),
        ]

    def test_pickle_carries_fields_only(self):
        """The cached hash is per-process (str hashing is seeded), so the
        pickle form must rebuild from the fields alone."""
        block = MemoryBlock("sbox", -2)
        assert block.__reduce__() == (MemoryBlock, ("sbox", -2))
        clone = pickle.loads(pickle.dumps(block))
        assert clone == block and hash(clone) == hash(block)
        assert clone.is_placeholder
