"""Tests for the compact abstract-state codec: round-trip identity across
every state flavour × geometry × policy, canonical (deterministic) bytes,
compactness versus pickling, and strict rejection of foreign or damaged
blobs — including the version-bump contract."""

from __future__ import annotations

import pickle
import random

import pytest

from repro import compile_source
from repro.analysis.multicolor import SpeculativeCacheAnalysis
from repro.bench.programs import branchy_kernel_source
from repro.cache.abstract import AGE_INFINITY, CacheState
from repro.cache.codec import (
    CODEC_VERSION,
    MAGIC,
    CodecError,
    decode_state,
    decode_state_map,
    encode_state,
    encode_state_map,
)
from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssocCacheState
from repro.cache.shadow import ShadowCacheState
from repro.ir.memory import MemoryBlock
from repro.speculation.config import SpeculationConfig

SEED = 0xC0DEC

#: Every (geometry, policy) axis the codec must cover: fully associative
#: and set-associative, lru and fifo.
GEOMETRIES = [
    CacheConfig(num_lines=4, line_size=64),
    CacheConfig(num_lines=8, line_size=64, policy="fifo"),
    CacheConfig(num_lines=8, line_size=64, associativity=2),
    CacheConfig(num_lines=16, line_size=64, associativity=4, policy="fifo"),
]


def random_blocks(rng: random.Random, count: int) -> list[MemoryBlock]:
    symbols = ["a", "key", "sbox", "very_long_symbol_name_for_interning", "cnd"]
    blocks = []
    for _ in range(count):
        # Negative indices are placeholder lines and must survive the
        # zigzag encoding.
        index = rng.choice([0, 1, 32, 1023, -1, -17])
        blocks.append(MemoryBlock(rng.choice(symbols), index))
    return blocks


def random_flat(rng: random.Random, num_lines: int, policy: str) -> CacheState:
    ages = {
        block: rng.choice([0, 1, num_lines - 1, AGE_INFINITY])
        for block in random_blocks(rng, rng.randrange(0, 6))
    }
    return CacheState(num_lines=num_lines, ages=ages, policy=policy)


def random_shadow(rng: random.Random, num_lines: int, policy: str) -> ShadowCacheState:
    must = {
        block: rng.randrange(num_lines)
        for block in random_blocks(rng, rng.randrange(0, 4))
    }
    may = dict(must)
    for block in random_blocks(rng, rng.randrange(0, 4)):
        may.setdefault(block, rng.randrange(num_lines))
    return ShadowCacheState(num_lines=num_lines, must=must, may=may, policy=policy)


def random_state(rng: random.Random, config: CacheConfig, shadow: bool):
    maker = random_shadow if shadow else random_flat
    if config.associativity is None:
        return maker(rng, config.num_lines, config.policy)
    num_sets = config.num_lines // config.associativity
    return SetAssocCacheState(
        num_sets=num_sets,
        ways=config.associativity,
        sets=tuple(
            maker(rng, config.associativity, config.policy) for _ in range(num_sets)
        ),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("geometry", range(len(GEOMETRIES)))
    @pytest.mark.parametrize("shadow", [False, True])
    def test_random_states_round_trip(self, geometry, shadow):
        rng = random.Random(SEED + geometry)
        config = GEOMETRIES[geometry]
        for _ in range(50):
            state = random_state(rng, config, shadow)
            decoded = decode_state(encode_state(state))
            assert decoded == state
            assert type(decoded) is type(state)

    @pytest.mark.parametrize("shadow", [False, True])
    def test_bottom_states_round_trip(self, shadow):
        flat_cls = ShadowCacheState if shadow else CacheState
        kwargs = (
            {"must": {}, "may": {}} if shadow else {"ages": {}}
        )
        bottom = flat_cls(num_lines=4, is_bottom=True, policy="fifo", **kwargs)
        assert decode_state(encode_state(bottom)) == bottom
        wrapper = SetAssocCacheState(
            num_sets=2,
            ways=2,
            sets=(
                flat_cls(num_lines=2, is_bottom=True, **kwargs),
                flat_cls(num_lines=2, is_bottom=True, **kwargs),
            ),
            is_bottom=True,
        )
        decoded = decode_state(encode_state(wrapper))
        assert decoded == wrapper and decoded.is_bottom

    def test_fixpoint_states_round_trip(self):
        """Real engine output — every reachable block's normal state —
        survives the codec on both abstract domains."""
        program = compile_source(branchy_kernel_source(4))
        for config in (GEOMETRIES[0], GEOMETRIES[3]):
            result = SpeculativeCacheAnalysis(
                program,
                cache_config=config,
                speculation=SpeculationConfig(depth_miss=64, depth_hit=16),
            ).run()
            states = dict(result.entry_states)
            assert states
            assert decode_state_map(encode_state_map(states)) == states

    def test_state_map_round_trip_and_empty(self):
        rng = random.Random(SEED)
        states = {
            f"block{i}": random_state(rng, GEOMETRIES[0], shadow=False)
            for i in range(10)
        }
        assert decode_state_map(encode_state_map(states)) == states
        assert decode_state_map(encode_state_map({})) == {}

    def test_equal_states_encode_to_equal_bytes(self):
        """Entries are written in sorted order, so dict insertion order
        (and hash randomisation) never leaks into the encoding."""
        blocks = [MemoryBlock("a", 0), MemoryBlock("b", 3), MemoryBlock("c", -2)]
        forward = CacheState(num_lines=4, ages={b: i for i, b in enumerate(blocks)})
        backward = CacheState(
            num_lines=4, ages={b: i for i, b in reversed(list(enumerate(blocks)))}
        )
        assert forward == backward
        assert encode_state(forward) == encode_state(backward)


class TestCompactness:
    def test_single_state_much_smaller_than_pickle(self):
        state = CacheState(
            num_lines=4, ages={MemoryBlock("a", 0): 1, MemoryBlock("b", 2): 3}
        )
        encoded = len(encode_state(state))
        pickled = len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
        assert encoded * 5 <= pickled, (encoded, pickled)

    def test_state_map_much_smaller_than_pickle(self):
        """The shard-delta shape (many states sharing few symbols) is the
        codec's raison d'être; pickle memoises repeated strings too (and
        :class:`MemoryBlock`'s field-only ``__reduce__`` keeps its pickle
        form tight), so the map-level win is smaller than the per-state
        one but must still cut the payload by well over a third."""
        program = compile_source(branchy_kernel_source(8))
        result = SpeculativeCacheAnalysis(
            program,
            cache_config=CacheConfig(num_lines=4, line_size=64),
            speculation=SpeculationConfig(depth_miss=64, depth_hit=16),
        ).run()
        states = dict(result.entry_states)
        encoded = len(encode_state_map(states))
        pickled = len(pickle.dumps(states, protocol=pickle.HIGHEST_PROTOCOL))
        assert encoded * 8 <= pickled * 5, (encoded, pickled)


class TestRejection:
    STATE = CacheState(num_lines=4, ages={MemoryBlock("a", 0): 1})

    def test_version_bump_rejected(self):
        blob = bytearray(encode_state(self.STATE))
        blob[len(MAGIC)] = CODEC_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_state(bytes(blob))
        map_blob = bytearray(encode_state_map({"b": self.STATE}))
        map_blob[len(MAGIC)] = CODEC_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_state_map(bytes(map_blob))

    def test_bad_magic_rejected(self):
        blob = b"XXX" + encode_state(self.STATE)[3:]
        with pytest.raises(CodecError, match="magic"):
            decode_state(blob)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            decode_state(encode_state(self.STATE) + b"\x00")
        with pytest.raises(CodecError, match="trailing"):
            decode_state_map(encode_state_map({"b": self.STATE}) + b"\x00")

    def test_truncation_rejected(self):
        blob = encode_state(self.STATE)
        for cut in range(1, len(blob)):
            with pytest.raises(CodecError):
                decode_state(blob[:cut])

    def test_wrong_payload_tag_rejected(self):
        with pytest.raises(CodecError, match="tag"):
            decode_state_map(encode_state(self.STATE))
        with pytest.raises(CodecError, match="tag"):
            decode_state(encode_state_map({"b": self.STATE}))

    def test_unknown_kind_and_policy_rejected(self):
        blob = bytearray(encode_state(self.STATE))
        # header: magic + version + tag, then symbol table, then kind.
        kind_offset = len(blob) - 1
        while blob[kind_offset] != 0x01:  # _KIND_FLAT byte
            kind_offset -= 1
        # Find it properly: re-encode an empty-table state to locate body.
        empty = CacheState(num_lines=4, ages={})
        empty_blob = bytearray(encode_state(empty))
        body = len(MAGIC) + 2 + 1  # header + zero-length symbol table
        assert empty_blob[body] == 0x01
        empty_blob[body] = 0x7F
        with pytest.raises(CodecError, match="kind"):
            decode_state(bytes(empty_blob))
        policy_blob = bytearray(encode_state(empty))
        policy_blob[body + 1] = 0x7F
        with pytest.raises(CodecError, match="policy"):
            decode_state(bytes(policy_blob))

    def test_unencodable_object_rejected(self):
        with pytest.raises(CodecError):
            encode_state("not a cache state")
