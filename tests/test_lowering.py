"""Unit tests for the AST-to-IR lowering."""

import pytest

from repro.errors import LoweringError
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    BinOp,
    CallInstr,
    CondBranch,
    Const,
    Copy,
    Jump,
    Load,
    Return,
    Store,
)
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program


def lower(source: str) -> dict[str, CFG]:
    return lower_program(check_program(parse_program(source)))


def main_cfg(source: str) -> CFG:
    return lower(source)["main"]


class TestBasicLowering:
    def test_entry_block_and_return(self):
        cfg = main_cfg("int main() { return 3; }")
        cfg.validate()
        assert cfg.entry == "entry"
        terminator = cfg.block("entry").terminator
        assert isinstance(terminator, Return)
        assert terminator.value == Const(3)

    def test_missing_return_synthesised(self):
        cfg = main_cfg("int x; int main() { x = 1; }")
        assert cfg.exit_blocks()

    def test_scalar_read_emits_load(self):
        cfg = main_cfg("int x; int main() { return x; }")
        loads = [i for i in cfg.block("entry").instructions if isinstance(i, Load)]
        assert len(loads) == 1
        assert loads[0].ref.symbol == "x"
        assert loads[0].ref.index_const == 0

    def test_scalar_write_emits_store(self):
        cfg = main_cfg("int x; int main() { x = 7; return 0; }")
        stores = [i for i in cfg.block("entry").instructions if isinstance(i, Store)]
        assert len(stores) == 1
        assert stores[0].ref.is_write

    def test_reg_variable_emits_no_memory_access(self):
        cfg = main_cfg("reg int i; int main() { i = 3; return i; }")
        assert cfg.all_memory_refs() == []
        copies = [i for i in cfg.block("entry").instructions if isinstance(i, Copy)]
        assert copies

    def test_array_constant_index_resolved(self):
        cfg = main_cfg("char a[256]; int main() { a[130]; return 0; }")
        (ref,) = cfg.all_memory_refs()
        assert ref.symbol == "a"
        assert ref.index_const == 130

    def test_array_unknown_index(self):
        cfg = main_cfg("int a[64]; int n; int main() { a[n]; return 0; }")
        refs = [r for r in cfg.all_memory_refs() if r.symbol == "a"]
        assert refs[0].index_const is None

    def test_secret_index_flagged(self):
        cfg = main_cfg("secret int k; char t[256]; int main() { t[k]; return 0; }")
        refs = [r for r in cfg.all_memory_refs() if r.symbol == "t"]
        assert refs[0].index_secret

    def test_constant_folding_in_index(self):
        cfg = main_cfg("char a[256]; int main() { reg int i; i = 64; a[i + 64]; return 0; }")
        refs = [r for r in cfg.all_memory_refs() if r.symbol == "a"]
        assert refs[0].index_const == 128

    def test_intrinsic_call(self):
        cfg = main_cfg("int main() { return my_abs(0 - 4); }")
        calls = [i for i in cfg.block("entry").instructions if isinstance(i, CallInstr)]
        assert calls and calls[0].callee == "my_abs"

    def test_pure_constant_expression_folds_away(self):
        cfg = main_cfg("reg int x; int main() { x = 2 * 3 + 1; return x; }")
        binops = [i for i in cfg.block("entry").instructions if isinstance(i, BinOp)]
        assert binops == []


class TestControlFlow:
    def test_if_else_creates_diamond(self):
        cfg = main_cfg(
            "int p; int x; int main() { if (p == 0) x = 1; else x = 2; return x; }"
        )
        branches = cfg.conditional_blocks()
        assert len(branches) == 1
        terminator = cfg.block(branches[0]).terminator
        assert isinstance(terminator, CondBranch)
        assert terminator.true_target != terminator.false_target

    def test_condition_refs_recorded(self):
        cfg = main_cfg("int p; int main() { if (p == 0) { return 1; } return 0; }")
        terminator = cfg.block(cfg.conditional_blocks()[0]).terminator
        assert [ref.symbol for ref in terminator.cond_refs] == ["p"]

    def test_register_condition_has_no_refs(self):
        cfg = main_cfg("reg int p; int main() { if (p == 0) { return 1; } return 0; }")
        terminator = cfg.block(cfg.conditional_blocks()[0]).terminator
        assert terminator.cond_refs == ()

    def test_while_loop_has_back_edge(self):
        cfg = main_cfg(
            "int n; int main() { reg int i; i = 0; while (i < n) { i = i + 1; } return i; }"
        )
        from repro.ir.loops import find_natural_loops

        loops = find_natural_loops(cfg)
        assert len(loops) == 1

    def test_for_loop_with_break(self):
        cfg = main_cfg(
            "int a[64]; int w; int main() { int i;"
            "for (i = 0; i < 30; i++) { if (a[i] > w) break; } return i; }"
        )
        cfg.validate()
        assert len(cfg.conditional_blocks()) == 2

    def test_break_outside_loop_rejected(self):
        with pytest.raises(LoweringError):
            main_cfg("int main() { break; return 0; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(LoweringError):
            main_cfg("int main() { continue; return 0; }")

    def test_unreachable_code_pruned(self):
        cfg = main_cfg("int x; int main() { return 1; x = 2; return x; }")
        for name in cfg.blocks:
            assert name in cfg.reachable_blocks()

    def test_nested_if(self):
        cfg = main_cfg(
            "int a; int b; int main() {"
            "  if (a > 0) { if (b > 0) { return 1; } return 2; }"
            "  return 3; }"
        )
        cfg.validate()
        assert len(cfg.conditional_blocks()) == 2

    def test_array_used_as_scalar_rejected(self):
        with pytest.raises(LoweringError):
            main_cfg("int t[4]; int main() { return t; }")


class TestConstantEnvironment:
    def test_constants_merge_at_join_when_equal(self):
        cfg = main_cfg(
            "char a[256]; int p; int main() { reg int i; i = 64;"
            "  if (p) { p = 1; } else { p = 2; }"
            "  a[i]; return 0; }"
        )
        refs = [r for r in cfg.all_memory_refs() if r.symbol == "a"]
        assert refs[0].index_const == 64

    def test_constants_dropped_when_diverging(self):
        cfg = main_cfg(
            "char a[256]; int p; int main() { reg int i;"
            "  if (p) { i = 0; } else { i = 64; }"
            "  a[i]; return 0; }"
        )
        refs = [r for r in cfg.all_memory_refs() if r.symbol == "a"]
        assert refs[0].index_const is None

    def test_constants_invalidated_by_loop(self):
        cfg = main_cfg(
            "char a[256]; int n; int main() { reg int i; i = 0;"
            "  while (i < n) { i = i + 64; }"
            "  a[i]; return 0; }"
        )
        refs = [r for r in cfg.all_memory_refs() if r.symbol == "a"]
        assert refs[0].index_const is None

    def test_initialized_global_array_value_propagates(self):
        cfg = main_cfg(
            "int t[4] = {0, 64, 128, 192}; char a[256];"
            "int main() { a[t[1]]; return 0; }"
        )
        refs = [r for r in cfg.all_memory_refs() if r.symbol == "a"]
        assert refs[0].index_const == 64


class TestWholeProgramLowering:
    def test_all_functions_lowered(self):
        cfgs = lower("int f() { return 1; } int g() { return 2; } int main() { return 0; }")
        assert set(cfgs) == {"f", "g", "main"}

    def test_every_cfg_validates(self):
        from repro.bench.programs import quantl_client_source

        for cfg in lower(quantl_client_source()).values():
            cfg.validate()
