"""Tests for the unified analysis engine: the worklist kernel, the
request/cache layers, batch execution, and the apps' engine routing."""

import pytest

from repro import compile_source
from repro.ai.interval import Interval
from repro.analysis import analyze_baseline, analyze_speculative
from repro.apps.sidechannel import compare_leaks
from repro.apps.wcet import compare_wcet
from repro.cache.config import CacheConfig
from repro.engine import (
    AnalysisEngine,
    AnalysisKind,
    AnalysisRequest,
    LRUCache,
    PriorityWorklist,
    WideningPolicy,
    execute_request,
    run_fixpoint,
)
from repro.errors import AnalysisError
from repro.speculation.config import SpeculationConfig

CACHE = CacheConfig(num_lines=8, line_size=64)

LOOP_SOURCE = (
    "char a[256]; int n; int main() { reg int i; i = 0;"
    "  while (i < n) { a[0]; i = i + 1; } a[0]; return 0; }"
)
BRANCH_SOURCE = (
    "char a[64]; char b[64]; int p;"
    "int main() { if (p > 0) { a[0]; } else { b[0]; } a[0]; b[0]; return 0; }"
)
STRAIGHT_SOURCE = "char a[64]; char b[64]; int main() { a[0]; b[0]; a[0]; return 0; }"


# ----------------------------------------------------------------------
# Worklist kernel
# ----------------------------------------------------------------------
class TestPriorityWorklist:
    ORDER = {"entry": 0, "loop": 1, "body": 2, "exit": 3}

    def test_pops_in_priority_order(self):
        worklist = PriorityWorklist(self.ORDER, initial=["exit", "body", "entry"])
        assert [worklist.pop() for _ in range(3)] == ["entry", "body", "exit"]

    def test_duplicates_are_not_enqueued(self):
        worklist = PriorityWorklist(self.ORDER)
        assert worklist.push("loop")
        assert not worklist.push("loop")
        assert len(worklist) == 1
        assert worklist.pop() == "loop"
        # After popping, the block may be enqueued again.
        assert worklist.push("loop")

    def test_unknown_blocks_sort_last_by_name(self):
        worklist = PriorityWorklist(self.ORDER, initial=["zz", "aa", "exit"])
        assert [worklist.pop() for _ in range(3)] == ["exit", "aa", "zz"]

    def test_pop_empty_raises(self):
        worklist = PriorityWorklist(self.ORDER)
        assert not worklist
        with pytest.raises(IndexError):
            worklist.pop()

    def test_contains(self):
        worklist = PriorityWorklist(self.ORDER, initial=["body"])
        assert "body" in worklist
        assert "exit" not in worklist


class _EqualButDistinctDomain:
    """A lattice element whose ``widen`` returns an equal-but-distinct
    object — the case an identity-based widening counter miscounts."""

    def __init__(self, value):
        self.value = value

    def join(self, other):
        return _EqualButDistinctDomain(max(self.value, other.value))

    def leq(self, other):
        return self.value <= other.value

    def widen(self, previous):
        return _EqualButDistinctDomain(self.value)  # a fresh, equal element


class TestWideningPolicy:
    def test_no_widening_outside_points(self):
        policy = WideningPolicy(points={"header"}, delay=0)
        joined = Interval(0, 5)
        assert policy.apply("other", 10, Interval(0, 3), joined) is joined
        assert policy.widenings == 0

    def test_no_widening_before_delay(self):
        policy = WideningPolicy(points={"header"}, delay=3)
        joined = Interval(0, 5)
        assert policy.apply("header", 2, Interval(0, 3), joined) is joined
        assert policy.widenings == 0

    def test_widening_applied_and_counted(self):
        policy = WideningPolicy(points={"header"}, delay=3)
        widened = policy.apply("header", 3, Interval(0, 3), Interval(0, 5))
        assert widened.hi == float("inf")
        assert policy.widenings == 1

    def test_equal_but_distinct_widen_result_is_not_counted(self):
        policy = WideningPolicy(points={"header"}, delay=0)
        previous = _EqualButDistinctDomain(3)
        joined = _EqualButDistinctDomain(5)
        result = policy.apply("header", 5, previous, joined)
        assert result is not joined and result.leq(joined) and joined.leq(result)
        assert policy.widenings == 0


class TestRunFixpoint:
    def test_visits_each_block_once_on_a_chain(self):
        order = {"a": 0, "b": 1, "c": 2}
        successors = {"a": ["b"], "b": ["c"], "c": []}
        seen = []

        def step(name):
            seen.append(name)
            return successors[name]

        worklist = PriorityWorklist(order, initial=["a"])
        visits = run_fixpoint(worklist, step, max_visits=100)
        assert seen == ["a", "b", "c"]
        assert visits == 3

    def test_max_visits_guard(self):
        worklist = PriorityWorklist({"a": 0}, initial=["a"])
        with pytest.raises(AnalysisError, match="did not converge"):
            run_fixpoint(worklist, lambda name: ["a"], max_visits=10)


# ----------------------------------------------------------------------
# Requests and the LRU cache
# ----------------------------------------------------------------------
class TestAnalysisRequest:
    def test_compile_key_ignores_analysis_kind(self):
        base = AnalysisRequest.baseline(STRAIGHT_SOURCE, cache_config=CACHE)
        spec = AnalysisRequest.speculative(STRAIGHT_SOURCE, cache_config=CACHE)
        assert base.compile_key() == spec.compile_key()
        assert base.result_key() != spec.result_key()

    def test_result_key_normalises_default_configs(self):
        explicit = AnalysisRequest.speculative(
            STRAIGHT_SOURCE,
            cache_config=CacheConfig.paper_default(),
            speculation=SpeculationConfig.paper_default(),
        )
        implicit = AnalysisRequest.speculative(STRAIGHT_SOURCE)
        assert explicit.result_key() == implicit.result_key()

    def test_label_does_not_affect_identity(self):
        one = AnalysisRequest.baseline(STRAIGHT_SOURCE, label="one")
        two = AnalysisRequest.baseline(STRAIGHT_SOURCE, label="two")
        assert one == two
        assert one.result_key() == two.result_key()

    def test_distinct_sources_have_distinct_keys(self):
        one = AnalysisRequest.baseline(STRAIGHT_SOURCE)
        two = AnalysisRequest.baseline(BRANCH_SOURCE)
        assert one.compile_key() != two.compile_key()
        assert one.result_key() != two.result_key()

    def test_keys_are_memoised_on_the_instance(self):
        request = AnalysisRequest.baseline(STRAIGHT_SOURCE)
        assert request.result_key() is request.result_key()
        assert request.compile_key() is request.compile_key()

    def test_for_program_round_trips_the_compile(self):
        program = compile_source(STRAIGHT_SOURCE)
        request = AnalysisRequest.for_program(program, kind=AnalysisKind.BASELINE)
        assert request.source == STRAIGHT_SOURCE
        assert request.entry == program.entry_function
        assert request.line_size == program.layout.line_size

    def test_for_program_records_front_end_options(self):
        """Non-default compiles must not be cached under default keys."""
        default = compile_source(LOOP_SOURCE)
        no_unroll = compile_source(LOOP_SOURCE, unroll=False)
        default_request = AnalysisRequest.for_program(default, kind=AnalysisKind.BASELINE)
        no_unroll_request = AnalysisRequest.for_program(no_unroll, kind=AnalysisKind.BASELINE)
        assert not no_unroll_request.unroll
        assert default_request.compile_key() != no_unroll_request.compile_key()
        assert default_request.result_key() != no_unroll_request.result_key()


class TestLRUCache:
    def test_hit_and_miss_accounting(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_least_recently_used_is_evicted(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


# ----------------------------------------------------------------------
# The engine: compile/result caching
# ----------------------------------------------------------------------
class TestEngineCaching:
    def test_compile_cache_is_shared_across_kinds(self):
        engine = AnalysisEngine()
        engine.run(AnalysisRequest.baseline(BRANCH_SOURCE, cache_config=CACHE))
        engine.run(AnalysisRequest.speculative(BRANCH_SOURCE, cache_config=CACHE))
        stats = engine.stats
        assert stats.compile.misses == 1
        assert stats.compile.hits == 1
        assert stats.results.misses == 2

    def test_repeated_request_hits_result_cache(self):
        engine = AnalysisEngine()
        request = AnalysisRequest.speculative(BRANCH_SOURCE, cache_config=CACHE)
        first = engine.run(request)
        second = engine.run(request)
        assert engine.stats.results.hits == 1
        assert first is not second  # callers get independent copies
        assert first.classifications == second.classifications
        assert first.iterations == second.iterations

    def test_cache_hits_are_marked_from_cache(self):
        engine = AnalysisEngine()
        request = AnalysisRequest.baseline(STRAIGHT_SOURCE, cache_config=CACHE)
        first = engine.run(request)
        second = engine.run(request)
        assert not first.from_cache
        assert second.from_cache
        # analysis_time reports the original computation, not the lookup.
        assert second.analysis_time == first.analysis_time
        assert "(cached)" in second.summary()

    def test_mutating_a_returned_result_does_not_corrupt_the_cache(self):
        engine = AnalysisEngine()
        request = AnalysisRequest.baseline(BRANCH_SOURCE, cache_config=CACHE)
        first = engine.run(request)
        first.classifications.clear()
        second = engine.run(request)
        assert second.classifications

    def test_result_cache_eviction(self):
        engine = AnalysisEngine(result_cache_size=1)
        one = AnalysisRequest.baseline(BRANCH_SOURCE, cache_config=CACHE)
        two = AnalysisRequest.baseline(STRAIGHT_SOURCE, cache_config=CACHE)
        engine.run(one)
        engine.run(two)  # evicts one
        engine.run(one)  # recomputed
        stats = engine.stats
        assert stats.results.hits == 0
        assert stats.results.misses == 3
        assert stats.results.evictions >= 1

    def test_engine_matches_direct_analysis_calls(self):
        """Bit-identical classifications vs analyze_baseline/analyze_speculative."""
        engine = AnalysisEngine()
        program = compile_source(BRANCH_SOURCE)
        direct_base = analyze_baseline(program, cache_config=CACHE)
        direct_spec = analyze_speculative(program, cache_config=CACHE)
        via_base = engine.run(AnalysisRequest.baseline(BRANCH_SOURCE, cache_config=CACHE))
        via_spec = engine.run(AnalysisRequest.speculative(BRANCH_SOURCE, cache_config=CACHE))
        assert via_base.classifications == direct_base.classifications
        assert via_spec.classifications == direct_spec.classifications
        assert via_spec.iterations == direct_spec.iterations


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
def _batch_requests() -> list[AnalysisRequest]:
    requests = []
    for source in (STRAIGHT_SOURCE, BRANCH_SOURCE, LOOP_SOURCE):
        requests.append(AnalysisRequest.baseline(source, cache_config=CACHE))
        requests.append(AnalysisRequest.speculative(source, cache_config=CACHE))
    return requests


class TestBatchExecution:
    def test_batch_equals_sequential_direct_calls(self):
        requests = _batch_requests()
        direct = [execute_request(request) for request in requests]
        batch = AnalysisEngine().run_batch(requests)
        assert len(batch) == len(direct)
        for mine, theirs in zip(batch, direct):
            assert mine.classifications == theirs.classifications
            assert mine.program_name == theirs.program_name
            assert mine.iterations == theirs.iterations

    def test_parallel_batch_equals_sequential(self):
        requests = _batch_requests()
        sequential = AnalysisEngine().run_batch(requests)
        parallel = AnalysisEngine().run_batch(requests, max_workers=2)
        for mine, theirs in zip(parallel, sequential):
            assert mine.classifications == theirs.classifications
            assert mine.iterations == theirs.iterations

    def test_parallel_batch_preserves_request_order(self):
        requests = _batch_requests()
        # Interleave duplicates to stress the ordering/dedup path.
        shuffled = requests + list(reversed(requests))
        results = AnalysisEngine().run_batch(shuffled, max_workers=3)
        for request, result in zip(shuffled, results):
            assert result.is_speculative == (request.kind is AnalysisKind.SPECULATIVE)
            assert result.program_name == "main"
        # Forward and reversed halves are the same requests, so the
        # classifications must mirror each other exactly.
        forward = [r.classifications for r in results[: len(requests)]]
        backward = [r.classifications for r in results[len(requests):]]
        assert forward == list(reversed(backward))

    def test_duplicate_requests_are_executed_once(self):
        engine = AnalysisEngine()
        request = AnalysisRequest.baseline(STRAIGHT_SOURCE, cache_config=CACHE)
        results = engine.run_batch([request] * 4)
        stats = engine.stats
        assert stats.results.misses == 1
        assert stats.results.hits == 3
        assert all(r.classifications == results[0].classifications for r in results)

    def test_batch_counters(self):
        engine = AnalysisEngine()
        engine.run_batch(_batch_requests())
        assert engine.stats.batches == 1

    def test_parallel_duplicates_survive_a_disabled_result_cache(self):
        """Duplicates are served from the fresh results, never from a
        second cache lookup that may miss."""
        engine = AnalysisEngine(result_cache_size=0)
        one = AnalysisRequest.baseline(STRAIGHT_SOURCE, cache_config=CACHE)
        two = AnalysisRequest.speculative(BRANCH_SOURCE, cache_config=CACHE)
        results = engine.run_batch([one, one, two, one], max_workers=2)
        assert all(result is not None for result in results)
        assert results[0].classifications == results[1].classifications
        assert results[3].classifications == results[0].classifications

    def test_parallel_results_are_copies_not_cache_instances(self):
        engine = AnalysisEngine()
        requests = _batch_requests()
        results = engine.run_batch(requests, max_workers=2)
        results[0].classifications.clear()
        again = engine.run_batch(requests, max_workers=2)
        assert again[0].classifications  # cache was not corrupted

    def test_analysis_errors_propagate_from_parallel_batches(self):
        from repro.errors import ReproError

        good = AnalysisRequest.baseline(STRAIGHT_SOURCE, cache_config=CACHE)
        bad = AnalysisRequest.baseline("int main() { this is not minic }")
        with pytest.raises(ReproError):
            AnalysisEngine().run_batch([good, bad], max_workers=2)

    def test_worker_failure_classification_excludes_analysis_errors(self):
        """RuntimeError subclasses an analysis may raise in a worker (e.g.
        RecursionError) must not be treated as pool failures at result
        collection — they propagate instead of triggering a re-run."""
        from repro.engine.batch import _POOL_COLLECT_FAILURES

        assert not issubclass(RecursionError, _POOL_COLLECT_FAILURES)
        assert not issubclass(RuntimeError, _POOL_COLLECT_FAILURES)

    def test_single_source_batch_parallelises_and_counts_one_compile(self):
        """Many configurations of one source still spread across workers,
        and the stats mirror the sequential accounting: one logical
        compile miss per distinct source."""
        engine = AnalysisEngine()
        results = engine.run_batch(
            [
                AnalysisRequest.baseline(STRAIGHT_SOURCE, cache_config=CACHE),
                AnalysisRequest.speculative(STRAIGHT_SOURCE, cache_config=CACHE),
            ],
            max_workers=4,
        )
        assert all(result is not None for result in results)
        stats = engine.stats
        assert stats.compile.misses == 1
        assert stats.compile.hits == 1

    def test_parallel_stats_match_sequential_stats(self):
        """The same batch reports identical cache accounting whether it
        runs sequentially or over the pool."""
        requests = _batch_requests()
        batch = requests + requests[:2]  # two in-batch duplicates
        sequential = AnalysisEngine()
        sequential.run_batch(batch, max_workers=1)
        parallel = AnalysisEngine()
        parallel.run_batch(batch, max_workers=3)
        for mine, theirs in (
            (parallel.stats.results, sequential.stats.results),
            (parallel.stats.compile, sequential.stats.compile),
        ):
            assert (mine.hits, mine.misses) == (theirs.hits, theirs.misses)


# ----------------------------------------------------------------------
# Applications route through the engine
# ----------------------------------------------------------------------
class TestAppsThroughEngine:
    def test_compare_wcet_uses_engine_caches(self):
        engine = AnalysisEngine()
        program = compile_source(BRANCH_SOURCE)
        first = compare_wcet(program, CACHE, engine=engine)
        second = compare_wcet(program, CACHE, engine=engine)
        assert engine.stats.results.hits >= 2  # second comparison fully cached
        assert first.non_speculative.misses == second.non_speculative.misses
        assert first.speculative.misses == second.speculative.misses
        # The seeded program means the engine never ran the front end —
        # unless REPRO_MAX_WORKERS routed the batch to worker processes,
        # which cannot share the seeded program object and report their
        # own compiles back into the parent's stats.
        if engine.stats.parallel_batches == 0:
            assert engine.stats.compile.misses == 0

    def test_compare_wcet_matches_direct_analyses(self):
        program = compile_source(BRANCH_SOURCE)
        comparison = compare_wcet(program, CACHE, engine=AnalysisEngine())
        direct_base = analyze_baseline(program, cache_config=CACHE)
        direct_spec = analyze_speculative(program, cache_config=CACHE)
        assert comparison.non_speculative.misses == direct_base.miss_count
        assert comparison.speculative.misses == direct_spec.miss_count

    def test_compare_leaks_through_engine(self):
        engine = AnalysisEngine()
        source = (
            "char sbox[512]; secret int k; int p;"
            "int main() { if (p > 0) { sbox[0]; } sbox[k]; return 0; }"
        )
        program = compile_source(source)
        comparison = compare_leaks(program, CACHE, engine=engine)
        assert engine.stats.results.misses == 2
        assert comparison.non_speculative.secret_sites == 1
