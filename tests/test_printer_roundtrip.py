"""Round-trips through the MiniC source emitter.

``program_to_source`` must emit text that the normal front end re-parses
into an equivalent program — including programs containing the ``fence``
statement, and including the full pipeline (unroll → lower → inline) on
the re-parsed text.  Equivalence is checked structurally (same CFG
blocks, same instruction mix) and semantically (identical analysis
verdicts), not textually.
"""

from __future__ import annotations

import pytest

from repro.analysis.baseline import analyze_baseline
from repro.analysis.speculative import analyze_speculative
from repro.bench.client import build_client_source
from repro.bench.crypto import crypto_kernel
from repro.bench.programs import motivating_example_source
from repro.cache.config import CacheConfig
from repro.frontend import compile_source
from repro.ir.instructions import Fence
from repro.ir.printer import program_to_source
from repro.lang import ast
from repro.lang.parser import parse_program

FENCED_SOURCE = """
char sbox[512];
char buf[256] = {1, 2, 3};
secret int key;
int mode;

int helper(int x) {
  fence;
  return x + sbox[x];
}

int main() {
  reg int i;
  int t;
  for (i = 0; i < 512; i = i + 64) { t = sbox[i]; }
  while (t > 100) { t = t - buf[t & 255]; }
  if (mode > 0) {
    fence;
    t = helper(t);
  } else {
    t = -t + my_abs(mode);
  }
  fence;
  t = sbox[key];
  return t;
}
"""

SOURCES = {
    "fenced": FENCED_SOURCE,
    "motivating": motivating_example_source(num_lines=64, line_size=64),
    "crypto-client": build_client_source(crypto_kernel("hash", 64, 64), 2752),
}


def _ir_fences(program) -> int:
    return sum(
        1
        for name in program.cfg.reachable_blocks()
        for instruction in program.cfg.block(name).instructions
        if isinstance(instruction, Fence)
    )


@pytest.mark.parametrize("name", sorted(SOURCES))
class TestRoundTrip:
    def test_emitter_is_idempotent(self, name):
        source = SOURCES[name]
        once = program_to_source(parse_program(source))
        twice = program_to_source(parse_program(once))
        assert once == twice

    def test_reparse_preserves_cfg_structure(self, name):
        source = SOURCES[name]
        original = compile_source(source)
        reparsed = compile_source(program_to_source(parse_program(source)))
        assert set(original.cfg.blocks) == set(reparsed.cfg.blocks)
        for block_name in original.cfg.blocks:
            first = original.cfg.block(block_name)
            second = reparsed.cfg.block(block_name)
            assert [type(i) for i in first.instructions] == [
                type(i) for i in second.instructions
            ]
            assert type(first.terminator) is type(second.terminator)
        assert _ir_fences(original) == _ir_fences(reparsed)

    def test_reparse_preserves_analysis_verdicts(self, name):
        source = SOURCES[name]
        cache = CacheConfig(num_lines=64, line_size=64)
        original = compile_source(source)
        reparsed = compile_source(program_to_source(parse_program(source)))
        for analyze in (analyze_baseline, analyze_speculative):
            first = analyze(original, cache_config=cache)
            second = analyze(reparsed, cache_config=cache)
            assert first.miss_count == second.miss_count
            assert first.hit_count == second.hit_count
            assert first.leak_detected == second.leak_detected
        spec_first = analyze_speculative(original, cache_config=cache)
        spec_second = analyze_speculative(reparsed, cache_config=cache)
        assert spec_first.num_speculative_branches == spec_second.num_speculative_branches
        assert spec_first.speculative_miss_count == spec_second.speculative_miss_count


class TestFencePreservation:
    def test_fence_statements_round_trip_through_reparse(self):
        program = parse_program(FENCED_SOURCE)
        emitted = program_to_source(program)
        assert emitted.count("fence;") == 3
        reparsed = parse_program(emitted)
        original_fences = sum(
            1
            for fn in program.functions
            for stmt in ast.walk_statements(fn.body)
            if isinstance(stmt, ast.Fence)
        )
        reparsed_fences = sum(
            1
            for fn in reparsed.functions
            for stmt in ast.walk_statements(fn.body)
            if isinstance(stmt, ast.Fence)
        )
        assert original_fences == reparsed_fences == 3

    def test_fences_preserved_through_unroll_and_inline(self):
        # The helper's fence is inlined into main; the loop fence is
        # replicated per unrolled iteration — on both sides of the
        # round trip.
        source = (
            "char a[512];\n"
            "int helper(int x) { fence; return a[x]; }\n"
            "int main() { reg int i; int t; t = 0;\n"
            "  for (i = 0; i < 3; i = i + 1) { fence; t = t + helper(i); }\n"
            "  return t; }\n"
        )
        original = compile_source(source)
        reparsed = compile_source(program_to_source(parse_program(source)))
        assert _ir_fences(original) == _ir_fences(reparsed) == 6

    def test_unroll_and_inline_disabled_round_trip(self):
        source = FENCED_SOURCE
        original = compile_source(source, unroll=False, inline=False)
        reparsed = compile_source(
            program_to_source(parse_program(source)), unroll=False, inline=False
        )
        assert set(original.cfg.blocks) == set(reparsed.cfg.blocks)
        assert _ir_fences(original) == _ir_fences(reparsed)


class TestEmitterDetails:
    def test_negative_literals_and_unary_chains(self):
        source = "int main() { reg int x; x = - -3; x = ~(-x); x = !x; return x; }"
        once = program_to_source(parse_program(source))
        assert program_to_source(parse_program(once)) == once

    def test_qualifiers_and_initializers_survive(self):
        source = (
            "const char tab[128] = {7, 8, 9};\n"
            "secret long k = 42;\n"
            "reg int counter;\n"
            "int main() { return tab[0] + k; }\n"
        )
        emitted = program_to_source(parse_program(source))
        assert "const char tab[128] = {7, 8, 9};" in emitted
        assert "secret long k = 42;" in emitted
        assert "reg int counter;" in emitted
        reparsed = parse_program(emitted)
        decl = next(d for d in reparsed.globals if d.name == "k")
        assert decl.qualifiers.is_secret
        tab = next(d for d in reparsed.globals if d.name == "tab")
        assert tab.init == [7, 8, 9]

    def test_simulation_agrees_across_round_trip(self):
        from repro.speculation.simulator import SpeculativeSimulator

        source = SOURCES["fenced"]
        cache = CacheConfig(num_lines=16, line_size=64)
        first = SpeculativeSimulator(
            compile_source(source), cache_config=cache
        ).run({"mode": 1})
        second = SpeculativeSimulator(
            compile_source(program_to_source(parse_program(source))),
            cache_config=cache,
        ).run({"mode": 1})
        assert first.return_value == second.return_value
        assert first.misses == second.misses
        assert first.mispredictions == second.mispredictions
