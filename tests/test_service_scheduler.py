"""The async job scheduler: priorities, coalescing, status, failure
isolation."""

from __future__ import annotations

import threading

import pytest

from repro.engine.engine import AnalysisEngine
from repro.engine.request import AnalysisRequest
from repro.service.scheduler import (
    JobPriority,
    JobScheduler,
    JobState,
    SchedulerShutdown,
)
from repro.service.wire import result_fingerprint

SOURCE = "char a[64]; int p; int main() { if (p > 0) { a[0]; } a[0]; return 0; }"
OTHER_SOURCE = "char b[128]; int main() { b[0]; b[64]; return 0; }"
BROKEN_SOURCE = "int main( { this does not parse"


def distinct_request(i: int) -> AnalysisRequest:
    return AnalysisRequest.speculative(
        f"char a{i}[{64 * (i + 1)}]; int main() {{ a{i}[0]; return 0; }}"
    )


@pytest.fixture
def scheduler():
    with JobScheduler(AnalysisEngine(), max_workers=2, batch_size=4) as sched:
        yield sched


class TestBasicExecution:
    def test_submit_and_result(self, scheduler):
        job = scheduler.submit(AnalysisRequest.speculative(SOURCE))
        result = job.result(timeout=60)
        assert job.state is JobState.DONE
        assert result.miss_count == 3

    def test_many_jobs_complete(self, scheduler):
        jobs = [scheduler.submit(distinct_request(i)) for i in range(10)]
        for job in jobs:
            job.result(timeout=60)
        stats = scheduler.stats
        assert stats.completed == 10 and stats.failed == 0
        assert stats.queued == 0 and stats.running == 0

    def test_job_lookup_and_status(self, scheduler):
        job = scheduler.submit(AnalysisRequest.baseline(SOURCE))
        assert scheduler.job(job.id) is job
        assert scheduler.job("job-999999") is None
        job.result(timeout=60)
        status = job.status()
        assert status["state"] == "done"
        assert status["error"] is None
        assert status["queued_seconds"] >= 0

    def test_drain_waits_for_everything(self, scheduler):
        jobs = [scheduler.submit(distinct_request(i)) for i in range(6)]
        assert scheduler.drain(timeout=60)
        assert all(job.state is JobState.DONE for job in jobs)

    def test_results_match_direct_engine_execution(self, scheduler):
        request = AnalysisRequest.speculative(OTHER_SOURCE)
        scheduled = scheduler.submit(request).result(timeout=60)
        direct = AnalysisEngine().run(request)
        assert result_fingerprint(scheduled) == result_fingerprint(direct)


class TestCoalescing:
    def test_identical_requests_share_one_future(self, scheduler):
        request = AnalysisRequest.speculative(SOURCE)
        first = scheduler.submit(request)
        second = scheduler.submit(request)
        if second.coalesced:  # first still in flight when second arrived
            assert second.future is first.future
            assert second.status()["coalesced_into"] == first.id
        assert result_fingerprint(first.result(60)) == result_fingerprint(
            second.result(60)
        )

    def test_coalescing_under_load(self):
        # Workers held back, so every duplicate reliably finds the
        # primary still queued.
        sched = JobScheduler(
            AnalysisEngine(), max_workers=1, batch_size=1, autostart=False
        )
        request = AnalysisRequest.speculative(SOURCE)
        jobs = [sched.submit(request) for _ in range(5)]
        coalesced = [job for job in jobs if job.coalesced]
        assert len(coalesced) == 4, "duplicates of a queued job must coalesce"
        sched.start_workers()
        with sched:
            fingerprints = {result_fingerprint(job.result(60)) for job in jobs}
        assert len(fingerprints) == 1
        assert sched.stats.coalesced == 4
        assert sched.stats.completed == 1, "one execution serves all five"

    def test_completed_request_is_not_coalesced(self, scheduler):
        request = AnalysisRequest.baseline(SOURCE)
        first = scheduler.submit(request)
        first.result(timeout=60)
        second = scheduler.submit(request)
        assert not second.coalesced, "finished jobs must not absorb new submissions"
        # ... but the engine's result cache answers it instantly.
        assert second.result(timeout=60).from_cache


class TestPriorities:
    def test_dispatch_order_follows_priority(self):
        sched = JobScheduler(
            AnalysisEngine(), max_workers=1, batch_size=10, autostart=False
        )
        low = sched.submit(distinct_request(1), priority="low")
        normal = sched.submit(distinct_request(2), priority=JobPriority.NORMAL)
        high = sched.submit(distinct_request(3), priority="high")
        batch = sched._claim_batch()
        assert [job.id for job in batch] == [high.id, normal.id, low.id]

    def test_fifo_within_priority(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        jobs = [sched.submit(distinct_request(i)) for i in range(4)]
        batch = sched._claim_batch()
        assert [job.id for job in batch] == [job.id for job in jobs]

    def test_coalesced_high_priority_bumps_queued_primary(self):
        sched = JobScheduler(
            AnalysisEngine(), max_workers=1, batch_size=1, autostart=False
        )
        primary = sched.submit(AnalysisRequest.baseline(SOURCE), priority="low")
        fillers = [
            sched.submit(distinct_request(i), priority="normal") for i in range(3)
        ]
        urgent = sched.submit(AnalysisRequest.baseline(SOURCE), priority="high")
        assert urgent.coalesced
        batch = sched._claim_batch()
        assert batch[0].id == primary.id, (
            "a HIGH coalesced submission must pull its queued primary ahead "
            "of the NORMAL backlog"
        )
        # The primary's stale LOW heap entry is skipped, not re-dispatched.
        seen = [job.id for job in batch]
        while sched._heap:
            seen.extend(job.id for job in sched._claim_batch())
        assert seen == [primary.id] + [job.id for job in fillers]

    def test_priority_parsing(self):
        assert JobPriority.parse(None) is JobPriority.NORMAL
        assert JobPriority.parse("HIGH") is JobPriority.HIGH
        assert JobPriority.parse("low") is JobPriority.LOW
        assert JobPriority.parse(1) is JobPriority.NORMAL
        assert JobPriority.parse(JobPriority.LOW) is JobPriority.LOW
        with pytest.raises(KeyError):
            JobPriority.parse("urgent")


class TestFailuresAndCancellation:
    def test_broken_request_fails_job_not_scheduler(self, scheduler):
        bad = scheduler.submit(AnalysisRequest.speculative(BROKEN_SOURCE))
        good = scheduler.submit(AnalysisRequest.speculative(SOURCE))
        with pytest.raises(Exception):
            bad.result(timeout=60)
        assert bad.state is JobState.FAILED
        assert bad.status()["error"]
        assert good.result(timeout=60) is not None, "healthy jobs must survive"
        stats = scheduler.stats
        assert stats.failed == 1 and stats.completed >= 1

    def test_cancel_queued_job(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        job = sched.submit(distinct_request(0))
        assert sched.cancel(job.id)
        assert job.state is JobState.CANCELLED
        assert sched.stats.cancelled == 1
        # A cancelled entry is skipped by the dispatcher.
        follow_up = sched.submit(distinct_request(1))
        batch = sched._claim_batch()
        assert [j.id for j in batch] == [follow_up.id]

    def test_cancel_refused_for_primary_with_followers(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        request = AnalysisRequest.baseline(SOURCE)
        primary = sched.submit(request)
        follower = sched.submit(request)
        assert follower.coalesced
        assert not sched.cancel(primary.id), (
            "cancelling a shared future would destroy another client's job"
        )
        sched.start_workers()
        with sched:
            assert follower.result(timeout=60) is not None

    def test_cancel_finished_job_is_refused(self, scheduler):
        job = scheduler.submit(AnalysisRequest.baseline(SOURCE))
        job.result(timeout=60)
        assert not scheduler.cancel(job.id)

    def test_cancelled_request_can_be_resubmitted(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        request = AnalysisRequest.baseline(SOURCE)
        first = sched.submit(request)
        sched.cancel(first.id)
        second = sched.submit(request)
        assert not second.coalesced, "cancelled jobs must not absorb submissions"

    def test_submit_after_shutdown_raises(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1)
        sched.shutdown(wait=True, timeout=10)
        with pytest.raises(SchedulerShutdown):
            sched.submit(AnalysisRequest.baseline(SOURCE))


class TestConcurrentClients:
    def test_parallel_submitters(self, scheduler):
        results: dict[int, object] = {}
        errors: list[Exception] = []

        def client(i: int) -> None:
            try:
                job = scheduler.submit(distinct_request(i % 4))
                results[i] = job.result(timeout=60)
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == 16
        by_request = {}
        for i, result in results.items():
            by_request.setdefault(i % 4, set()).add(result_fingerprint(result))
        assert all(len(prints) == 1 for prints in by_request.values())
