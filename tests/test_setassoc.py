"""Set-associative and policy-parametric cache modelling.

Covers the soundness gap this PR closes: the abstract analysis used to
model *every* cache as fully associative, which lets it promise must-hits
that a direct-mapped or set-associative concrete cache conflict-misses.
The tests here pin

* the deterministic set-placement function shared by the concrete
  simulator and the per-set abstract domain (stable across processes and
  PYTHONHASHSEED values),
* the direct-mapped counterexample that the fully-associative
  abstraction gets wrong and the per-set domain gets right,
* FIFO replacement semantics, concrete and abstract,
* the headline property, geometry- and policy-swept: every abstract
  must-hit is a concrete hit on randomly simulated paths (fixed seed).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import zlib

import pytest

from repro import compile_source
from repro.analysis import analyze_baseline, analyze_speculative
from repro.cache.abstract import AGE_INFINITY, CacheState
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.cache.placement import partition_by_set, set_index
from repro.cache.setassoc import SetAssocCacheState
from repro.cache.shadow import ShadowCacheState
from repro.errors import ConfigError
from repro.ir.memory import MemoryBlock
from repro.speculation.merge import MergeStrategy
from repro.speculation.predictor import OpposingPredictor
from repro.speculation.simulator import SpeculativeSimulator


def block(name: str, index: int = 0) -> MemoryBlock:
    return MemoryBlock(name, index)


# Two single-block arrays that collide in a 2-set cache (crc32("t0:0") and
# crc32("t2:0") are both even); pinned by TestStablePlacement below.
CONFLICTING = ("t0", "t2")


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
class TestStablePlacement:
    def test_matches_crc32_spec(self):
        """The placement is crc32 of 'symbol:index' — not builtin hash(),
        which PYTHONHASHSEED randomises per process."""
        for name, index, num_sets in [("x", 0, 4), ("buf", 3, 8), ("t0", -1, 2)]:
            expected = zlib.crc32(f"{name}:{index}".encode()) % num_sets
            assert set_index(MemoryBlock(name, index), num_sets) == expected

    def test_single_set_never_hashes(self):
        assert set_index(block("anything"), 1) == 0

    def test_conflicting_pair_shares_a_set(self):
        a, b = (block(name) for name in CONFLICTING)
        assert set_index(a, 2) == set_index(b, 2)

    def test_partition_covers_all_blocks(self):
        blocks = [MemoryBlock("s", i) for i in range(8)]
        partition = partition_by_set(blocks, 4)
        assert sorted(b for group in partition.values() for b in group) == blocks
        assert set(partition) <= set(range(4))

    def test_concrete_and_abstract_agree_on_placement(self):
        config = CacheConfig(num_lines=8, associativity=2)
        cache = ConcreteCache(config)
        state = SetAssocCacheState.empty(config)
        for i in range(16):
            b = MemoryBlock("arr", i)
            assert cache._set_index(b) == state.set_of(b)

    def test_placement_stable_across_hash_seeds(self):
        """Two fresh interpreters with different PYTHONHASHSEED values must
        produce bit-identical set-associative analysis + simulation
        results (the acceptance criterion for the determinism fix)."""
        script = (
            "import json\n"
            "from repro import compile_source\n"
            "from repro.analysis import analyze_speculative\n"
            "from repro.cache.config import CacheConfig\n"
            "from repro.service.wire import result_fingerprint\n"
            "from repro.speculation.predictor import OpposingPredictor\n"
            "from repro.speculation.simulator import SpeculativeSimulator\n"
            "src = '''\n"
            "char t0[64]; char t1[64]; char t2[64]; char t3[64];\n"
            "int p;\n"
            "int main() {\n"
            "  reg int i;\n"
            "  for (i = 0; i < 3; i++) { t0[0]; t2[0]; }\n"
            "  if (p > 1) { t1[0]; } else { t3[0]; }\n"
            "  t0[0];\n"
            "  return 0;\n"
            "}\n"
            "'''\n"
            "config = CacheConfig(num_lines=4, associativity=2)\n"
            "program = compile_source(src)\n"
            "result = analyze_speculative(program, config)\n"
            "sim = SpeculativeSimulator(program, cache_config=config,\n"
            "                           predictor=OpposingPredictor()).run({'p': 2})\n"
            "print(json.dumps({\n"
            "    'fingerprint': result_fingerprint(result),\n"
            "    'misses': sim.stats.misses,\n"
            "    'trace': [(r.memory_block.symbol, r.hit) for r in sim.accesses],\n"
            "}))\n"
        )
        outputs = []
        for seed in ("0", "271828"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src" + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1], (
            "set-associative results differ across PYTHONHASHSEED values"
        )


# ----------------------------------------------------------------------
# The direct-mapped counterexample (the soundness gap this PR closes)
# ----------------------------------------------------------------------
COUNTEREXAMPLE_SOURCE = f"""
char {CONFLICTING[0]}[64];
char {CONFLICTING[1]}[64];
int main() {{
  {CONFLICTING[0]}[0];
  {CONFLICTING[1]}[0];
  {CONFLICTING[0]}[0];
  return 0;
}}
"""

#: Two lines, direct-mapped: the two arrays above conflict in one set.
DIRECT_MAPPED = CacheConfig(num_lines=2, associativity=1)


class TestDirectMappedCounterexample:
    def test_fully_associative_model_claims_the_unsound_hit(self):
        """The *old* abstraction (a 2-line fully-associative state) proves
        both blocks cached after t0; t2; — so it promises the re-access of
        t0 hits.  This is the claim the concrete cache refutes below."""
        state = CacheState.empty(DIRECT_MAPPED.num_lines)
        state = state.access_block(block(CONFLICTING[0]))
        state = state.access_block(block(CONFLICTING[1]))
        assert state.must_hit(block(CONFLICTING[0]))  # the unsound promise

    def test_concrete_direct_mapped_cache_misses(self):
        cache = ConcreteCache(DIRECT_MAPPED)
        assert not cache.access(block(CONFLICTING[0]))
        assert not cache.access(block(CONFLICTING[1]))  # evicts t0
        assert not cache.access(block(CONFLICTING[0]))  # conflict miss
        assert cache.stats.misses == 3

    @pytest.mark.parametrize("use_shadow", [False, True])
    def test_per_set_domain_refuses_the_claim(self, use_shadow):
        state = SetAssocCacheState.empty(DIRECT_MAPPED, use_shadow=use_shadow)
        state = state.access_block(block(CONFLICTING[0]))
        state = state.access_block(block(CONFLICTING[1]))
        assert not state.must_hit(block(CONFLICTING[0]))
        assert state.must_hit(block(CONFLICTING[1]))

    @pytest.mark.parametrize("use_shadow", [False, True])
    def test_end_to_end_regression(self, use_shadow):
        """The compiled counterexample program: the analysis at the
        direct-mapped config must not claim the third access hits, and the
        concrete simulation indeed misses there.  (Before the per-set
        domain, analyze_baseline claimed a must-hit at this site.)"""
        program = compile_source(COUNTEREXAMPLE_SOURCE)
        result = analyze_baseline(
            program, DIRECT_MAPPED, use_shadow_state=use_shadow
        )
        records = SpeculativeSimulator(
            program, cache_config=DIRECT_MAPPED
        ).run().non_speculative_accesses()
        assert len(records) == 3
        third = records[2]
        assert third.memory_block == block(CONFLICTING[0])
        assert not third.hit
        assert (third.block_name, third.instruction_index) not in result.must_hit_sites()

    def test_fully_associative_config_still_claims_it(self):
        """Same program, fully-associative 2-line cache: the hit promise is
        *correct* there — the geometry axis, not the analysis, was the bug."""
        config = CacheConfig(num_lines=2)
        program = compile_source(COUNTEREXAMPLE_SOURCE)
        result = analyze_baseline(program, config)
        records = SpeculativeSimulator(program, cache_config=config).run()
        third = records.non_speculative_accesses()[2]
        assert third.hit
        assert (third.block_name, third.instruction_index) in result.must_hit_sites()


# ----------------------------------------------------------------------
# FIFO replacement
# ----------------------------------------------------------------------
class TestFifoConcrete:
    def test_hit_does_not_refresh(self):
        """a b a c on two lines: LRU keeps a (refreshed), FIFO evicts a
        (oldest insertion) — the defining difference of the policies."""
        lru = ConcreteCache(CacheConfig(num_lines=2, policy="lru"))
        fifo = ConcreteCache(CacheConfig(num_lines=2, policy="fifo"))
        for cache in (lru, fifo):
            cache.access(block("a"))
            cache.access(block("b"))
            assert cache.access(block("a"))
            cache.access(block("c"))
        assert lru.probe(block("a")) and not lru.probe(block("b"))
        assert fifo.probe(block("b")) and not fifo.probe(block("a"))

    def test_direct_mapped_policies_coincide(self):
        """With one way per set there is nothing to reorder: LRU and FIFO
        must behave identically."""
        seq = [block(name) for name in "abcabacbb"]
        results = []
        for policy in ("lru", "fifo"):
            cache = ConcreteCache(CacheConfig(num_lines=4, associativity=1, policy=policy))
            results.append([cache.access(b) for b in seq])
        assert results[0] == results[1]


class TestFifoAbstract:
    def test_guaranteed_hit_leaves_state_unchanged(self):
        state = CacheState.empty(4, policy="fifo")
        state = state.access_block(block("a"))
        assert state.must_hit(block("a"))
        assert state.access_block(block("a")) == state

    def test_miss_ages_everyone_and_gives_weakest_bound(self):
        state = CacheState.empty(2, policy="fifo")
        state = state.access_block(block("a"))
        assert state.age(block("a")) == 2  # resident, position unknown
        state = state.access_block(block("b"))
        assert not state.must_hit(block("a"))  # aged to 3 > 2: evicted
        assert state.age(block("b")) == 2

    def test_shadow_fifo_mirrors_plain_must_component(self):
        plain = CacheState.empty(3, policy="fifo")
        shadow = ShadowCacheState.empty(3, policy="fifo")
        for b in [block("a"), block("b"), block("a"), block("c")]:
            plain = plain.access_block(b)
            shadow = shadow.access_block(b)
            assert plain.cached_blocks() == shadow.cached_blocks()
            for cached in plain.cached_blocks():
                assert shadow.age(cached) <= plain.age(cached)

    def test_policies_do_not_mix(self):
        with pytest.raises(ValueError):
            CacheState.empty(4, policy="lru").join(CacheState.empty(4, policy="fifo"))

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    @pytest.mark.parametrize("config_kwargs", [
        dict(num_lines=4),
        dict(num_lines=4, associativity=1),
        dict(num_lines=4, associativity=2),
    ])
    def test_abstract_age_bounds_concrete_age(self, policy, config_kwargs):
        """Random access sequences, every geometry x policy: whenever the
        abstract state promises a block cached, the concrete cache holds it
        at a within-set age no greater than the bound."""
        config = CacheConfig(policy=policy, **config_kwargs)
        rng = random.Random(20260726)
        universe = [block(name) for name in "abcdefgh"]
        for _ in range(200):
            concrete = ConcreteCache(config)
            abstract = (
                SetAssocCacheState.empty(config)
                if not config.is_fully_associative
                else CacheState.empty(config.num_lines, policy=policy)
            )
            for b in rng.choices(universe, k=rng.randint(0, 12)):
                concrete.access(b)
                abstract = abstract.access_block(b)
            for b in universe:
                if abstract.must_hit(b):
                    concrete_age = concrete.age_of(b)
                    assert concrete_age is not None, (config, b)
                    assert concrete_age <= abstract.age(b), (config, b)


# ----------------------------------------------------------------------
# Invalid configurations
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(policy="plru")

    def test_policy_survives_wire_roundtrip(self):
        from repro.service.wire import cache_config_from_wire, cache_config_to_wire

        config = CacheConfig(num_lines=8, associativity=2, policy="fifo")
        assert cache_config_from_wire(cache_config_to_wire(config)) == config

    def test_old_wire_payload_defaults_to_lru(self):
        from repro.service.wire import cache_config_from_wire

        config = cache_config_from_wire({"num_lines": 8, "line_size": 64})
        assert config.policy == "lru"

    def test_result_keys_distinguish_geometry_and_policy(self):
        from dataclasses import replace

        from repro.engine.request import AnalysisRequest

        base = AnalysisRequest.baseline(
            "int x; int main() { x; return 0; }",
            cache_config=CacheConfig(num_lines=8),
        )
        keys = {
            replace(
                base, cache_config=replace(base.cache_config, **kwargs)
            ).result_key()
            for kwargs in (
                {}, {"associativity": 1}, {"associativity": 2},
                {"policy": "fifo"}, {"associativity": 2, "policy": "fifo"},
            )
        }
        assert len(keys) == 5


# ----------------------------------------------------------------------
# Geometry x policy x merge-strategy soundness sweep (the headline claim)
# ----------------------------------------------------------------------
SWEEP_KERNELS = [
    # Loops over conflicting arrays plus a mispredicted branch.
    f"""
char t0[64]; char t2[64]; char t1[64];
int p;
int main() {{
  reg int i;
  for (i = 0; i < 3; i++) {{ t0[0]; t2[0]; }}
  if (p > 1) {{ t1[0]; t0[0]; }} else {{ t2[0]; }}
  t0[0];
  return 0;
}}
""",
    # Secret-indexed access: the unknown-target transfer must age the
    # right sets.
    """
char sbox[256]; secret int key; int i;
int main() {
  for (i = 0; i < 2; i = i + 1) { sbox[i * 64]; }
  sbox[key];
  sbox[0];
  return 0;
}
""",
    # Nested branching with re-touched blocks.
    """
char t0[64]; char t1[64]; char t2[64]; char t3[64];
int p; int q;
int main() {
  t0[0]; t1[0];
  if (p > 0) { t2[0]; if (q > 1) { t3[0]; } else { t0[0]; } } else { t1[0]; }
  t0[0]; t1[0];
  return 0;
}
""",
]

SWEEP_GEOMETRIES = [
    dict(num_lines=4),
    dict(num_lines=4, associativity=1),
    dict(num_lines=4, associativity=2),
]


class TestGeometryPolicySoundnessSweep:
    """Every abstract must-hit is a concrete hit, for every geometry,
    policy and merge strategy, on randomly simulated paths (fixed seed)."""

    @pytest.mark.parametrize("geometry", SWEEP_GEOMETRIES,
                             ids=lambda g: f"assoc{g.get('associativity', 'Full')}")
    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    @pytest.mark.parametrize("strategy", list(MergeStrategy))
    def test_must_hits_never_miss_concretely(self, geometry, policy, strategy):
        rng = random.Random(97)
        for source in SWEEP_KERNELS:
            config = CacheConfig(policy=policy, **geometry)
            program = compile_source(source)
            result = analyze_speculative(program, config, merge_strategy=strategy)
            must_hit_sites = result.must_hit_sites()
            for _ in range(4):
                inputs = {
                    "p": rng.randint(0, 3),
                    "q": rng.randint(0, 3),
                    "key": rng.randint(0, 255),
                }
                simulation = SpeculativeSimulator(
                    program, cache_config=config, predictor=OpposingPredictor()
                ).run(inputs)
                for record in simulation.non_speculative_accesses():
                    site = (record.block_name, record.instruction_index)
                    if site in must_hit_sites:
                        assert record.hit, (
                            f"must-hit missed concretely at {site} "
                            f"(geometry={geometry}, policy={policy}, "
                            f"strategy={strategy}, inputs={inputs})"
                        )

    @pytest.mark.parametrize("geometry", SWEEP_GEOMETRIES,
                             ids=lambda g: f"assoc{g.get('associativity', 'Full')}")
    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_speculative_subsumes_baseline_everywhere(self, geometry, policy):
        for source in SWEEP_KERNELS:
            config = CacheConfig(policy=policy, **geometry)
            program = compile_source(source)
            base = analyze_baseline(program, config)
            spec = analyze_speculative(program, config)
            assert spec.must_hit_sites() <= base.must_hit_sites()


# ----------------------------------------------------------------------
# age_of geometry awareness
# ----------------------------------------------------------------------
class TestAgeOfGeometryAware:
    def test_within_set_age_is_bounded_by_ways(self):
        config = CacheConfig(num_lines=8, associativity=2)
        cache = ConcreteCache(config)
        for i in range(16):
            cache.access(MemoryBlock("arr", i))
        for i in range(16):
            age = cache.age_of(MemoryBlock("arr", i))
            assert age is None or 1 <= age <= config.ways

    def test_age_comparable_with_per_set_abstract_age(self):
        config = CacheConfig(num_lines=4, associativity=2)
        cache = ConcreteCache(config)
        state = SetAssocCacheState.empty(config)
        for name in ["a", "b", "c", "a", "d"]:
            cache.access(block(name))
            state = state.access_block(block(name))
        for name in "abcd":
            if state.must_hit(block(name)):
                assert cache.age_of(block(name)) <= state.age(block(name))

    def test_paper_default_age_unchanged(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        for name in ["a", "b", "c"]:
            cache.access(block(name))
        assert cache.age_of(block("c")) == 1
        assert cache.age_of(block("a")) == 3
        assert cache.age_of(block("z")) is None
