"""The mitigation-synthesis subsystem: patching, placement, the greedy
minimiser + verification loop, and the service surface (RPC + caching)."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.engine.engine import AnalysisEngine
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.frontend import compile_source
from repro.ir.printer import program_to_source
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.mitigation import (
    FencePoint,
    MitigationError,
    apply_fence_points,
    count_fence_statements,
    enumerate_fence_points,
    hoist_points,
    mitigation_key,
    surviving_branch_points,
    synthesize_mitigation,
)
from repro.service.client import ServiceClient
from repro.service.server import ReproServer

#: Speculation-only leak at an 11-line cache (see tests/test_fence.py).
SPEC_LEAK = """
char sbox[256];
char pad_a[192];
char pad_b[192];
secret int key;
int mode;

int main() {
  reg int i;
  reg int t;
  for (i = 0; i < 256; i = i + 64) { t = sbox[i]; }
  if (mode > 0) {
    t = pad_a[0] + pad_a[64] + pad_a[128];
  } else {
    t = pad_b[0] + pad_b[64] + pad_b[128];
  }
  t = sbox[key];
  return t;
}
"""

LEAK_CACHE = CacheConfig(num_lines=11, line_size=64)

#: Leaks even without speculation (the S-box never fully fits): no fence
#: placement can close it.
UNMITIGABLE = """
char sbox[256];
secret int key;
int main() {
  reg int i;
  int t;
  for (i = 0; i < 128; i = i + 64) { t = sbox[i]; }
  t = sbox[key];
  return t;
}
"""

SAFE = "char a[64]; int main() { int t; t = a[0]; return t; }"


def leak_request(source: str = SPEC_LEAK, cache: CacheConfig = LEAK_CACHE):
    return AnalysisRequest.speculative(source, cache_config=cache, label="toy")


class TestFencePoints:
    def test_enumerate_covers_every_branch_arm(self):
        program = parse_program(SPEC_LEAK)
        points = enumerate_fence_points(program)
        # One `for` plus one `if`, two arms each.
        assert len(points) == 4
        assert {p.kind for p in points} == {"taken", "fallthrough"}

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            FencePoint("sideways", 3)

    def test_taken_point_prepends_to_then_body(self):
        program = parse_program("int p; int main() { if (p > 0) { p = 1; } return p; }")
        if_stmt = next(
            s
            for s in ast.walk_statements(program.function("main").body)
            if isinstance(s, ast.If)
        )
        patched = apply_fence_points(program, [FencePoint("taken", if_stmt.line)])
        patched_if = next(
            s
            for s in ast.walk_statements(patched.function("main").body)
            if isinstance(s, ast.If)
        )
        assert isinstance(patched_if.then_body.statements[0], ast.Fence)
        assert count_fence_statements(patched) == 1
        # The original AST is untouched.
        assert count_fence_statements(program) == 0

    def test_fallthrough_point_without_else_inserts_after(self):
        program = parse_program("int p; int main() { if (p > 0) { p = 1; } return p; }")
        if_stmt = next(
            s
            for s in ast.walk_statements(program.function("main").body)
            if isinstance(s, ast.If)
        )
        patched = apply_fence_points(program, [FencePoint("fallthrough", if_stmt.line)])
        body = patched.function("main").body.statements
        if_index = next(
            index for index, s in enumerate(body) if isinstance(s, ast.If)
        )
        assert isinstance(body[if_index + 1], ast.Fence)

    def test_loop_points_land_on_body_and_exit(self):
        program = parse_program(
            "int p; int main() { while (p > 0) { p = p - 1; } return p; }"
        )
        loop = next(
            s
            for s in ast.walk_statements(program.function("main").body)
            if isinstance(s, ast.While)
        )
        patched = apply_fence_points(
            program,
            [FencePoint("taken", loop.line), FencePoint("fallthrough", loop.line)],
        )
        main = patched.function("main").body.statements
        loop_index = next(i for i, s in enumerate(main) if isinstance(s, ast.While))
        assert isinstance(main[loop_index].body.statements[0], ast.Fence)
        assert isinstance(main[loop_index + 1], ast.Fence)

    def test_before_point_inserts_ahead_of_statement(self):
        source = "int p; int main() { p = 1; p = 2; return p; }"
        program = parse_program(source)
        second = program.function("main").body.statements[1]
        patched = apply_fence_points(program, [FencePoint("before", second.line)])
        statements = patched.function("main").body.statements
        # Both assignments share a line in this one-line body; the fence
        # goes before the first statement carrying it, exactly once.
        assert count_fence_statements(patched) == 1
        assert isinstance(statements[0], ast.Fence)

    def test_patched_source_compiles_and_contains_fences(self):
        program = parse_program(SPEC_LEAK)
        points = enumerate_fence_points(program)
        source = program_to_source(apply_fence_points(program, points))
        compiled = compile_source(source)
        assert source.count("fence;") == len(points)
        assert compiled.cfg is not None


class TestPlacementCandidates:
    def test_surviving_branch_points_skip_unrolled_loops(self):
        program = compile_source(SPEC_LEAK)
        points = surviving_branch_points(program)
        # The preload loop fully unrolls; only the if survives.
        lines = {p.line for p in points}
        assert len(lines) == 1
        assert {p.kind for p in points} == {"taken", "fallthrough"}

    def test_hoist_points_are_before_points(self):
        program = compile_source(SPEC_LEAK)
        for point in hoist_points(program):
            assert point.kind == "before"
            assert point.line > 0


class TestSynthesis:
    def test_closes_speculation_only_leak(self):
        engine = AnalysisEngine()
        result = synthesize_mitigation(leak_request(), engine=engine)
        assert result.leak_sites_before == 1
        assert result.leak_sites[0].symbol == "sbox"
        assert result.chosen == "optimized"
        selected = result.selected()
        assert selected is not None and selected.verified
        assert selected.leak_sites_after == 0
        assert "fence;" in selected.patched_source
        # Analysis-guided placement beats fence-every-branch.
        if result.baseline is not None:
            assert selected.source_fences < result.baseline.source_fences
            assert result.baseline.verified
        else:
            # The incremental loop (REPRO_INCREMENTAL=1) skips scoring the
            # strawman once the optimizer verified; its placement would
            # have fenced every enumerated branch-arm point.
            strawman = len(enumerate_fence_points(parse_program(SPEC_LEAK)))
            assert selected.source_fences < strawman

    def test_patched_source_recompiles_and_stays_clean(self):
        from repro.analysis.speculative import analyze_speculative

        engine = AnalysisEngine()
        result = synthesize_mitigation(leak_request(), engine=engine)
        patched = compile_source(result.selected().patched_source)
        verdict = analyze_speculative(
            patched, cache_config=LEAK_CACHE,
            speculation=leak_request().resolved_speculation,
        )
        assert not verdict.leak_detected

    def test_already_safe_program(self):
        result = synthesize_mitigation(
            AnalysisRequest.speculative(SAFE, cache_config=LEAK_CACHE),
            engine=AnalysisEngine(),
        )
        assert result.already_safe
        assert result.chosen == "none"
        assert result.selected() is None
        assert result.baseline is None and result.optimized is None
        assert result.analyses_run == 1

    def test_unmitigable_leak_raises(self):
        request = AnalysisRequest.speculative(
            UNMITIGABLE, cache_config=CacheConfig(num_lines=4, line_size=64)
        )
        with pytest.raises(MitigationError):
            synthesize_mitigation(request, engine=AnalysisEngine())

    def test_baseline_kind_is_normalised_to_speculative(self):
        request = AnalysisRequest(
            source=SPEC_LEAK, kind=AnalysisKind.BASELINE, cache_config=LEAK_CACHE
        )
        result = synthesize_mitigation(request, engine=AnalysisEngine())
        assert result.leak_sites_before == 1

    def test_optimize_false_evaluates_baseline_only(self):
        result = synthesize_mitigation(
            leak_request(), engine=AnalysisEngine(), optimize=False
        )
        assert result.optimized is None
        assert result.chosen == "baseline"
        assert result.baseline.verified

    def test_wire_form_is_json_safe(self):
        import json

        result = synthesize_mitigation(leak_request(), engine=AnalysisEngine())
        wire = json.loads(json.dumps(result.to_wire()))
        assert wire["chosen"] == "optimized"
        assert wire["optimized"]["leak_sites_after"] == 0
        assert wire["optimized"]["points"]
        assert wire["leak_sites"][0]["symbol"] == "sbox"

    def test_mitigation_key_is_store_compatible(self):
        key = mitigation_key(leak_request())
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")
        assert key != mitigation_key(leak_request(), optimize=False)
        assert key == mitigation_key(leak_request())

    def test_mitigation_key_normalises_kind_and_keeps_speculation(self):
        from dataclasses import replace

        from repro.speculation.config import SpeculationConfig

        # A BASELINE-kind request keys identically to its normalised
        # speculative form (synthesis normalises the kind the same way)...
        base_kind = replace(leak_request(), kind=AnalysisKind.BASELINE)
        assert mitigation_key(base_kind) == mitigation_key(leak_request())
        # ...and different speculation configs must NOT collide, even when
        # the incoming kind is BASELINE (whose own result key ignores them).
        shallow = replace(
            base_kind, speculation=SpeculationConfig.paper_default().with_depths(5, 5)
        )
        assert mitigation_key(shallow) != mitigation_key(base_kind)


class TestMitigateRPC:
    @pytest.fixture
    def server(self, tmp_path):
        srv = ReproServer(
            store_dir=str(tmp_path / "store"), port=0, max_workers=1
        ).start()
        yield srv
        srv.stop()

    def test_mitigate_over_the_wire(self, server, tmp_path):
        request = leak_request()
        with ServiceClient(port=server.port) as client:
            first = client.mitigate(request)
            second = client.mitigate(request)
        assert first["chosen"] == "optimized"
        assert first["optimized"]["verified"]
        assert not first["from_cache"]
        assert second["from_cache"]
        stripped = {k: v for k, v in first.items() if k != "from_cache"}
        assert stripped == {k: v for k, v in second.items() if k != "from_cache"}

        # A fresh daemon over the same store serves the memoised synthesis
        # from tier 2.
        restarted = ReproServer(
            store_dir=str(tmp_path / "store"), port=0, max_workers=1
        ).start()
        try:
            with ServiceClient(port=restarted.port) as client:
                replayed = client.mitigate(request)
            assert replayed["from_cache"]
            assert {k: v for k, v in replayed.items() if k != "from_cache"} == stripped
        finally:
            restarted.stop()

    def test_concurrent_identical_requests_coalesce(self, server):
        import threading

        request = leak_request()
        results: list[dict | None] = [None] * 4

        def hit(index: int) -> None:
            with ServiceClient(port=server.port) as client:
                results[index] = client.mitigate(request)

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r is not None and r["chosen"] == "optimized" for r in results)
        # Exactly one connection synthesised; the rest waited on the
        # per-key lock and were served the memoised result.
        assert sum(1 for r in results if not r["from_cache"]) == 1

    def test_cached_replay_uses_the_callers_label(self, server):
        from dataclasses import replace

        with ServiceClient(port=server.port) as client:
            first = client.mitigate(leak_request())
            replay = client.mitigate(replace(leak_request(), label="renamed"))
        assert first["name"] == "toy"
        assert replay["from_cache"]
        assert replay["name"] == "renamed"

    def test_unmitigable_reported_as_error(self, server):
        request = AnalysisRequest.speculative(
            UNMITIGABLE, cache_config=CacheConfig(num_lines=4, line_size=64)
        )
        with ServiceClient(port=server.port) as client:
            with pytest.raises(Exception) as info:
                client.mitigate(request)
        assert "MitigationError" in str(info.value) or "leak" in str(info.value)


class TestMitigateCLI:
    def test_local_mitigate_json(self, tmp_path, capsys):
        import json

        from repro.service.cli import main

        source_file = tmp_path / "leaky.mc"
        source_file.write_text(SPEC_LEAK)
        # The bench cache (64 lines) hides this toy's leak, so drive the
        # CLI through a kernel instead: des leaks with a zero-byte buffer.
        code = main(
            [
                "mitigate",
                "des",
                "--local",
                "--store-dir",
                str(tmp_path / "store"),
                "--json",
                "--emit-dir",
                str(tmp_path / "patched"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == "des"
        assert payload[0]["chosen"] == "optimized"
        emitted = tmp_path / "patched" / "des.mitigated.mc"
        assert emitted.exists()
        assert "fence;" in emitted.read_text()
