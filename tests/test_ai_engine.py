"""Unit tests for the generic solver and the interval domain."""

import pytest

from repro import compile_source
from repro.ai.interval import Interval, IntervalState, analyze_intervals
from repro.ai.solver import solve_forward
from repro.cache.abstract import CacheState
from repro.ir.memory import MemoryBlock
from repro.analysis.transfer import AccessTable, transfer_block


class TestInterval:
    def test_constants_and_top(self):
        assert Interval.const(5).is_constant
        assert not Interval.top().is_constant
        assert Interval(3, 1).is_empty

    def test_join_and_meet(self):
        assert Interval(0, 3).join(Interval(2, 5)) == Interval(0, 5)
        assert Interval(0, 3).meet(Interval(2, 5)) == Interval(2, 3)
        assert Interval(0, 1).meet(Interval(3, 4)).is_empty

    def test_leq(self):
        assert Interval(1, 2).leq(Interval(0, 5))
        assert not Interval(0, 5).leq(Interval(1, 2))
        assert Interval(3, 1).leq(Interval(0, 0))

    def test_widen_unbounds_growing_sides(self):
        widened = Interval(0, 5).widen(Interval(0, 3))
        assert widened.lo == 0
        assert widened.hi == float("inf")

    def test_arithmetic(self):
        assert Interval(1, 2).add(Interval(3, 4)) == Interval(4, 6)
        assert Interval(1, 2).sub(Interval(0, 1)) == Interval(0, 2)
        assert Interval(-1, 2).mul(Interval(3, 3)) == Interval(-3, 6)
        assert Interval(1, 2).neg() == Interval(-2, -1)

    def test_contains(self):
        assert Interval(0, 10).contains(5)
        assert not Interval(0, 10).contains(11)

    def test_paper_widening_example(self):
        """Section 6.3: widening [0,5] against previous [0,3] gives [0,+inf)."""
        previous = Interval(0, 3)
        current = Interval(0, 5)
        assert current.widen(previous).hi == float("inf")


class TestIntervalAnalysis:
    def test_constant_propagation_through_copies(self):
        program = compile_source(
            "int main() { reg int x; reg int y; x = 4; y = x + 1; return y; }"
        )
        result = analyze_intervals(program.cfg)
        exit_state = result.exit_states["entry"]
        values = [v for v in exit_state.values.values() if v.is_constant]
        assert any(v.lo == 5 for v in values)

    def test_branch_join_widens_range(self):
        program = compile_source(
            "int p; int main() { reg int x; if (p > 0) { x = 1; } else { x = 10; } return x; }"
        )
        result = analyze_intervals(program.cfg)
        exits = [result.exit_states[b] for b in program.cfg.exit_blocks()]
        assert exits and not exits[0].is_bottom

    def test_loop_terminates_with_widening(self):
        program = compile_source(
            "int n; int main() { reg int i; i = 0; while (i < n) { i = i + 1; } return i; }"
        )
        result = analyze_intervals(program.cfg)
        assert result.iterations < 100

    def test_interval_state_lattice(self):
        bottom = IntervalState.bottom()
        entry = IntervalState.entry()
        assert bottom.leq(entry)
        assert bottom.join(entry) == entry or bottom.join(entry).leq(entry)


class TestGenericSolver:
    def test_cache_fixpoint_on_straightline_program(self):
        program = compile_source("char a[64]; char b[64]; int main() { a[0]; b[0]; a[0]; return 0; }")
        table = AccessTable(program.cfg, program.layout)
        result = solve_forward(
            program.cfg,
            entry_state=CacheState.empty(4),
            bottom=CacheState.bottom(4),
            transfer=lambda name, state: transfer_block(state, table, name),
        )
        exit_state = result.exit_states[program.cfg.exit_blocks()[0]]
        assert exit_state.must_hit(MemoryBlock("a", 0))
        assert exit_state.must_hit(MemoryBlock("b", 0))

    def test_unreachable_blocks_stay_bottom(self):
        program = compile_source(
            "char a[64]; int main() { return 0; }"
        )
        table = AccessTable(program.cfg, program.layout)
        result = solve_forward(
            program.cfg,
            entry_state=CacheState.empty(4),
            bottom=CacheState.bottom(4),
            transfer=lambda name, state: transfer_block(state, table, name),
        )
        assert result.iterations >= 1

    def test_loop_reaches_fixpoint(self):
        program = compile_source(
            "char a[256]; int n; int main() { reg int i; i = 0;"
            "  while (i < n) { a[0]; i = i + 1; } a[0]; return 0; }"
        )
        table = AccessTable(program.cfg, program.layout)
        result = solve_forward(
            program.cfg,
            entry_state=CacheState.empty(8),
            bottom=CacheState.bottom(8),
            transfer=lambda name, state: transfer_block(state, table, name),
        )
        exit_state = result.exit_states[program.cfg.exit_blocks()[0]]
        assert exit_state.must_hit(MemoryBlock("a", 0))

    def test_max_visits_guard(self):
        program = compile_source("int main() { return 0; }")
        table = AccessTable(program.cfg, program.layout)
        from repro.errors import AnalysisError

        class NonConverging(CacheState):
            pass

        with pytest.raises(AnalysisError):
            # A transfer that always reports "changed" state via a broken
            # ordering would loop; the visit guard catches it.
            solve_forward(
                program.cfg,
                entry_state=CacheState.empty(4),
                bottom=CacheState.bottom(4),
                transfer=lambda name, state: state,
                max_visits=0,
            )
