"""Tests for the telemetry layer (:mod:`repro.obs`).

The contract under test is observational soundness: metrics, spans and
provenance stamps may describe an analysis, but they must never change
one.  The determinism tests run identical requests with tracing on and
off across every shard backend and compare full wire fingerprints; the
exporter tests pin the JSONL invariants (every line parses, spans nest,
concurrent writers never interleave); the provenance tests replay a
stamp back into a request and demand the identical verdict.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import threading

import pytest

from repro.analysis.result import CacheAnalysisResult
from repro.engine.engine import AnalysisEngine, execute_request
from repro.engine.request import AnalysisRequest
from repro.obs import (
    MetricsRegistry,
    ProvenanceStamp,
    SpanBuffer,
    metrics,
    span,
    stamp_for_request,
    tracer,
)
from repro.obs.tracing import _DisabledSpan
from repro.service.wire import request_from_wire, result_fingerprint

SOURCE = """
char table[4096]; int k;
int main() {
  int x = 0;
  if (k > 0) { x = x + table[k * 64]; }
  if (k > 1) { x = x + table[128]; }
  return x;
}
"""


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    """Every test starts with tracing off and no leftover sinks."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    before = list(tracer()._sinks)
    yield
    for sink in list(tracer()._sinks):
        if sink not in before:
            tracer().remove_sink(sink)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("a.pops").inc(3)
        registry.gauge("a.size").set(7)
        registry.histogram("a.time").observe(0.02)
        snap = registry.snapshot()
        assert snap["a.pops"] == {"type": "counter", "value": 3}
        assert snap["a.size"]["value"] == 7
        assert snap["a.time"]["count"] == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_absorb_merges_counters_and_histograms(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.counter("n").inc(1)
        theirs.counter("n").inc(5)
        theirs.gauge("g").set(2.0)
        theirs.histogram("h").observe(0.5)
        ours.absorb(theirs.snapshot())
        snap = ours.snapshot()
        assert snap["n"]["value"] == 6
        assert snap["g"]["value"] == 2.0
        assert snap["h"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        json.dumps(registry.snapshot())


# ----------------------------------------------------------------------
# Tracer: disabled fast path and JSONL exporter
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_the_noop_type_and_still_times(self):
        opened = span("anything", attr=1)
        assert isinstance(opened, _DisabledSpan)
        with opened as s:
            pass
        assert s.duration >= 0.0

    def test_no_file_created_when_disabled(self, tmp_path):
        with span("untraced"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_env_var_attaches_and_detaches_jsonl(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        with span("outer", a=1):
            with span("inner"):
                pass
        monkeypatch.delenv("REPRO_TRACE")
        assert not tracer().enabled
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        spans = [json.loads(line) for line in lines]  # every line parses
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["trace_id"] == by_name["outer"]["trace_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["attrs"] == {"a": 1}

    def test_concurrent_writers_never_interleave(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))

        def worker(index: int) -> None:
            for _ in range(50):
                with span("worker", index=index, pad="x" * 256):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = path.read_text().splitlines()
        assert len(lines) == 8 * 50
        for line in lines:
            json.loads(line)  # any torn write would fail here

    def test_span_buffer_finds_job_traces(self):
        buffer = SpanBuffer()
        tracer().add_sink(buffer)
        with span("scheduler.batch", job_ids=["job-7"]):
            with span("analyze"):
                pass
        with span("unrelated"):
            pass
        tracer().remove_sink(buffer)
        names = {s["name"] for s in buffer.trace_for_job("job-7")}
        assert names == {"scheduler.batch", "analyze"}

    def test_collecting_bypasses_sinks(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        with tracer().collecting() as collected:
            with span("inside"):
                pass
        assert [s["name"] for s in collected.spans] == ["inside"]
        assert not path.exists()  # never written, not even lazily

    def test_emit_foreign_grafts_under_current_span(self):
        buffer = SpanBuffer()
        tracer().add_sink(buffer)
        with tracer().collecting() as collected:
            with span("worker.root"):
                with span("worker.child"):
                    pass
        with span("master") as master:
            tracer().emit_foreign(collected.spans)
        tracer().remove_sink(buffer)
        by_name = {s["name"]: s for s in buffer.spans()}
        assert by_name["worker.root"]["parent_id"] == master.span_id
        assert by_name["worker.child"]["parent_id"] == by_name["worker.root"]["span_id"]
        assert all(s["trace_id"] == master.trace_id for s in buffer.spans())


# ----------------------------------------------------------------------
# Determinism: tracing must never perturb results
# ----------------------------------------------------------------------
class TestTracingDeterminism:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_identical_results_with_tracing_on_and_off(
        self, backend, tmp_path, monkeypatch
    ):
        request = AnalysisRequest.speculative(
            SOURCE, scenario_shards=2, shard_backend=backend
        )
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        untraced = execute_request(request)
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        traced = execute_request(request)
        monkeypatch.delenv("REPRO_TRACE")
        assert result_fingerprint(traced) == result_fingerprint(untraced)
        assert traced.classifications == untraced.classifications
        assert traced.entry_states == untraced.entry_states
        assert traced.iterations == untraced.iterations

    def test_result_keys_unaffected_by_tracing(self, tmp_path, monkeypatch):
        request = AnalysisRequest.speculative(SOURCE)
        key_off = request.result_key()
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        key_on = AnalysisRequest.speculative(SOURCE).result_key()
        assert key_on == key_off

    def test_trace_covers_pipeline_phases(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        engine = AnalysisEngine()
        engine.run(AnalysisRequest.speculative(SOURCE, scenario_shards=2))
        monkeypatch.delenv("REPRO_TRACE")
        names = {json.loads(line)["name"] for line in path.read_text().splitlines()}
        for expected in (
            "engine.run", "analyze", "frontend", "parse", "unroll", "lower",
            "vcfg", "fixpoint", "fixpoint.round", "fixpoint.shard", "classify",
        ):
            assert expected in names, f"missing span {expected!r}"


# ----------------------------------------------------------------------
# Provenance stamps
# ----------------------------------------------------------------------
class TestProvenance:
    def test_results_carry_a_stamp(self):
        request = AnalysisRequest.speculative(SOURCE)
        result = execute_request(request)
        stamp = result.provenance
        assert isinstance(stamp, ProvenanceStamp)
        assert stamp.result_key == request.result_key()
        assert stamp.kind == "speculative"

    def test_stamp_replays_to_the_identical_verdict(self):
        request = AnalysisRequest.speculative(SOURCE, scenario_shards=2)
        result = execute_request(request)
        replayed_request = result.provenance.replay_request()
        assert replayed_request == request
        assert replayed_request.result_key() == request.result_key()
        replay = execute_request(replayed_request)
        assert result_fingerprint(replay) == result_fingerprint(result)

    def test_stamp_request_matches_wire_codec(self):
        request = AnalysisRequest.speculative(SOURCE, label="pin")
        stamp = stamp_for_request(request)
        assert request_from_wire(stamp.request) == request

    def test_stamp_wire_roundtrip(self):
        stamp = stamp_for_request(AnalysisRequest.baseline(SOURCE))
        wire = stamp.to_wire()
        json.dumps(wire)  # JSON-clean
        assert ProvenanceStamp.from_wire(wire) == stamp

    def test_stamp_excluded_from_fingerprint_and_equality(self):
        request = AnalysisRequest.speculative(SOURCE)
        first, second = execute_request(request), execute_request(request)
        # provenance is compare=False: stripping it never changes equality
        assert first == dataclasses.replace(first, provenance=None)
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_stored_artifact_replays_bit_for_bit(self, tmp_path):
        from repro.service.store import ResultStore

        request = AnalysisRequest.speculative(SOURCE)
        engine = AnalysisEngine(result_store=ResultStore(tmp_path / "store"))
        first = engine.run(request)
        stored = ResultStore(tmp_path / "store").get(request.result_key())
        assert stored.provenance is not None
        replay = execute_request(stored.provenance.replay_request())
        assert result_fingerprint(replay) == result_fingerprint(first)

    def test_old_pickles_without_provenance_still_load(self):
        result = execute_request(AnalysisRequest.baseline(SOURCE))
        state = result.__dict__.copy()
        state.pop("provenance")
        state.pop("shard_backend_used")
        old = CacheAnalysisResult.__new__(CacheAnalysisResult)
        old.__setstate__(state)
        revived = pickle.loads(pickle.dumps(old))
        assert revived.provenance is None
        assert revived.shard_backend_used is None
        # the engine's cache-replay copy path must survive such results
        assert dataclasses.replace(revived, from_cache=True).from_cache


# ----------------------------------------------------------------------
# Daemon surface: trace RPC and extended stats
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    @pytest.fixture
    def server(self):
        from repro.service.server import ReproServer

        server = ReproServer(port=0, max_workers=1).start()
        yield server
        server.stop()

    @pytest.fixture
    def client(self, server):
        from repro.service.client import ServiceClient

        with ServiceClient(port=server.port) as client:
            yield client

    def test_trace_rpc_returns_job_span_tree(self, client):
        request = AnalysisRequest.speculative(SOURCE, scenario_shards=2)
        client.analyze(request)
        assert client.last_job_id is not None
        spans = client.trace(client.last_job_id)
        names = {s["name"] for s in spans}
        assert "scheduler.batch" in names
        assert "fixpoint" in names
        batch = next(s for s in spans if s["name"] == "scheduler.batch")
        assert client.last_job_id in batch["attrs"]["job_ids"]
        # one trace: every span shares the dispatch's trace id
        assert {s["trace_id"] for s in spans} == {batch["trace_id"]}

    def test_trace_rpc_rejects_unknown_jobs(self, client):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError, match="unknown job"):
            client.trace("job-999999")

    def test_stats_rpc_exposes_sharding_and_metrics(self, client):
        client.analyze(
            AnalysisRequest.speculative(SOURCE, scenario_shards=2)
        )
        stats = client.stats()
        assert stats["scheduler"]["sharded_jobs"] >= 1
        assert "fanout_dispatches" in stats["scheduler"]
        registry = stats["metrics"]
        assert registry["fixpoint.pops"]["value"] > 0
        json.dumps(stats)  # the whole payload is JSON-clean

    def test_result_wire_carries_provenance(self, client):
        request = AnalysisRequest.speculative(SOURCE)
        wire = client.analyze(request)
        stamp = wire["provenance"]
        assert stamp["result_key"] == request.result_key()
        assert request_from_wire(stamp["request"]) == request
