"""Tests for the telemetry layer (:mod:`repro.obs`).

The contract under test is observational soundness: metrics, spans and
provenance stamps may describe an analysis, but they must never change
one.  The determinism tests run identical requests with tracing on and
off across every shard backend and compare full wire fingerprints; the
exporter tests pin the JSONL invariants (every line parses, spans nest,
concurrent writers never interleave); the provenance tests replay a
stamp back into a request and demand the identical verdict.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import threading

import pytest

from repro.analysis.result import CacheAnalysisResult
from repro.engine.engine import AnalysisEngine, execute_request
from repro.engine.request import AnalysisRequest
from repro.obs import (
    MetricsRegistry,
    ProvenanceStamp,
    SpanBuffer,
    metrics,
    span,
    stamp_for_request,
    tracer,
)
from repro.obs.tracing import _DisabledSpan
from repro.service.wire import request_from_wire, result_fingerprint

SOURCE = """
char table[4096]; int k;
int main() {
  int x = 0;
  if (k > 0) { x = x + table[k * 64]; }
  if (k > 1) { x = x + table[128]; }
  return x;
}
"""


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    """Every test starts with tracing off and no leftover sinks."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    before = list(tracer()._sinks)
    yield
    for sink in list(tracer()._sinks):
        if sink not in before:
            tracer().remove_sink(sink)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("a.pops").inc(3)
        registry.gauge("a.size").set(7)
        registry.histogram("a.time").observe(0.02)
        snap = registry.snapshot()
        assert snap["a.pops"] == {"type": "counter", "value": 3}
        assert snap["a.size"]["value"] == 7
        assert snap["a.time"]["count"] == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_absorb_merges_counters_and_histograms(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.counter("n").inc(1)
        theirs.counter("n").inc(5)
        theirs.gauge("g").set(2.0)
        theirs.histogram("h").observe(0.5)
        ours.absorb(theirs.snapshot())
        snap = ours.snapshot()
        assert snap["n"]["value"] == 6
        assert snap["g"]["value"] == 2.0
        assert snap["h"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        json.dumps(registry.snapshot())


# ----------------------------------------------------------------------
# Tracer: disabled fast path and JSONL exporter
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_the_noop_type_and_still_times(self):
        opened = span("anything", attr=1)
        assert isinstance(opened, _DisabledSpan)
        with opened as s:
            pass
        assert s.duration >= 0.0

    def test_no_file_created_when_disabled(self, tmp_path):
        with span("untraced"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_env_var_attaches_and_detaches_jsonl(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        with span("outer", a=1):
            with span("inner"):
                pass
        monkeypatch.delenv("REPRO_TRACE")
        assert not tracer().enabled
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        spans = [json.loads(line) for line in lines]  # every line parses
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["trace_id"] == by_name["outer"]["trace_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["attrs"] == {"a": 1}

    def test_concurrent_writers_never_interleave(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))

        def worker(index: int) -> None:
            for _ in range(50):
                with span("worker", index=index, pad="x" * 256):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = path.read_text().splitlines()
        assert len(lines) == 8 * 50
        for line in lines:
            json.loads(line)  # any torn write would fail here

    def test_span_buffer_finds_job_traces(self):
        buffer = SpanBuffer()
        tracer().add_sink(buffer)
        with span("scheduler.batch", job_ids=["job-7"]):
            with span("analyze"):
                pass
        with span("unrelated"):
            pass
        tracer().remove_sink(buffer)
        names = {s["name"] for s in buffer.trace_for_job("job-7")}
        assert names == {"scheduler.batch", "analyze"}

    def test_collecting_bypasses_sinks(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        with tracer().collecting() as collected:
            with span("inside"):
                pass
        assert [s["name"] for s in collected.spans] == ["inside"]
        assert not path.exists()  # never written, not even lazily

    def test_emit_foreign_grafts_under_current_span(self):
        buffer = SpanBuffer()
        tracer().add_sink(buffer)
        with tracer().collecting() as collected:
            with span("worker.root"):
                with span("worker.child"):
                    pass
        with span("master") as master:
            tracer().emit_foreign(collected.spans)
        tracer().remove_sink(buffer)
        by_name = {s["name"]: s for s in buffer.spans()}
        assert by_name["worker.root"]["parent_id"] == master.span_id
        assert by_name["worker.child"]["parent_id"] == by_name["worker.root"]["span_id"]
        assert all(s["trace_id"] == master.trace_id for s in buffer.spans())


# ----------------------------------------------------------------------
# Determinism: tracing must never perturb results
# ----------------------------------------------------------------------
class TestTracingDeterminism:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_identical_results_with_tracing_on_and_off(
        self, backend, tmp_path, monkeypatch
    ):
        request = AnalysisRequest.speculative(
            SOURCE, scenario_shards=2, shard_backend=backend
        )
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        untraced = execute_request(request)
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        traced = execute_request(request)
        monkeypatch.delenv("REPRO_TRACE")
        assert result_fingerprint(traced) == result_fingerprint(untraced)
        assert traced.classifications == untraced.classifications
        assert traced.entry_states == untraced.entry_states
        assert traced.iterations == untraced.iterations

    def test_result_keys_unaffected_by_tracing(self, tmp_path, monkeypatch):
        request = AnalysisRequest.speculative(SOURCE)
        key_off = request.result_key()
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        key_on = AnalysisRequest.speculative(SOURCE).result_key()
        assert key_on == key_off

    def test_trace_covers_pipeline_phases(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        engine = AnalysisEngine()
        engine.run(AnalysisRequest.speculative(SOURCE, scenario_shards=2))
        monkeypatch.delenv("REPRO_TRACE")
        names = {json.loads(line)["name"] for line in path.read_text().splitlines()}
        for expected in (
            "engine.run", "analyze", "frontend", "parse", "unroll", "lower",
            "vcfg", "fixpoint", "fixpoint.round", "fixpoint.shard", "classify",
        ):
            assert expected in names, f"missing span {expected!r}"


# ----------------------------------------------------------------------
# Provenance stamps
# ----------------------------------------------------------------------
class TestProvenance:
    def test_results_carry_a_stamp(self):
        request = AnalysisRequest.speculative(SOURCE)
        result = execute_request(request)
        stamp = result.provenance
        assert isinstance(stamp, ProvenanceStamp)
        assert stamp.result_key == request.result_key()
        assert stamp.kind == "speculative"

    def test_stamp_replays_to_the_identical_verdict(self):
        request = AnalysisRequest.speculative(SOURCE, scenario_shards=2)
        result = execute_request(request)
        replayed_request = result.provenance.replay_request()
        assert replayed_request == request
        assert replayed_request.result_key() == request.result_key()
        replay = execute_request(replayed_request)
        assert result_fingerprint(replay) == result_fingerprint(result)

    def test_stamp_request_matches_wire_codec(self):
        request = AnalysisRequest.speculative(SOURCE, label="pin")
        stamp = stamp_for_request(request)
        assert request_from_wire(stamp.request) == request

    def test_stamp_wire_roundtrip(self):
        stamp = stamp_for_request(AnalysisRequest.baseline(SOURCE))
        wire = stamp.to_wire()
        json.dumps(wire)  # JSON-clean
        assert ProvenanceStamp.from_wire(wire) == stamp

    def test_stamp_excluded_from_fingerprint_and_equality(self):
        request = AnalysisRequest.speculative(SOURCE)
        first, second = execute_request(request), execute_request(request)
        # provenance is compare=False: stripping it never changes equality
        assert first == dataclasses.replace(first, provenance=None)
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_stored_artifact_replays_bit_for_bit(self, tmp_path):
        from repro.service.store import ResultStore

        request = AnalysisRequest.speculative(SOURCE)
        engine = AnalysisEngine(result_store=ResultStore(tmp_path / "store"))
        first = engine.run(request)
        stored = ResultStore(tmp_path / "store").get(request.result_key())
        assert stored.provenance is not None
        replay = execute_request(stored.provenance.replay_request())
        assert result_fingerprint(replay) == result_fingerprint(first)

    def test_old_pickles_without_provenance_still_load(self):
        result = execute_request(AnalysisRequest.baseline(SOURCE))
        state = result.__dict__.copy()
        state.pop("provenance")
        state.pop("shard_backend_used")
        old = CacheAnalysisResult.__new__(CacheAnalysisResult)
        old.__setstate__(state)
        revived = pickle.loads(pickle.dumps(old))
        assert revived.provenance is None
        assert revived.shard_backend_used is None
        # the engine's cache-replay copy path must survive such results
        assert dataclasses.replace(revived, from_cache=True).from_cache


# ----------------------------------------------------------------------
# Daemon surface: trace RPC and extended stats
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    @pytest.fixture
    def server(self):
        from repro.service.server import ReproServer

        server = ReproServer(port=0, max_workers=1).start()
        yield server
        server.stop()

    @pytest.fixture
    def client(self, server):
        from repro.service.client import ServiceClient

        with ServiceClient(port=server.port) as client:
            yield client

    def test_trace_rpc_returns_job_span_tree(self, client):
        request = AnalysisRequest.speculative(SOURCE, scenario_shards=2)
        client.analyze(request)
        assert client.last_job_id is not None
        spans = client.trace(client.last_job_id)
        names = {s["name"] for s in spans}
        assert "scheduler.batch" in names
        assert "fixpoint" in names
        batch = next(s for s in spans if s["name"] == "scheduler.batch")
        assert client.last_job_id in batch["attrs"]["job_ids"]
        # one trace: every span shares the dispatch's trace id
        assert {s["trace_id"] for s in spans} == {batch["trace_id"]}

    def test_trace_rpc_rejects_unknown_jobs(self, client):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError, match="unknown job"):
            client.trace("job-999999")

    def test_stats_rpc_exposes_sharding_and_metrics(self, client):
        client.analyze(
            AnalysisRequest.speculative(SOURCE, scenario_shards=2)
        )
        stats = client.stats()
        assert stats["scheduler"]["sharded_jobs"] >= 1
        assert "fanout_dispatches" in stats["scheduler"]
        registry = stats["metrics"]
        assert registry["fixpoint.pops"]["value"] > 0
        json.dumps(stats)  # the whole payload is JSON-clean

    def test_result_wire_carries_provenance(self, client):
        request = AnalysisRequest.speculative(SOURCE)
        wire = client.analyze(request)
        stamp = wire["provenance"]
        assert stamp["result_key"] == request.result_key()
        assert request_from_wire(stamp["request"]) == request


# ----------------------------------------------------------------------
# Progress reporters and the watchable event log
# ----------------------------------------------------------------------
class TestProgressPrimitives:
    def test_null_reporter_is_the_default_and_inactive(self):
        from repro.obs.progress import NULL_REPORTER
        from repro.obs import current_reporter

        assert current_reporter() is NULL_REPORTER
        assert NULL_REPORTER.active is False
        NULL_REPORTER.publish("anything", pops=1)  # no-op, never raises

    def test_reporting_scopes_nest_and_restore(self):
        from repro.obs import CollectingReporter, current_reporter, reporting

        outer, inner = CollectingReporter(), CollectingReporter()
        with reporting(outer):
            assert current_reporter() is outer
            with reporting(inner):
                assert current_reporter() is inner
            assert current_reporter() is outer
            # None leaves the current reporter installed.
            with reporting(None) as active:
                assert active is outer
        assert current_reporter().active is False

    def test_publish_progress_routes_to_installed_reporter(self):
        from repro.obs import CollectingReporter, publish_progress, reporting

        collector = CollectingReporter()
        with reporting(collector):
            publish_progress("fixpoint.round", round=3)
        assert collector.events == [
            {"phase": "fixpoint.round", "round": 3, "pid": __import__("os").getpid()}
        ]
        drained = collector.drain()
        assert len(drained) == 1 and collector.events == []

    def test_callback_reporter(self):
        from repro.obs import CallbackReporter, reporting, publish_progress

        seen: list[tuple[str, dict]] = []
        with reporting(CallbackReporter(lambda phase, fields: seen.append((phase, fields)))):
            publish_progress("mitigate", leaks=2)
        assert seen == [("mitigate", {"leaks": 2})]

    def test_republish_reemits_relayed_events(self):
        from repro.obs import CollectingReporter, reporting, republish

        relayed = [{"phase": "fixpoint.shard", "shard": 1, "pid": 99999}]
        sink = CollectingReporter()
        with reporting(sink):
            republish(relayed)
        assert sink.events == [{"phase": "fixpoint.shard", "shard": 1, "pid": 99999}]
        republish(relayed)  # without a reporter: a silent no-op

    def test_event_log_stamps_and_orders(self):
        from repro.obs import EventLog

        log = EventLog()
        first = log.append("queued", priority="normal")
        second = log.append("dispatched")
        assert (first["seq"], second["seq"]) == (1, 2)
        assert first["t"] <= second["t"] and first["ts"] <= second["ts"]
        assert log.last_seq == 2
        assert [e["event"] for e in log.snapshot()] == ["queued", "dispatched"]
        assert [e["event"] for e in log.since(1)] == ["dispatched"]

    def test_event_log_reserved_keys_cannot_be_forged(self):
        from repro.obs import EventLog

        log = EventLog()
        entry = log.append("progress", seq=999, t=-1.0, ts=-1.0)
        assert entry["seq"] == 1 and entry["event"] == "progress"
        assert entry["t"] > 0 and entry["ts"] > 0

    def test_event_log_capacity_bounds_memory(self):
        from repro.obs import EventLog

        log = EventLog(capacity=4)
        for index in range(10):
            log.append("progress", index=index)
        snapshot = log.snapshot()
        assert len(snapshot) == 4
        assert [e["index"] for e in snapshot] == [6, 7, 8, 9]
        assert log.last_seq == 10  # seq never resets on drops

    def test_wait_since_blocks_until_append(self):
        import threading

        from repro.obs import EventLog

        log = EventLog()
        results: list[list] = []

        def watcher():
            results.append(log.wait_since(0, timeout=10.0))

        thread = threading.Thread(target=watcher)
        thread.start()
        log.append("done")
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert [e["event"] for e in results[0]] == ["done"]

    def test_wait_since_times_out_empty(self):
        import time

        from repro.obs import EventLog

        log = EventLog()
        started = time.monotonic()
        assert log.wait_since(0, timeout=0.05) == []
        assert time.monotonic() - started < 5.0

    def test_log_reporter_writes_progress_entries(self):
        from repro.obs import EventLog, LogReporter

        log = EventLog()
        LogReporter(log).publish("fixpoint", pops=4096)
        entry = log.snapshot()[0]
        assert entry["event"] == "progress"
        assert entry["phase"] == "fixpoint" and entry["pops"] == 4096


# ----------------------------------------------------------------------
# Bucket-interpolated quantiles and Prometheus exposition
# ----------------------------------------------------------------------
class TestHistogramQuantile:
    def test_empty_histogram_has_no_quantile(self):
        from repro.obs.metrics import Histogram

        assert Histogram("h").quantile(0.5) is None

    def test_single_observation_pins_all_quantiles(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", edges=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        for q in (0.0, 0.5, 0.99, 1.0):
            value = histogram.quantile(q)
            assert 1.0 <= value <= 2.0, f"q={q} escaped the bucket: {value}"

    def test_quantiles_are_monotone_and_bounded_by_min_max(self):
        import random

        from repro.obs.metrics import Histogram

        histogram = Histogram("h")
        rng = random.Random(7)
        samples = [rng.uniform(0.002, 8.0) for _ in range(500)]
        for sample in samples:
            histogram.observe(sample)
        quantiles = [histogram.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)
        assert min(samples) <= quantiles[0] and quantiles[-1] <= max(samples)

    def test_quantile_accuracy_within_bucket_width(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", edges=(0.1, 0.2, 0.3, 0.4, 0.5))
        samples = [0.05 + 0.01 * i for i in range(45)]  # 0.05 .. 0.49
        for sample in samples:
            histogram.observe(sample)
        exact = sorted(samples)[len(samples) // 2]
        estimate = histogram.quantile(0.5)
        assert abs(estimate - exact) <= 0.1, "error must stay within one bucket"

    def test_overflow_bucket_tightened_by_max(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", edges=(1.0,))
        histogram.observe(50.0)
        assert 1.0 <= histogram.quantile(0.99) <= 50.0

    def test_works_on_rpc_payloads(self):
        import json

        from repro.obs.metrics import Histogram, histogram_quantile

        histogram = Histogram("h")
        for value in (0.02, 0.04, 0.3):
            histogram.observe(value)
        payload = json.loads(json.dumps(histogram.to_dict()))
        assert histogram_quantile(payload, 0.5) == histogram.quantile(0.5)


class TestPrometheusRendering:
    def test_counter_gauge_histogram_families(self):
        from repro.obs import MetricsRegistry, render_prometheus

        registry = MetricsRegistry()
        registry.counter("fixpoint.pops").inc(12)
        registry.gauge("scheduler.queue_depth.high").set(3)
        registry.histogram("scheduler.e2e_seconds").observe(0.02)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_fixpoint_pops_total counter" in text
        assert "repro_fixpoint_pops_total 12" in text
        assert "repro_scheduler_queue_depth_high 3" in text
        assert '# TYPE repro_scheduler_e2e_seconds histogram' in text
        assert 'repro_scheduler_e2e_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_scheduler_e2e_seconds_count 1" in text
        assert text.endswith("\n")

    def test_rendering_is_deterministic(self):
        from repro.obs import MetricsRegistry, render_prometheus

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        assert render_prometheus(snapshot) == render_prometheus(snapshot)
        lines = render_prometheus(snapshot).splitlines()
        assert lines.index("repro_a_total 1") < lines.index("repro_b_total 1")

    def test_empty_snapshot_renders_empty(self):
        from repro.obs import render_prometheus

        assert render_prometheus({}) == ""
