"""Unit tests for symbol resolution and secret-taint analysis."""

import pytest

from repro.errors import TypeError_
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program


def check(source):
    return check_program(parse_program(source))


class TestSymbols:
    def test_global_scalar_size(self):
        info = check("int x; char c; long l; int main() { return 0; }")
        table = info.globals_table
        assert table.lookup("x").size_bytes == 4
        assert table.lookup("c").size_bytes == 1
        assert table.lookup("l").size_bytes == 8

    def test_array_size(self):
        info = check("int t[31]; int main() { return 0; }")
        symbol = info.globals_table.lookup("t")
        assert symbol.is_array
        assert symbol.size_bytes == 124

    def test_reg_variable_has_no_memory_footprint(self):
        info = check("reg int i; int main() { return 0; }")
        symbol = info.globals_table.lookup("i")
        assert symbol.size_bytes == 0
        assert not symbol.in_memory

    def test_locals_and_params_resolved_per_function(self):
        info = check("int f(int a) { int b; return a + b; }")
        assert info.symbol("f", "a").is_param
        assert not info.symbol("f", "b").is_param

    def test_locals_shadow_globals_lookup_order(self):
        info = check("int x; int f() { int x; return x; }")
        symbol = info.functions["f"].table.lookup("x")
        assert not symbol.is_global

    def test_unknown_symbol_raises(self):
        info = check("int main() { return 0; }")
        with pytest.raises(TypeError_):
            info.symbol("main", "nope")

    def test_array_initializer_recorded(self):
        info = check("int t[3] = {7, 8, 9}; int main() { return t[0]; }")
        assert info.array_initializers["t"] == [7, 8, 9]


class TestErrors:
    def test_duplicate_global(self):
        with pytest.raises(TypeError_):
            check("int x; int x; int main() { return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(TypeError_):
            check("int f() { return 0; } int f() { return 1; }")

    def test_use_of_undeclared_variable(self):
        with pytest.raises(TypeError_):
            check("int main() { return y; }")

    def test_assignment_to_undeclared(self):
        with pytest.raises(TypeError_):
            check("int main() { y = 1; return 0; }")

    def test_indexing_scalar(self):
        with pytest.raises(TypeError_):
            check("int x; int main() { return x[0]; }")

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(TypeError_):
            check("int t[4]; int main() { t = 1; return 0; }")

    def test_reg_array_rejected(self):
        with pytest.raises(TypeError_):
            check("reg int t[4]; int main() { return 0; }")

    def test_zero_length_array_rejected(self):
        with pytest.raises(TypeError_):
            check("int t[0]; int main() { return 0; }")

    def test_too_many_initializers(self):
        with pytest.raises(TypeError_):
            check("int t[2] = {1,2,3}; int main() { return 0; }")

    def test_intrinsic_call_is_allowed(self):
        info = check("int main() { return my_abs(0-3); }")
        assert "main" in info.functions


class TestSecretTaint:
    def test_declared_secret(self):
        info = check("secret int k; int main() { return 0; }")
        assert info.is_secret("k")

    def test_taint_through_assignment(self):
        info = check("secret int k; int x; int main() { x = k + 1; return x; }")
        assert info.is_secret("x")

    def test_taint_is_transitive(self):
        info = check(
            "secret int k; int a; int b;"
            "int main() { a = k; b = a * 2; return b; }"
        )
        assert info.is_secret("a")
        assert info.is_secret("b")

    def test_untainted_variable_stays_clean(self):
        info = check("secret int k; int x; int main() { x = 5; return x + k; }")
        assert not info.is_secret("x")

    def test_taint_through_array_read(self):
        info = check(
            "secret int key; int sbox[64]; int y;"
            "int main() { y = sbox[key]; return y; }"
        )
        assert info.is_secret("y") or info.is_secret("key")

    def test_taint_through_call_argument(self):
        info = check(
            "secret int k;"
            "int f(int a) { return a; }"
            "int main() { return f(k); }"
        )
        assert info.is_secret("a")

    def test_secret_local(self):
        info = check("int main() { secret int s; return s; }")
        assert info.is_secret("s")
