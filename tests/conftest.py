"""Shared fixtures for the test suite.

Tests run against *scaled-down* cache geometries (4-64 lines) so the whole
suite stays fast; the benchmarks under ``benchmarks/`` exercise the
paper-sized configurations.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.bench.programs import (
    figure7_source,
    figure11_source,
    motivating_example_source,
    quantl_client_source,
)
from repro.cache.config import CacheConfig
from repro.speculation.config import SpeculationConfig


@pytest.fixture(scope="session")
def small_cache() -> CacheConfig:
    """A 4-line cache, as used by the paper's Figure 7 / Figure 11 examples."""
    return CacheConfig(num_lines=4, line_size=64)


@pytest.fixture(scope="session")
def bench_cache() -> CacheConfig:
    """The scaled evaluation cache used by tests (64 lines of 64 bytes)."""
    return CacheConfig(num_lines=64, line_size=64)


@pytest.fixture(scope="session")
def paper_speculation() -> SpeculationConfig:
    return SpeculationConfig.paper_default()


@pytest.fixture(scope="session")
def motivating_program_small():
    """The Figure 2 program scaled to a 64-line cache (same structure)."""
    return compile_source(motivating_example_source(num_lines=64))


@pytest.fixture(scope="session")
def quantl_program():
    return compile_source(quantl_client_source())


@pytest.fixture(scope="session")
def figure7_program():
    return compile_source(figure7_source())


@pytest.fixture(scope="session")
def figure11_program():
    return compile_source(figure11_source())
