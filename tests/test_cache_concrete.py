"""Unit tests for the cache configuration and the concrete LRU simulator."""

import pytest

from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.ir.memory import MemoryBlock


def block(name: str, index: int = 0) -> MemoryBlock:
    return MemoryBlock(name, index)


class TestCacheConfig:
    def test_paper_default_geometry(self):
        config = CacheConfig.paper_default()
        assert config.num_lines == 512
        assert config.line_size == 64
        assert config.size_bytes == 32 * 1024
        assert config.associativity is None
        assert config.ways == 512
        assert config.num_sets == 1

    def test_set_associative_geometry(self):
        config = CacheConfig(num_lines=512, line_size=64, associativity=8)
        assert config.num_sets == 64
        assert config.ways == 8

    def test_small_helper(self):
        assert CacheConfig.small().num_lines == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_lines": 0},
            {"line_size": 0},
            {"associativity": 0},
            {"num_lines": 10, "associativity": 3},
            {"hit_latency": -1},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)


class TestFullyAssociativeLRU:
    def test_cold_miss_then_hit(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        assert cache.access(block("a")) is False
        assert cache.access(block("a")) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_lru_eviction_order(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=2))
        cache.access(block("a"))
        cache.access(block("b"))
        cache.access(block("c"))  # evicts a
        assert cache.probe(block("a")) is False
        assert cache.probe(block("b")) is True
        assert cache.probe(block("c")) is True

    def test_access_refreshes_lru_position(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=2))
        cache.access(block("a"))
        cache.access(block("b"))
        cache.access(block("a"))  # refresh a
        cache.access(block("c"))  # evicts b, not a
        assert cache.probe(block("a")) is True
        assert cache.probe(block("b")) is False

    def test_age_of_matches_lru_order(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        cache.access(block("a"))
        cache.access(block("b"))
        cache.access(block("c"))
        assert cache.age_of(block("c")) == 1
        assert cache.age_of(block("a")) == 3
        assert cache.age_of(block("zzz")) is None

    def test_probe_does_not_change_order(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=2))
        cache.access(block("a"))
        cache.access(block("b"))
        cache.probe(block("a"))
        cache.access(block("c"))
        assert cache.probe(block("a")) is False

    def test_occupancy_and_contents(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        for name in "abc":
            cache.access(block(name))
        assert cache.occupancy == 3
        assert set(b.symbol for b in cache.contents()) == {"a", "b", "c"}

    def test_different_blocks_of_same_symbol_are_distinct(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        cache.access(block("a", 0))
        assert cache.access(block("a", 1)) is False

    def test_speculative_accesses_counted_separately(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        cache.access(block("a"), speculative=True)
        cache.access(block("b"))
        assert cache.stats.speculative_misses == 1
        assert cache.stats.misses == 2
        assert cache.stats.observable_misses == 1

    def test_speculative_access_still_changes_cache(self):
        """The property that makes speculation visible: cache effects of
        speculated accesses are not rolled back."""
        cache = ConcreteCache(CacheConfig.small(num_lines=1))
        cache.access(block("a"))
        cache.access(block("b"), speculative=True)
        assert cache.probe(block("a")) is False

    def test_clear_and_reset_stats(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        cache.access(block("a"))
        cache.clear()
        assert cache.occupancy == 0
        assert cache.stats.accesses == 0

    def test_clone_is_independent(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        cache.access(block("a"))
        copy = cache.clone()
        copy.access(block("b"))
        assert cache.probe(block("b")) is False
        assert copy.probe(block("b")) is True
        assert cache.stats.accesses == 1

    def test_stats_merge(self):
        cache = ConcreteCache(CacheConfig.small(num_lines=4))
        cache.access(block("a"))
        other = ConcreteCache(CacheConfig.small(num_lines=4))
        other.access(block("a"))
        other.access(block("a"))
        merged = cache.stats.merge(other.stats)
        assert merged.accesses == 3
        assert merged.hits == 1


class TestSetAssociative:
    def test_blocks_map_to_sets(self):
        config = CacheConfig(num_lines=8, line_size=64, associativity=2)
        cache = ConcreteCache(config)
        for index in range(16):
            cache.access(block("a", index))
        # Every set holds at most `ways` blocks.
        assert cache.occupancy <= config.num_lines

    def test_direct_mapped_conflict(self):
        config = CacheConfig(num_lines=4, line_size=64, associativity=1)
        cache = ConcreteCache(config)
        first = block("x", 0)
        cache.access(first)
        # Find a block that maps to the same (single-way) set and evicts it.
        for index in range(1, 200):
            other = block("x", index)
            if cache._set_index(other) == cache._set_index(first):
                cache.access(other)
                assert cache.probe(first) is False
                return
        pytest.skip("no conflicting block found in probe range")
