"""Unit tests for the must-analysis abstract cache state (Appendix A)."""

import pytest

from repro.cache.abstract import AGE_INFINITY, CacheState
from repro.ir.memory import AccessKind, BlockAccess, MemoryBlock, MemoryRef


def block(name: str, index: int = 0) -> MemoryBlock:
    return MemoryBlock(name, index)


def concrete_access(name: str, index: int = 0, symbol: str | None = None) -> BlockAccess:
    b = block(name, index)
    return BlockAccess(
        kind=AccessKind.CONCRETE,
        symbol=symbol or name,
        blocks=(b,),
        is_write=False,
        ref=MemoryRef(symbol=symbol or name, index_const=index),
    )


def unknown_access(name: str, num_blocks: int) -> BlockAccess:
    blocks = tuple(block(name, i) for i in range(num_blocks))
    return BlockAccess(
        kind=AccessKind.UNKNOWN,
        symbol=name,
        blocks=blocks,
        is_write=False,
        ref=MemoryRef(symbol=name, index_const=None),
    )


def secret_access(name: str, num_blocks: int) -> BlockAccess:
    blocks = tuple(block(name, i) for i in range(num_blocks))
    return BlockAccess(
        kind=AccessKind.SECRET,
        symbol=name,
        blocks=blocks,
        is_write=False,
        ref=MemoryRef(symbol=name, index_const=None, index_secret=True),
    )


class TestTransfer:
    def test_first_access_gives_age_one(self):
        state = CacheState.empty(4).access_block(block("v"))
        assert state.age(block("v")) == 1
        assert state.must_hit(block("v"))

    def test_figure4_left_eviction(self):
        """Accessing an uncached block ages everyone; the oldest falls out."""
        state = CacheState.empty(4)
        for name in ["u4", "u3", "u2", "u1"]:
            state = state.access_block(block(name))
        # ages: u1=1 u2=2 u3=3 u4=4
        state = state.access_block(block("v"))
        assert state.age(block("v")) == 1
        assert state.age(block("u1")) == 2
        assert state.age(block("u4")) == AGE_INFINITY  # evicted

    def test_figure4_right_refresh(self):
        """Re-accessing a cached block only ages the blocks younger than it."""
        state = CacheState.empty(4)
        for name in ["w2", "w1", "v", "u"]:
            state = state.access_block(block(name))
        # ages: u=1 v=2 w1=3 w2=4
        state = state.access_block(block("v"))
        assert state.age(block("v")) == 1
        assert state.age(block("u")) == 2
        assert state.age(block("w1")) == 3
        assert state.age(block("w2")) == 4

    def test_access_on_bottom_stays_bottom(self):
        bottom = CacheState.bottom(4)
        assert bottom.access(concrete_access("v")).is_bottom

    def test_unknown_access_uses_placeholders_then_ages(self):
        state = CacheState.empty(8).access_block(block("x"))
        state = state.access(unknown_access("table", 2))
        # First unknown access inserts the first placeholder.
        placeholders = [b for b in state.cached_blocks() if b.is_placeholder]
        assert len(placeholders) == 1
        assert state.age(block("x")) == 2
        state = state.access(unknown_access("table", 2))
        placeholders = [b for b in state.cached_blocks() if b.is_placeholder]
        assert len(placeholders) == 2
        # With both placeholders resident, a further access falls back to
        # the conservative rule: everything ages, nothing is inserted.
        before = state
        state = state.access(unknown_access("table", 2))
        assert state.age(block("x")) == before.age(block("x")) + 1
        assert len([b for b in state.cached_blocks() if b.is_placeholder]) == 2

    def test_secret_access_is_fully_conservative(self):
        state = CacheState.empty(8)
        for i in range(3):
            state = state.access_block(block("sbox", i))
        state = state.access(secret_access("sbox", 3))
        # No placeholder inserted, every age grew by one.
        assert not any(b.is_placeholder for b in state.cached_blocks())
        assert state.age(block("sbox", 2)) == 2

    def test_eviction_at_capacity(self):
        state = CacheState.empty(2)
        state = state.access_block(block("a"))
        state = state.access_block(block("b"))
        state = state.access_block(block("c"))
        assert not state.must_hit(block("a"))
        assert len(state) == 2


class TestLattice:
    def test_join_is_pointwise_max(self):
        left = CacheState.from_ages(4, {block("x"): 1, block("z"): 3, block("k"): 4})
        right = CacheState.from_ages(4, {block("x"): 3, block("z"): 1, block("k"): 4, block("t"): 1})
        joined = left.join(right)
        assert joined.age(block("x")) == 3
        assert joined.age(block("z")) == 3
        assert joined.age(block("k")) == 4
        # t is only cached on one side, so it is not guaranteed after the join.
        assert not joined.must_hit(block("t"))

    def test_join_with_bottom_is_identity(self):
        state = CacheState.empty(4).access_block(block("a"))
        assert state.join(CacheState.bottom(4)) == state
        assert CacheState.bottom(4).join(state) == state

    def test_join_commutative(self):
        left = CacheState.from_ages(4, {block("a"): 1, block("b"): 2})
        right = CacheState.from_ages(4, {block("b"): 1, block("c"): 2})
        assert left.join(right) == right.join(left)

    def test_leq_reflexive_and_bottom_least(self):
        state = CacheState.empty(4).access_block(block("a"))
        assert state.leq(state)
        assert CacheState.bottom(4).leq(state)
        assert not state.leq(CacheState.bottom(4))

    def test_leq_orders_by_precision(self):
        precise = CacheState.from_ages(4, {block("a"): 1, block("b"): 2})
        coarse = CacheState.from_ages(4, {block("a"): 3})
        assert precise.leq(coarse)
        assert not coarse.leq(precise)

    def test_join_is_upper_bound(self):
        left = CacheState.from_ages(4, {block("a"): 1, block("b"): 2})
        right = CacheState.from_ages(4, {block("a"): 2, block("c"): 1})
        joined = left.join(right)
        assert left.leq(joined)
        assert right.leq(joined)

    def test_widen_pushes_growing_ages_out(self):
        previous = CacheState.from_ages(4, {block("a"): 1, block("b"): 2})
        current = CacheState.from_ages(4, {block("a"): 2, block("b"): 2})
        widened = current.widen(previous)
        assert not widened.must_hit(block("a"))
        assert widened.age(block("b")) == 2

    def test_widen_keeps_new_blocks(self):
        previous = CacheState.from_ages(4, {block("a"): 1})
        current = CacheState.from_ages(4, {block("a"): 1, block("b"): 3})
        widened = current.widen(previous)
        assert widened.age(block("b")) == 3

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheState.empty(4).join(CacheState.empty(8))

    def test_must_hit_access_requires_all_blocks(self):
        state = CacheState.from_ages(4, {block("t", 0): 1, block("t", 1): 2})
        access_all = unknown_access("t", 2)
        assert state.must_hit_access(access_all)
        assert not state.must_hit_access(unknown_access("t", 3))

    def test_from_ages_drops_overflow(self):
        state = CacheState.from_ages(2, {block("a"): 1, block("b"): 5})
        assert state.must_hit(block("a"))
        assert not state.must_hit(block("b"))

    def test_repr_and_describe(self):
        state = CacheState.from_ages(4, {block("a"): 1})
        assert "a" in repr(state)
        assert "a@1" in state.describe()
        assert CacheState.bottom(4).describe() == "⊥"
