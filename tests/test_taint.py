"""Secret-taint dataflow tests: lattice unit cases, blame-path shape, and
the soundness differential against the concrete speculative simulator."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_source
from repro.analysis.taint import analyze_taint, tainted_branch_blocks
from repro.cache.config import CacheConfig
from repro.speculation.predictor import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    OpposingPredictor,
)
from repro.speculation.simulator import SpeculativeSimulator

SECRET_INDEX = """\
char tab[256];
secret char k;

int main() {
  tab[k];
  return 0;
}
"""

MEMORY_FLOW = """\
secret char k;
char scratch[64];
char tab[256];
int x;

int main() {
  scratch[k] = 1;
  x = scratch[0];
  tab[x];
  return 0;
}
"""

CONTROL_DEPENDENCE = """\
secret char k;
char a[64];
char b[64];

int main() {
  if (k > 0) {
    a[0];
  } else {
    b[0];
  }
  return 0;
}
"""

NO_SECRETS = """\
char a[64];
char b[64];
int p;

int main() {
  if (p > 0) {
    a[0];
  } else {
    b[0];
  }
  return 0;
}
"""


def sites_touching(taint, symbol: str) -> set:
    """Tainted sites whose instruction references ``symbol``."""
    found = set()
    for block, index in taint.tainted_sites:
        instruction = taint.cfg.block(block).instructions[index]
        if any(ref.symbol == symbol for ref in instruction.memory_refs()):
            found.add((block, index))
    return found


class TestTaintLattice:
    def test_secret_indexed_access_is_tainted(self):
        taint = analyze_taint(compile_source(SECRET_INDEX))
        assert sites_touching(taint, "tab")

    def test_secret_object_blocks_are_seeded(self):
        taint = analyze_taint(compile_source(SECRET_INDEX))
        assert any(block.symbol == "k" for block in taint.tainted_blocks)

    def test_memory_flow_store_then_load(self):
        """A secret-indexed store taints the array; a load from it taints
        the loaded temp; an access indexed by that temp is tainted."""
        taint = analyze_taint(compile_source(MEMORY_FLOW))
        assert any(block.symbol == "scratch" for block in taint.tainted_blocks)
        assert sites_touching(taint, "scratch")
        assert sites_touching(taint, "tab")

    def test_control_dependence_taints_arm_accesses(self):
        taint = analyze_taint(compile_source(CONTROL_DEPENDENCE))
        assert sites_touching(taint, "a")
        assert sites_touching(taint, "b")
        assert taint.control_tainted

    def test_no_secrets_means_no_taint(self):
        taint = analyze_taint(compile_source(NO_SECRETS))
        assert taint.tainted_sites == frozenset()
        assert taint.tainted_blocks == frozenset()
        assert taint.control_tainted == frozenset()

    def test_taint_is_never_killed(self):
        """Overwriting a tainted array with a constant does not clear the
        block taint (the cache side channel does not forget)."""
        source = MEMORY_FLOW.replace(
            "  tab[x];\n", "  scratch[0] = 0;\n  tab[x];\n"
        )
        taint = analyze_taint(compile_source(source))
        assert any(block.symbol == "scratch" for block in taint.tainted_blocks)


class TestBlamePaths:
    def test_path_runs_source_to_access(self):
        taint = analyze_taint(compile_source(SECRET_INDEX))
        for block, index in sites_touching(taint, "tab"):
            path = taint.blame_path(block, index)
            assert path is not None
            assert path[0].kind == "source"
            assert path[-1].kind == "access"
            assert path[-1].block == block
            assert path[-1].instruction_index == index

    def test_memory_flow_path_passes_through_store(self):
        taint = analyze_taint(compile_source(MEMORY_FLOW))
        kinds_seen = set()
        for block, index in sites_touching(taint, "tab"):
            path = taint.blame_path(block, index)
            assert path is not None and path[0].kind == "source"
            kinds_seen.update(step.kind for step in path)
        assert "access" in kinds_seen

    def test_untainted_site_has_no_path(self):
        program = compile_source(NO_SECRETS)
        taint = analyze_taint(program)
        for name in program.cfg.reachable_blocks():
            for index, _ in enumerate(program.cfg.block(name).instructions):
                assert taint.blame_path(name, index) is None

    def test_steps_render_and_serialise(self):
        taint = analyze_taint(compile_source(SECRET_INDEX))
        (site,) = sites_touching(taint, "tab")
        path = taint.blame_path(*site)
        for step in path:
            assert step.kind in step.render()
            assert step.to_dict()["kind"] == step.kind


class TestTaintedBranchBlocks:
    def test_secret_branch_is_relevant(self):
        program = compile_source(CONTROL_DEPENDENCE)
        relevant = tainted_branch_blocks(program)
        assert relevant
        assert relevant <= frozenset(program.cfg.conditional_blocks())

    def test_public_program_has_no_relevant_branches(self):
        assert tainted_branch_blocks(compile_source(NO_SECRETS)) == frozenset()


# ----------------------------------------------------------------------
# Soundness against the concrete speculative simulator
# ----------------------------------------------------------------------
_ARRAYS = ["t0", "t1", "t2", "t3"]


@st.composite
def secret_programs(draw):
    """Small branchy programs mixing public and secret-derived accesses."""
    statements: list[str] = []
    num_statements = draw(st.integers(min_value=1, max_value=6))
    for _ in range(num_statements):
        kind = draw(
            st.sampled_from(
                ["touch", "secret_touch", "branch", "secret_branch", "store"]
            )
        )
        array = draw(st.sampled_from(_ARRAYS))
        other = draw(st.sampled_from(_ARRAYS))
        if kind == "touch":
            statements.append(f"{array}[0];")
        elif kind == "secret_touch":
            statements.append(f"{array}[k];")
        elif kind == "branch":
            cond_var = draw(st.sampled_from(["p", "q"]))
            statements.append(
                f"if ({cond_var} > {draw(st.integers(0, 2))}) "
                f"{{ {array}[0]; }} else {{ {other}[0]; }}"
            )
        elif kind == "secret_branch":
            statements.append(
                f"if (k > {draw(st.integers(0, 2))}) "
                f"{{ {array}[0]; }} else {{ {other}[0]; }}"
            )
        else:
            statements.append(f"{array}[{draw(st.integers(0, 3))}] = p;")
    body = "\n  ".join(statements)
    decls = "\n".join(f"char {name}[64];" for name in _ARRAYS)
    return f"""
{decls}
int p; int q;
secret char k;
int main() {{
  {body}
  return 0;
}}
"""


class TestSoundnessAgainstSimulator:
    """Every concrete access that touches secret-derived memory happens at
    a site the taint pass marked — across cache geometries, branch
    predictors (so mispredicted speculative accesses are covered too),
    and concrete secret values."""

    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        source=secret_programs(),
        p=st.integers(min_value=0, max_value=3),
        q=st.integers(min_value=0, max_value=3),
        k=st.integers(min_value=0, max_value=3),
        predictor=st.sampled_from(["opposing", "taken", "not_taken"]),
        num_lines=st.integers(min_value=2, max_value=4),
    )
    def test_concrete_secret_touches_are_tainted_sites(
        self, source, p, q, k, predictor, num_lines
    ):
        cache = CacheConfig(num_lines=num_lines, line_size=64)
        program = compile_source(source)
        taint = analyze_taint(program)
        secret_symbols = program.info.secret_symbols

        predictors = {
            "opposing": OpposingPredictor(),
            "taken": AlwaysTakenPredictor(),
            "not_taken": AlwaysNotTakenPredictor(),
        }
        simulation = SpeculativeSimulator(
            program, cache_config=cache, predictor=predictors[predictor]
        ).run({"p": p, "q": q, "k": k})

        for record in simulation.accesses:
            secret_data = (
                record.memory_block.symbol in secret_symbols
                or record.memory_block in taint.tainted_blocks
            )
            if secret_data:
                assert taint.is_tainted_site(
                    record.block_name, record.instruction_index
                ), (
                    f"concrete access to {record.memory_block} at "
                    f"({record.block_name}, {record.instruction_index}) "
                    f"(speculative={record.speculative}) touches secret-"
                    f"derived memory but the site is not tainted "
                    f"(inputs p={p}, q={q}, k={k})"
                )

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(source=secret_programs())
    def test_tainted_sites_are_real_sites(self, source):
        """No phantom sites: every tainted site names an instruction that
        actually references memory."""
        program = compile_source(source)
        taint = analyze_taint(program)
        for block, index in taint.tainted_sites:
            instruction = program.cfg.block(block).instructions[index]
            assert instruction.memory_refs()
