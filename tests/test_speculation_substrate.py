"""Unit tests for the speculation substrate: configuration, merge
strategies, VCFG construction, predictors, and the concrete simulator."""

import pytest

from repro import compile_source
from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy
from repro.speculation.predictor import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    OpposingPredictor,
    PerfectPredictor,
)
from repro.speculation.simulator import SpeculativeSimulator
from repro.speculation.vcfg import build_vcfg, compute_window


BRANCH_SOURCE = """
char a[64]; char b[64]; char c[64]; char p;
int main() {
  a[0];
  if (p == 0) { b[0]; } else { c[0]; }
  a[0];
  return 0;
}
"""


class TestSpeculationConfig:
    def test_paper_defaults(self):
        config = SpeculationConfig.paper_default()
        assert config.depth_miss == 200
        assert config.depth_hit == 20
        assert config.merge_strategy is MergeStrategy.JUST_IN_TIME

    def test_no_speculation_helper(self):
        config = SpeculationConfig.no_speculation()
        assert config.depth_miss == 0

    def test_invalid_depths_rejected(self):
        with pytest.raises(ConfigError):
            SpeculationConfig(depth_miss=-1)
        with pytest.raises(ConfigError):
            SpeculationConfig(depth_miss=10, depth_hit=20)

    def test_with_strategy_and_depths(self):
        config = SpeculationConfig.paper_default().with_strategy(MergeStrategy.NO_MERGE)
        assert config.merge_strategy is MergeStrategy.NO_MERGE
        shorter = config.with_depths(50)
        assert shorter.depth_miss == 50
        assert shorter.depth_hit <= 50


class TestMergeStrategy:
    def test_collapse_and_conversion_attributes(self):
        assert MergeStrategy.JUST_IN_TIME.collapse_rollback_points
        assert MergeStrategy.MERGE_AT_ROLLBACK.collapse_rollback_points
        assert not MergeStrategy.NO_MERGE.collapse_rollback_points
        assert not MergeStrategy.MERGE_AFTER_BRANCH.collapse_rollback_points
        assert MergeStrategy.JUST_IN_TIME.convert_at_merge_point
        assert not MergeStrategy.MERGE_AT_ROLLBACK.convert_at_merge_point

    def test_figure_labels(self):
        assert MergeStrategy.JUST_IN_TIME.figure_label == "Figure 6c"
        assert MergeStrategy.MERGE_AT_ROLLBACK.figure_label == "Figure 6d"


class TestVCFG:
    def test_two_scenarios_per_branch(self):
        program = compile_source(BRANCH_SOURCE)
        vcfg = build_vcfg(program.cfg, SpeculationConfig.paper_default())
        assert vcfg.num_speculative_branches == 1
        assert len(vcfg.scenarios) == 2
        directions = {s.mispredicted_taken for s in vcfg.scenarios}
        assert directions == {True, False}

    def test_scenario_targets_are_the_two_sides(self):
        program = compile_source(BRANCH_SOURCE)
        vcfg = build_vcfg(program.cfg, SpeculationConfig.paper_default())
        for scenario in vcfg.scenarios:
            assert scenario.wrong_target != scenario.correct_target

    def test_convergence_block_postdominates_branch(self):
        program = compile_source(BRANCH_SOURCE)
        vcfg = build_vcfg(program.cfg, SpeculationConfig.paper_default())
        for scenario in vcfg.scenarios:
            assert scenario.convergence_block is not None
            # The final a[0] access lives in the convergence block.
            symbols = {
                ref.symbol
                for ref in program.cfg.block(scenario.convergence_block).memory_refs()
            }
            assert "a" in symbols

    def test_windows_respect_depth(self):
        program = compile_source(BRANCH_SOURCE)
        config = SpeculationConfig(depth_miss=2, depth_hit=1)
        vcfg = build_vcfg(program.cfg, config)
        for scenario in vcfg.scenarios:
            assert scenario.window_miss.num_instructions <= 2
            assert scenario.window_hit.num_instructions <= 1

    def test_zero_depth_gives_empty_window(self):
        program = compile_source(BRANCH_SOURCE)
        window = compute_window(program.cfg, program.cfg.entry, 0)
        assert window.num_blocks == 0

    def test_window_grows_with_depth(self):
        program = compile_source(BRANCH_SOURCE)
        vcfg = build_vcfg(program.cfg, SpeculationConfig.paper_default())
        for scenario in vcfg.scenarios:
            assert scenario.window_miss.num_instructions >= scenario.window_hit.num_instructions

    def test_describe_mentions_scenarios(self):
        program = compile_source(BRANCH_SOURCE)
        vcfg = build_vcfg(program.cfg, SpeculationConfig.paper_default())
        text = vcfg.describe()
        assert "scenario" in text
        assert vcfg.scenario(0).color == 0
        with pytest.raises(KeyError):
            vcfg.scenario(99)

    def test_loop_branch_also_speculates(self, quantl_program):
        vcfg = build_vcfg(quantl_program.cfg, SpeculationConfig.paper_default())
        assert vcfg.num_speculative_branches >= 2


class TestPredictors:
    def test_static_predictors(self):
        assert AlwaysTakenPredictor().predict("b") is True
        assert AlwaysNotTakenPredictor().predict("b") is False

    def test_bimodal_learns(self):
        predictor = BimodalPredictor()
        assert predictor.predict("b") is True  # weakly taken initially
        for _ in range(3):
            predictor.update("b", False)
        assert predictor.predict("b") is False
        predictor.reset()
        assert predictor.predict("b") is True

    def test_bimodal_saturates(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update("b", True)
        assert predictor.counters["b"] == 3

    def test_opposing_predictor_always_wrong(self):
        predictor = OpposingPredictor()
        predictor.prime(True)
        assert predictor.predict("b") is False
        predictor.prime(False)
        assert predictor.predict("b") is True


class TestSimulator:
    def _program(self):
        return compile_source(BRANCH_SOURCE)

    def test_perfect_prediction_counts(self):
        program = self._program()
        result = SpeculativeSimulator(
            program, cache_config=CacheConfig.small(num_lines=4), predictor=PerfectPredictor()
        ).run()
        # a, p, b (taken side with p==0), a again (hit): 3 misses + 1 hit.
        assert result.stats.misses == 3
        assert result.stats.hits == 1
        assert result.mispredictions == 0

    def test_misprediction_pollutes_cache(self):
        program = self._program()
        result = SpeculativeSimulator(
            program,
            cache_config=CacheConfig.small(num_lines=3),
            predictor=OpposingPredictor(),
            excursion_length=2,
        ).run()
        assert result.mispredictions == 1
        assert result.speculative_excursions == 1
        # Both b and c were loaded; with only 3 lines the final a[0] misses.
        assert result.stats.misses == 5

    def test_speculative_writes_are_rolled_back(self):
        source = """
        int x; int p;
        int main() {
          x = 1;
          if (p == 0) { x = 2; } else { x = 3; }
          return x;
        }
        """
        program = compile_source(source)
        result = SpeculativeSimulator(
            program, cache_config=CacheConfig.small(num_lines=8), predictor=OpposingPredictor()
        ).run()
        # p defaults to 0, so the then-branch executes architecturally.
        assert result.return_value == 2

    def test_inputs_drive_branches(self):
        source = """
        int x; int p;
        int main() {
          if (p > 0) { x = 10; } else { x = 20; }
          return x;
        }
        """
        program = compile_source(source)
        simulator = SpeculativeSimulator(
            program, cache_config=CacheConfig.small(num_lines=8), predictor=PerfectPredictor()
        )
        assert simulator.run({"p": 5}).return_value == 10
        assert simulator.run({"p": 0}).return_value == 20

    def test_loop_execution_and_intrinsics(self):
        source = """
        int acc;
        int main() {
          reg int i;
          acc = 0;
          for (i = 0; i < 5; i++) { acc = acc + my_abs(0 - i); }
          return acc;
        }
        """
        program = compile_source(source, unroll=False)
        result = SpeculativeSimulator(
            program, cache_config=CacheConfig.small(num_lines=8), predictor=PerfectPredictor()
        ).run()
        assert result.return_value == 10

    def test_runaway_guard(self):
        source = "int main() { while (1) { } return 0; }"
        program = compile_source(source)
        from repro.errors import SimulationError

        simulator = SpeculativeSimulator(
            program,
            cache_config=CacheConfig.small(num_lines=4),
            predictor=PerfectPredictor(),
            max_steps=1000,
        )
        with pytest.raises(SimulationError):
            simulator.run()

    def test_access_records_capture_sites(self):
        program = self._program()
        result = SpeculativeSimulator(
            program, cache_config=CacheConfig.small(num_lines=4), predictor=PerfectPredictor()
        ).run()
        assert all(record.block_name in program.cfg.blocks for record in result.accesses)
        assert any(record.memory_block.symbol == "a" for record in result.accesses)
