"""Integration tests that replay the paper's own examples end to end.

Each test corresponds to a figure or table of the paper (see DESIGN.md's
experiment index):

* Figure 2/3 — the motivating example (scaled to a 64-line cache so the
  test stays fast; the full 512-line version is exercised by the E1
  benchmark).
* Figure 7    — Just-in-Time merging.
* Figure 8/9, Tables 1/2 — the quantl kernel.
* Figure 11/13 — the shadow-variable refinement.
"""

from repro import compile_source
from repro.analysis import analyze_baseline, analyze_speculative
from repro.bench.programs import motivating_example_source
from repro.cache.config import CacheConfig
from repro.ir.memory import MemoryBlock
from repro.speculation.merge import MergeStrategy
from repro.speculation.predictor import OpposingPredictor, PerfectPredictor
from repro.speculation.simulator import SpeculativeSimulator


class TestMotivatingExample:
    """Figure 2/3 at 64-line scale: ph has 62 lines, l1/l2/p one each."""

    CACHE = CacheConfig(num_lines=64, line_size=64)

    def test_baseline_proves_secret_access_hits(self, motivating_program_small):
        result = analyze_baseline(motivating_program_small, self.CACHE)
        secret = [c for c in result.normal_classifications() if c.secret_indexed]
        assert len(secret) == 1
        assert secret[0].must_hit
        assert not result.leak_detected

    def test_speculative_analysis_detects_the_leak(self, motivating_program_small):
        result = analyze_speculative(motivating_program_small, self.CACHE)
        secret = [c for c in result.normal_classifications() if c.secret_indexed]
        assert not secret[0].must_hit
        assert secret[0].secret_dependent
        assert result.leak_detected

    def test_concrete_counts_match_figure3_shape(self, motivating_program_small):
        perfect = SpeculativeSimulator(
            motivating_program_small, cache_config=self.CACHE, predictor=PerfectPredictor()
        ).run()
        mispredicted = SpeculativeSimulator(
            motivating_program_small,
            cache_config=self.CACHE,
            predictor=OpposingPredictor(),
            excursion_length=2,
        ).run()
        # Correct prediction: every ph line plus p and one branch line miss,
        # the final ph[k] hits.
        assert perfect.stats.hits == 1
        assert perfect.stats.misses == 64
        # Misprediction: two extra misses, one of them masked (speculative).
        assert mispredicted.stats.misses == perfect.stats.misses + 2
        assert mispredicted.stats.observable_misses == perfect.stats.misses + 1
        assert mispredicted.stats.hits == 0

    def test_full_size_source_shape(self):
        source = motivating_example_source(num_lines=512)
        assert "char ph[32640]" in source
        assert "secret reg char k" in source


class TestFigure7JustInTime:
    CACHE = CacheConfig.small(num_lines=4)

    def test_nonspeculative_keeps_a_cached(self, figure7_program):
        result = analyze_baseline(figure7_program, self.CACHE)
        final_a = [c for c in result.normal_classifications() if c.ref.symbol == "a"][-1]
        assert final_a.must_hit

    def test_speculative_jit_reports_eviction_of_a(self, figure7_program):
        result = analyze_speculative(
            figure7_program, self.CACHE, merge_strategy=MergeStrategy.JUST_IN_TIME
        )
        final_a = [c for c in result.normal_classifications() if c.ref.symbol == "a"][-1]
        assert not final_a.must_hit

    def test_b_and_c_survive_at_merge_under_jit(self, figure7_program):
        """Figure 7's bottom-right state: only b and c are guaranteed cached
        at basic block 4 under the optimal (JIT) strategy.

        The figure's illustration assumes the speculative window covers only
        the mispredicted branch body (not the code after the merge point),
        so the test uses a correspondingly small depth bound.
        """
        from repro.speculation.config import SpeculationConfig

        result = analyze_speculative(
            figure7_program,
            self.CACHE,
            speculation=SpeculationConfig(
                depth_miss=2, depth_hit=2, merge_strategy=MergeStrategy.JUST_IN_TIME
            ),
        )
        merge_block = [
            name
            for name in figure7_program.cfg.reachable_blocks()
            if any(r.symbol == "a" for r in figure7_program.cfg.block(name).memory_refs())
        ][-1]
        state = result.entry_states[merge_block]
        assert state.must_hit(MemoryBlock("b", 0))
        assert state.must_hit(MemoryBlock("c", 0))
        assert not state.must_hit(MemoryBlock("a", 0))

    def test_deeper_speculation_is_even_more_conservative(self, figure7_program):
        """With the full 200-instruction window the speculative excursion may
        also run past the merge point before rolling back, which can evict
        ``b`` as well — strictly more conservative than the short window."""
        result = analyze_speculative(
            figure7_program, self.CACHE, merge_strategy=MergeStrategy.JUST_IN_TIME
        )
        merge_block = [
            name
            for name in figure7_program.cfg.reachable_blocks()
            if any(r.symbol == "a" for r in figure7_program.cfg.block(name).memory_refs())
        ][-1]
        state = result.entry_states[merge_block]
        assert not state.must_hit(MemoryBlock("a", 0))
        assert state.must_hit(MemoryBlock("c", 0))


class TestQuantl:
    """The Figure 8/9 kernel: speculation touches both quantisation tables."""

    CACHE = CacheConfig(num_lines=16, line_size=64)

    def test_speculative_analysis_is_more_pessimistic(self, quantl_program):
        base = analyze_baseline(quantl_program, self.CACHE)
        spec = analyze_speculative(quantl_program, self.CACHE)
        assert spec.miss_count >= base.miss_count
        assert spec.num_speculative_branches >= 2

    def test_speculative_window_covers_both_tables(self, quantl_program):
        spec = analyze_speculative(quantl_program, self.CACHE)
        speculated_symbols = {c.ref.symbol for c in spec.speculative_classifications()}
        assert "quant26bt_pos" in speculated_symbols
        assert "quant26bt_neg" in speculated_symbols

    def test_placeholder_lines_used_for_decis_levl(self, quantl_program):
        """Table 1's decis_lev[1*] / [2*] convention: inside the search loop
        the unknown-index accesses are tracked as symbolic placeholder lines
        of ``decis_levl`` (the loop-header join with the not-yet-executed
        entry path removes them again, as a must analysis has to)."""
        base = analyze_baseline(quantl_program, self.CACHE)
        placeholder_symbols = set()
        for block, state in base.entry_states.items():
            if getattr(state, "is_bottom", False):
                continue
            placeholder_symbols |= {
                b.symbol for b in state.cached_blocks() if b.is_placeholder
            }
        assert "decis_levl" in placeholder_symbols

    def test_fixed_point_reached_quickly(self, quantl_program):
        base = analyze_baseline(quantl_program, self.CACHE)
        assert base.iterations < 200


class TestFigure11Shadow:
    CACHE = CacheConfig.small(num_lines=4)

    def test_shadow_state_keeps_a_must_hit(self, figure11_program):
        result = analyze_baseline(figure11_program, self.CACHE, use_shadow_state=True)
        final_a = [c for c in result.normal_classifications() if c.ref.symbol == "a"][-1]
        assert final_a.must_hit

    def test_plain_state_loses_a(self, figure11_program):
        result = analyze_baseline(figure11_program, self.CACHE, use_shadow_state=False)
        final_a = [c for c in result.normal_classifications() if c.ref.symbol == "a"][-1]
        assert not final_a.must_hit

    def test_refinement_extends_to_speculative_analysis(self, figure11_program):
        refined = analyze_speculative(figure11_program, self.CACHE, use_shadow_state=True)
        plain = analyze_speculative(figure11_program, self.CACHE, use_shadow_state=False)
        assert refined.hit_count >= plain.hit_count
