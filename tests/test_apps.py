"""Tests for the WCET and side-channel applications and their reports."""

from repro import compile_source
from repro.apps.report import format_comparison_table, format_leak_table, format_merge_table
from repro.apps.sidechannel import compare_leaks, detect_leaks
from repro.apps.wcet import compare_wcet, estimate_wcet
from repro.bench.client import build_client_source
from repro.bench.crypto import crypto_kernel
from repro.bench.programs import motivating_example_source
from repro.cache.config import CacheConfig

CACHE = CacheConfig(num_lines=64, line_size=64)


class TestWcetApplication:
    def test_estimate_contains_counts_and_cycles(self, motivating_program_small):
        estimate = estimate_wcet(motivating_program_small, CACHE, speculative=False)
        assert estimate.access_sites == estimate.must_hits + estimate.misses
        expected = (
            estimate.must_hits * CACHE.hit_latency + estimate.misses * CACHE.miss_penalty
        )
        assert estimate.estimated_cycles == expected

    def test_comparison_shows_underestimation(self, motivating_program_small):
        comparison = compare_wcet(motivating_program_small, CACHE)
        assert comparison.additional_misses >= 1
        assert comparison.underestimated
        assert comparison.speculative.misses >= comparison.non_speculative.misses

    def test_comparison_on_branchless_program(self):
        program = compile_source("char a[64]; int main() { a[0]; a[0]; return 0; }")
        comparison = compare_wcet(program, CacheConfig.small(num_lines=4))
        assert comparison.additional_misses == 0
        assert not comparison.underestimated

    def test_slowdown_is_positive(self, motivating_program_small):
        comparison = compare_wcet(motivating_program_small, CACHE)
        assert comparison.slowdown > 0


class TestSideChannelApplication:
    def test_motivating_example_leak_only_under_speculation(self, motivating_program_small):
        comparison = compare_leaks(motivating_program_small, CACHE, buffer_bytes=0)
        assert comparison.leak_only_under_speculation
        assert not comparison.non_speculative.leak_detected
        assert comparison.speculative.leak_detected
        assert comparison.speculative.leak_sites
        assert comparison.speculative.leak_sites[0].symbol == "ph"

    def test_no_secret_accesses_means_no_leak(self):
        program = compile_source("char a[64]; int p; int main() { if (p) { a[0]; } return 0; }")
        report = detect_leaks(program, CacheConfig.small(num_lines=4))
        assert report.secret_sites == 0
        assert not report.leak_detected

    def test_client_harness_for_leaky_kernel(self):
        kernel = crypto_kernel("hash", 64, 64)
        source = build_client_source(kernel, buffer_bytes=2752)
        program = compile_source(source)
        comparison = compare_leaks(program, CACHE, buffer_bytes=2752, name="hash")
        assert comparison.leak_only_under_speculation

    def test_client_harness_for_branchless_kernel(self):
        kernel = crypto_kernel("salsa", 64, 64)
        source = build_client_source(kernel, buffer_bytes=2752)
        program = compile_source(source)
        comparison = compare_leaks(program, CACHE, buffer_bytes=2752, name="salsa")
        assert not comparison.leak_only_under_speculation
        assert not comparison.speculative.leak_detected


class TestReports:
    def test_wcet_table_formatting(self, motivating_program_small):
        comparison = compare_wcet(motivating_program_small, CACHE, name="fig2")
        text = format_comparison_table([comparison])
        assert "fig2" in text
        assert "NS-#Miss" in text
        assert "#SpMiss" in text

    def test_merge_table_formatting(self, motivating_program_small):
        comparison = compare_wcet(motivating_program_small, CACHE, name="fig2")
        text = format_merge_table([("fig2", comparison, comparison)])
        assert "JIT-#Miss" in text

    def test_leak_table_formatting(self, motivating_program_small):
        comparison = compare_leaks(motivating_program_small, CACHE, buffer_bytes=0, name="fig2")
        text = format_leak_table([comparison])
        assert "fig2" in text
        assert "Yes" in text and "No" in text
