"""Thread-safety hammer tests for the caching tiers.

The service layer hits the in-memory :class:`LRUCache` and the on-disk
:class:`ResultStore` from scheduler workers, connection threads and
batch executors simultaneously; these tests lock in that neither tier
corrupts state or miscounts under contention.
"""

from __future__ import annotations

import hashlib
import threading

from repro.engine.cache import LRUCache
from repro.engine.engine import AnalysisEngine
from repro.engine.request import AnalysisRequest
from repro.service.store import ResultStore

THREADS = 8
OPS_PER_THREAD = 400


def _run_threads(worker) -> list[Exception]:
    errors: list[Exception] = []

    def wrapped(i: int) -> None:
        try:
            worker(i)
        except Exception as error:  # pragma: no cover - failure detail
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads), "hammer deadlocked"
    return errors


class TestLRUCacheUnderContention:
    def test_mixed_get_put_hammer(self):
        cache = LRUCache(maxsize=32)
        keyspace = 96  # 3x maxsize: constant eviction pressure

        def worker(seed: int) -> None:
            for i in range(OPS_PER_THREAD):
                key = (seed * 31 + i * 7) % keyspace
                if i % 3 == 0:
                    cache.put(key, (key, seed))
                else:
                    value = cache.get(key)
                    if value is not None:
                        assert value[0] == key, "value attached to wrong key"

        assert _run_threads(worker) == []
        assert len(cache) <= 32
        gets = THREADS * OPS_PER_THREAD - THREADS * len(
            range(0, OPS_PER_THREAD, 3)
        )
        assert cache.stats.lookups == gets, "every get must be counted exactly once"

    def test_eviction_accounting_balances(self):
        cache = LRUCache(maxsize=16)
        computes = [0] * THREADS

        def worker(seed: int) -> None:
            for i in range(OPS_PER_THREAD):
                key = (seed + i) % 64

                def compute(key=key, seed=seed):
                    computes[seed] += 1
                    return (key, "computed")

                value = cache.get_or_compute(key, compute)
                assert value[0] == key

        assert _run_threads(worker) == []
        stats = cache.stats
        # Every miss triggered exactly one compute (and vice versa), and
        # every resident or evicted entry came from one of those puts.
        assert stats.misses == sum(computes)
        assert len(cache) + stats.evictions <= stats.misses
        assert stats.hits + stats.misses == THREADS * OPS_PER_THREAD
        assert len(cache) <= 16

    def test_clear_during_traffic_is_safe(self):
        cache = LRUCache(maxsize=64)
        stop = threading.Event()

        def mutator(seed: int) -> None:
            if seed == 0:
                while not stop.is_set():
                    cache.clear()
            else:
                for i in range(OPS_PER_THREAD):
                    cache.put((seed, i % 50), i)
                    cache.get((seed, (i + 1) % 50))
                stop.set()

        assert _run_threads(mutator) == []
        assert len(cache) <= 64


class TestResultStoreUnderContention:
    def _key(self, n: int) -> str:
        return hashlib.sha256(f"key-{n}".encode()).hexdigest()

    def test_disjoint_writers_and_readers(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        keyspace = 48

        def worker(seed: int) -> None:
            for i in range(80):
                n = (seed * 13 + i) % keyspace
                key = self._key(n)
                store.put(key, {"n": n, "writer": seed})
                value = store.get(key)
                # Another thread may have republished the key, but any
                # observed value must be complete and self-consistent.
                assert value is not None and value["n"] == n

        assert _run_threads(worker) == []
        assert store.stats.corrupt_evicted == 0, "atomic writes must never tear"
        assert len(store) == keyspace
        for n in range(keyspace):
            assert store.get(self._key(n))["n"] == n

    def test_single_key_write_race_stays_atomic(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = self._key(0)
        payload = {"blob": "x" * 4096}

        def worker(seed: int) -> None:
            for _ in range(60):
                store.put(key, dict(payload, writer=seed))
                value = store.get(key)
                assert value is not None and value["blob"] == payload["blob"]

        assert _run_threads(worker) == []
        assert store.stats.corrupt_evicted == 0
        assert len(store) == 1

    def test_engine_with_store_under_concurrent_clients(self, tmp_path):
        """Many threads resolving overlapping requests through one
        engine + store never disagree on verdicts."""
        from repro.service.wire import result_fingerprint

        engine = AnalysisEngine(result_store=ResultStore(tmp_path / "store"))
        sources = [
            f"char a{i}[{64 * (i + 1)}]; int main() {{ a{i}[0]; a{i}[1]; return 0; }}"
            for i in range(4)
        ]
        fingerprints: dict[int, set] = {i: set() for i in range(4)}
        lock = threading.Lock()

        def worker(seed: int) -> None:
            for i in range(6):
                which = (seed + i) % 4
                result = engine.run(AnalysisRequest.speculative(sources[which]))
                with lock:
                    fingerprints[which].add(result_fingerprint(result))

        assert _run_threads(worker) == []
        assert all(len(prints) == 1 for prints in fingerprints.values())
        stats = engine.stats
        assert stats.store.corrupt_evicted == 0
        assert stats.results.hits + stats.store.hits > 0, "repeat traffic must hit a tier"
