"""The on-disk result store: robustness, layout, and the engine's
second cache tier."""

from __future__ import annotations

import hashlib
import pickle

import pytest

from repro.engine.engine import AnalysisEngine, execute_request
from repro.engine.request import AnalysisRequest
from repro.service.store import STORE_FORMAT_VERSION, ResultStore, StoreError
from repro.service.wire import result_fingerprint

SOURCE = "char a[64]; int p; int main() { if (p > 0) { a[0]; } a[0]; return 0; }"


def key_of(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


# ----------------------------------------------------------------------
# Basic behaviour and layout
# ----------------------------------------------------------------------
class TestStoreBasics:
    def test_roundtrip(self, store):
        key = key_of("one")
        store.put(key, {"answer": 42})
        assert store.get(key) == {"answer": 42}
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_miss_returns_default(self, store):
        assert store.get(key_of("absent"), default="nope") == "nope"
        assert store.stats.misses == 1

    def test_sharded_layout(self, store):
        key = key_of("sharded")
        store.put(key, 1)
        path = store.path_for(key)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.res"
        assert path.exists()

    def test_rejects_non_hex_keys(self, store):
        with pytest.raises(StoreError):
            store.put("../../../etc/passwd", 1)
        with pytest.raises(StoreError):
            store.get("ZZ" * 32)

    def test_contains_len_keys_clear(self, store):
        keys = sorted(key_of(str(i)) for i in range(5))
        for i, key in enumerate(keys):
            store.put(key, i)
        assert all(key in store for key in keys)
        assert len(store) == 5
        assert sorted(store.keys()) == keys
        assert store.size_bytes() > 0
        assert store.clear() == 5
        assert len(store) == 0

    def test_overwrite_same_key(self, store):
        key = key_of("dup")
        store.put(key, "first")
        store.put(key, "second")
        assert store.get(key) == "second"
        assert len(store) == 1

    def test_no_temp_files_left_behind(self, store):
        for i in range(10):
            store.put(key_of(str(i)), list(range(100)))
        leftovers = [p for p in store.root.rglob("*.tmp")]
        assert leftovers == []


# ----------------------------------------------------------------------
# Robustness: corruption, truncation, versioning
# ----------------------------------------------------------------------
class TestStoreRobustness:
    def test_truncated_entry_is_evicted_and_recomputed(self, store):
        key = key_of("trunc")
        store.put(key, {"payload": "x" * 500})
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.get(key) is None
        assert not path.exists(), "corrupt entry must be deleted"
        assert store.stats.corrupt_evicted == 1
        # A rewrite fully heals the slot.
        store.put(key, "fresh")
        assert store.get(key) == "fresh"

    def test_garbage_entry_is_evicted(self, store):
        key = key_of("garbage")
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x00\xffnot a store entry at all")
        assert store.get(key) is None
        assert store.stats.corrupt_evicted == 1
        assert not path.exists()

    def test_checksum_mismatch_is_evicted(self, store):
        key = key_of("bitflip")
        store.put(key, {"v": 1})
        path = store.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get(key) is None
        assert store.stats.corrupt_evicted == 1

    def test_unpicklable_payload_with_valid_checksum_is_evicted(self, store):
        key = key_of("badpickle")
        payload = b"this is not a pickle"
        blob = store._header(hashlib.sha256(payload).hexdigest()) + payload
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        assert store.get(key) is None
        assert store.stats.corrupt_evicted == 1

    def test_version_bump_invalidates_old_entries(self, tmp_path):
        old = ResultStore(tmp_path / "s", version=STORE_FORMAT_VERSION)
        key = key_of("versioned")
        old.put(key, "v1 payload")
        new = ResultStore(tmp_path / "s", version=STORE_FORMAT_VERSION + 1)
        assert new.get(key) is None
        assert new.stats.version_evicted == 1
        assert not new.path_for(key).exists(), "stale-format entry must be evicted"
        # The new version reclaims the slot with its own format.
        new.put(key, "v2 payload")
        assert new.get(key) == "v2 payload"

    def test_eviction_counts_as_miss(self, store):
        key = key_of("misscount")
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"junk")
        store.get(key)
        assert store.stats.misses == 1 and store.stats.hits == 0

    def test_entries_survive_reopen(self, tmp_path):
        first = ResultStore(tmp_path / "s")
        key = key_of("durable")
        first.put(key, [1, 2, 3])
        second = ResultStore(tmp_path / "s")
        assert second.get(key) == [1, 2, 3]


# ----------------------------------------------------------------------
# The engine's second tier
# ----------------------------------------------------------------------
class TestEngineSecondTier:
    def test_fresh_result_written_through(self, store):
        engine = AnalysisEngine(result_store=store)
        request = AnalysisRequest.speculative(SOURCE)
        engine.run(request)
        assert store.stats.writes == 1
        assert request.result_key() in store

    def test_restarted_engine_serves_from_store(self, tmp_path):
        request = AnalysisRequest.speculative(SOURCE)
        first = AnalysisEngine(result_store=ResultStore(tmp_path / "s"))
        original = first.run(request)

        # A brand-new engine (fresh process simulation: empty LRUs) over
        # the same directory answers without compiling or re-analysing.
        second = AnalysisEngine(result_store=ResultStore(tmp_path / "s"))
        replay = second.run(request)
        assert replay.from_cache
        assert result_fingerprint(replay) == result_fingerprint(original)
        stats = second.stats
        assert stats.store.hits == 1
        assert stats.compile.lookups == 0, "store hit must skip the front end"

    def test_tier1_vs_tier2_hit_accounting(self, store):
        engine = AnalysisEngine(result_store=store)
        request = AnalysisRequest.baseline(SOURCE)
        engine.run(request)  # miss in both tiers, computed
        engine.run(request)  # tier-1 hit
        stats = engine.stats
        assert stats.results.hits == 1
        assert stats.store.lookups == 1 and stats.store.misses == 1

        cold = AnalysisEngine(result_store=store)
        cold.run(request)  # tier-1 miss, tier-2 hit
        cold.run(request)  # tier-1 hit (promoted)
        stats = cold.stats
        assert stats.results.misses == 1 and stats.results.hits == 1
        assert stats.store.hits == 1

    def test_store_hit_promoted_to_lru(self, tmp_path):
        request = AnalysisRequest.baseline(SOURCE)
        AnalysisEngine(result_store=ResultStore(tmp_path / "s")).run(request)
        engine = AnalysisEngine(result_store=ResultStore(tmp_path / "s"))
        engine.run(request)
        engine.run(request)
        assert engine.stats.store.lookups == 1, "second lookup must stay in tier 1"

    def test_batch_path_writes_through(self, store):
        engine = AnalysisEngine(result_store=store)
        requests = [
            AnalysisRequest.baseline(SOURCE),
            AnalysisRequest.speculative(SOURCE),
        ]
        engine.run_batch(requests)
        assert store.stats.writes == 2
        warm = AnalysisEngine(result_store=store)
        results = warm.run_batch(requests)
        assert all(result.from_cache for result in results)

    def test_corrupt_store_entry_recomputed_transparently(self, tmp_path):
        request = AnalysisRequest.speculative(SOURCE)
        store = ResultStore(tmp_path / "s")
        AnalysisEngine(result_store=store).run(request)
        path = store.path_for(request.result_key())
        path.write_bytes(b"corrupted beyond recognition")

        engine = AnalysisEngine(result_store=ResultStore(tmp_path / "s"))
        result = engine.run(request)
        assert not result.from_cache, "corrupt entry must be recomputed"
        assert result_fingerprint(result) == result_fingerprint(execute_request(request))
        # The recomputation healed the entry on disk.
        reread = ResultStore(tmp_path / "s").get(request.result_key())
        assert reread is not None

    def test_detached_engine_unaffected(self):
        engine = AnalysisEngine()
        result = engine.run(AnalysisRequest.baseline(SOURCE))
        assert engine.stats.store is None
        assert not result.from_cache

    def test_stored_payload_is_picklable_result(self, store):
        request = AnalysisRequest.speculative(SOURCE)
        AnalysisEngine(result_store=store).run(request)
        raw = store.path_for(request.result_key()).read_bytes()
        payload = raw.split(b"\n", 2)[2]
        restored = pickle.loads(payload)
        assert result_fingerprint(restored) == result_fingerprint(execute_request(request))
