"""Tests for the high-level compile_source driver."""

import pytest

from repro import CompiledProgram, compile_source
from repro.errors import ReproError


class TestCompileSource:
    def test_returns_compiled_program(self):
        program = compile_source("int main() { return 0; }")
        assert isinstance(program, CompiledProgram)
        assert program.entry_function == "main"

    def test_entry_defaults_to_main(self):
        program = compile_source("int f() { return 1; } int main() { return f(); }")
        assert program.cfg.name == "main"

    def test_single_function_is_entry(self):
        program = compile_source("int quantl(int el, int detl) { return el; }")
        assert program.cfg.name == "quantl"

    def test_explicit_entry(self):
        program = compile_source(
            "int f() { return 1; } int g() { return 2; }", entry="g"
        )
        assert program.cfg.name == "g"

    def test_unknown_entry_rejected(self):
        with pytest.raises(ReproError):
            compile_source("int main() { return 0; }", entry="nope")

    def test_ambiguous_entry_rejected(self):
        with pytest.raises(ReproError):
            compile_source("int f() { return 1; } int g() { return 2; }")

    def test_no_functions_rejected(self):
        with pytest.raises(ReproError):
            compile_source("int x;")

    def test_unroll_toggle(self):
        source = "char a[256]; int main() { reg int i; for (i = 0; i < 4; i++) { a[i*64]; } return 0; }"
        unrolled = compile_source(source, unroll=True)
        rolled = compile_source(source, unroll=False)
        assert unrolled.unroll_stats.loops_unrolled == 1
        assert rolled.unroll_stats.loops_unrolled == 0
        assert len(rolled.cfg.blocks) > len(unrolled.cfg.blocks)

    def test_inline_toggle(self):
        source = "int f(int x) { return x; } int main() { return f(1); }"
        inlined = compile_source(source, inline=True)
        not_inlined = compile_source(source, inline=False)
        assert len(inlined.cfg.blocks) >= len(not_inlined.cfg.blocks)

    def test_line_size_propagates_to_layout(self):
        program = compile_source("char a[128]; int main() { a[0]; return 0; }", line_size=32)
        assert program.layout.line_size == 32
        assert program.layout.object("a").num_blocks == 4

    def test_cfgs_contains_all_functions(self):
        program = compile_source("int f() { return 1; } int main() { return f(); }")
        assert set(program.cfgs) == {"f", "main"}
