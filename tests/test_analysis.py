"""Tests for the baseline and speculative cache analyses (Algorithms 1-3)."""

import pytest

from repro import compile_source
from repro.analysis import analyze_baseline, analyze_speculative
from repro.cache.config import CacheConfig
from repro.ir.memory import MemoryBlock
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy


DIAMOND = """
char a[64]; char b[64]; char c[64]; char p;
int main() {
  a[0];
  if (p == 0) { b[0]; } else { c[0]; }
  a[0];
  return 0;
}
"""


def final_access(result, symbol):
    """The classification of the last normal access to ``symbol``."""
    matches = [c for c in result.normal_classifications() if c.ref.symbol == symbol]
    return matches[-1]


class TestBaseline:
    def test_straightline_rereads_are_hits(self):
        program = compile_source("char a[64]; char b[64]; int main() { a[0]; b[0]; a[0]; b[0]; return 0; }")
        result = analyze_baseline(program, CacheConfig.small(num_lines=4))
        assert result.miss_count == 2
        assert result.hit_count == 2

    def test_branch_join_is_intersection(self):
        program = compile_source(DIAMOND)
        result = analyze_baseline(program, CacheConfig.small(num_lines=4))
        # b and c are each loaded on only one path: neither is a must hit
        # afterwards, but a (loaded before the branch) still is.
        assert final_access(result, "a").must_hit

    def test_capacity_eviction_detected(self):
        program = compile_source(
            "char a[64]; char b[64]; char c[64]; char d[64]; char e[64];"
            "int main() { a[0]; b[0]; c[0]; d[0]; e[0]; a[0]; return 0; }"
        )
        result = analyze_baseline(program, CacheConfig.small(num_lines=4))
        assert not final_access(result, "a").must_hit

    def test_entry_states_exposed_per_block(self):
        program = compile_source(DIAMOND)
        result = analyze_baseline(program, CacheConfig.small(num_lines=4))
        assert program.cfg.entry in result.entry_states
        assert result.iterations >= len(program.cfg.blocks)

    def test_shadow_state_toggle(self, figure11_program):
        small = CacheConfig.small(num_lines=4)
        refined = analyze_baseline(figure11_program, small, use_shadow_state=True)
        plain = analyze_baseline(figure11_program, small, use_shadow_state=False)
        # The refined analysis proves at least as many hits (Figure 13 vs 11).
        assert refined.hit_count >= plain.hit_count

    def test_summary_text(self):
        program = compile_source(DIAMOND)
        result = analyze_baseline(program, CacheConfig.small(num_lines=4))
        text = result.summary()
        assert "non-speculative" in text
        assert "accesses" in text


class TestSpeculative:
    def test_speculation_never_claims_more_hits(self):
        program = compile_source(DIAMOND)
        cache = CacheConfig.small(num_lines=4)
        base = analyze_baseline(program, cache)
        spec = analyze_speculative(program, cache)
        assert spec.miss_count >= base.miss_count
        assert spec.must_hit_sites() <= base.must_hit_sites()

    def test_diamond_reread_lost_under_speculation(self):
        """The Figure 7 effect: with a 3-line cache the speculative load of
        the other branch evicts ``a`` before the re-read."""
        program = compile_source(DIAMOND)
        cache = CacheConfig.small(num_lines=3)
        base = analyze_baseline(program, cache)
        spec = analyze_speculative(program, cache)
        assert final_access(base, "a").must_hit
        assert not final_access(spec, "a").must_hit

    def test_zero_depth_equals_baseline(self):
        program = compile_source(DIAMOND)
        cache = CacheConfig.small(num_lines=4)
        base = analyze_baseline(program, cache)
        spec = analyze_speculative(
            program, cache, speculation=SpeculationConfig.no_speculation()
        )
        assert spec.miss_count == base.miss_count
        assert spec.must_hit_sites() == base.must_hit_sites()

    def test_speculative_classifications_reported(self):
        program = compile_source(DIAMOND)
        spec = analyze_speculative(program, CacheConfig.small(num_lines=4))
        assert spec.speculative_classifications()
        assert all(c.scenario_color is not None for c in spec.speculative_classifications())

    def test_branch_and_edge_counts(self):
        program = compile_source(DIAMOND)
        spec = analyze_speculative(program, CacheConfig.small(num_lines=4))
        assert spec.num_speculative_branches == 1
        assert spec.num_virtual_edges >= 2
        assert 0 < spec.num_virtual_edges_active <= spec.num_virtual_edges

    def test_program_without_branches_is_unaffected(self):
        program = compile_source("char a[64]; int main() { a[0]; a[0]; return 0; }")
        cache = CacheConfig.small(num_lines=4)
        base = analyze_baseline(program, cache)
        spec = analyze_speculative(program, cache)
        assert spec.miss_count == base.miss_count
        assert spec.num_speculative_branches == 0

    def test_nested_branches_handled(self):
        source = """
        char a[64]; char b[64]; char c[64]; char d[64]; int p; int q;
        int main() {
          a[0];
          if (p > 0) {
            if (q > 0) { b[0]; } else { c[0]; }
          } else {
            d[0];
          }
          a[0];
          return 0;
        }
        """
        program = compile_source(source)
        spec = analyze_speculative(program, CacheConfig.small(num_lines=8))
        assert spec.num_speculative_branches == 2
        assert len({c.scenario_color for c in spec.speculative_classifications()}) >= 2

    def test_loops_with_speculation_terminate(self, quantl_program):
        result = analyze_speculative(quantl_program, CacheConfig.small(num_lines=16))
        assert result.iterations > 0
        assert result.access_count > 0


class TestMergeStrategies:
    @pytest.mark.parametrize("strategy", list(MergeStrategy))
    def test_all_strategies_sound_relative_to_baseline(self, strategy):
        program = compile_source(DIAMOND)
        cache = CacheConfig.small(num_lines=3)
        base = analyze_baseline(program, cache)
        spec = analyze_speculative(program, cache, merge_strategy=strategy)
        assert spec.must_hit_sites() <= base.must_hit_sites()
        assert not final_access(spec, "a").must_hit

    def test_jit_at_least_as_precise_as_rollback_on_figure7(self, figure7_program):
        cache = CacheConfig.small(num_lines=4)
        jit = analyze_speculative(
            figure7_program, cache, merge_strategy=MergeStrategy.JUST_IN_TIME
        )
        rollback = analyze_speculative(
            figure7_program, cache, merge_strategy=MergeStrategy.MERGE_AT_ROLLBACK
        )
        assert jit.hit_count >= rollback.hit_count

    def test_strategies_agree_on_branchless_code(self):
        program = compile_source("char a[64]; int main() { a[0]; a[0]; return 0; }")
        cache = CacheConfig.small(num_lines=4)
        results = {
            strategy: analyze_speculative(program, cache, merge_strategy=strategy).miss_count
            for strategy in MergeStrategy
        }
        assert len(set(results.values())) == 1


class TestDynamicDepthBounding:
    SOURCE = """
    char a[64]; char b[64]; char c[64]; reg int p;
    int main() {
      a[0];
      if (p == 0) { b[0]; } else { c[0]; }
      a[0];
      return 0;
    }
    """

    def test_register_condition_uses_short_window(self):
        program = compile_source(self.SOURCE)
        cache = CacheConfig.small(num_lines=8)
        bounded = analyze_speculative(
            program,
            cache,
            speculation=SpeculationConfig(depth_miss=200, depth_hit=0),
            dynamic_depth_bounding=True,
        )
        unbounded = analyze_speculative(
            program,
            cache,
            speculation=SpeculationConfig(depth_miss=200, depth_hit=0),
            dynamic_depth_bounding=False,
        )
        # With bh = 0 and a register-resolved condition the bounded run
        # removes every virtual edge of that branch.
        assert bounded.num_virtual_edges_active < unbounded.num_virtual_edges_active

    def test_bounding_never_reduces_detected_misses_unsoundly(self):
        """Bounding may only *increase* precision (more must hits), and the
        result must stay sound relative to the concrete simulator — checked
        separately; here we check monotonicity vs the unbounded run."""
        program = compile_source(self.SOURCE)
        cache = CacheConfig.small(num_lines=8)
        bounded = analyze_speculative(program, cache, dynamic_depth_bounding=True)
        unbounded = analyze_speculative(program, cache, dynamic_depth_bounding=False)
        assert bounded.hit_count >= unbounded.hit_count

    def test_memory_condition_keeps_long_window(self):
        program = compile_source(DIAMOND)  # condition loads p from memory
        cache = CacheConfig.small(num_lines=8)
        result = analyze_speculative(
            program,
            cache,
            speculation=SpeculationConfig(depth_miss=200, depth_hit=0),
            dynamic_depth_bounding=True,
        )
        # p is not a must hit when the branch is first reached, so the long
        # window stays active and virtual edges remain.
        assert result.num_virtual_edges_active > 0
