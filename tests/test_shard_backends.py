"""Differential tests for the shard-backend axis: serial, threaded and
process-pool sharded runs must be bit-identical (abstract states,
iteration counts, Table-7 verdicts) across merge strategies, geometries
and replacement policies; plus backend resolution, the broken-pool
fallback, wire/plumbing round trips and scheduler fan-out accounting."""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.analysis import multicolor
from repro.analysis.multicolor import (
    SpeculativeCacheAnalysis,
    resolve_shard_backend,
)
from repro.bench.client import build_client_source
from repro.bench.crypto import crypto_kernel
from repro.bench.programs import branchy_kernel_source, wcet_benchmark_source
from repro.cache.config import CacheConfig
from repro.engine.engine import AnalysisEngine
from repro.engine.pool import WorkerPoolError
from repro.engine.request import SHARD_BACKENDS, AnalysisRequest
from repro.service.scheduler import JobScheduler
from repro.service.wire import (
    WireError,
    request_from_wire,
    request_to_wire,
    result_fingerprint,
)
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy

#: The paper's geometry axes, scaled down: fully associative LRU and
#: set-associative FIFO.
GEOMETRIES = [
    CacheConfig(num_lines=4, line_size=64),
    CacheConfig(num_lines=8, line_size=64, associativity=2, policy="fifo"),
]

SHARDS = 4


@pytest.fixture(scope="module")
def branchy_program():
    return compile_source(branchy_kernel_source(8))


def run_backend(program, backend, *, cache_config, speculation=None, shards=SHARDS):
    analysis = SpeculativeCacheAnalysis(
        program,
        cache_config=cache_config,
        speculation=speculation or SpeculationConfig(depth_miss=64, depth_hit=16),
        scenario_shards=shards,
        shard_backend=backend,
    )
    result = analysis.run()
    assert analysis.shard_backend_used == backend
    return result


def assert_bit_identical(reference, other):
    assert other.entry_states == reference.entry_states
    assert other.iterations == reference.iterations
    assert other.widenings == reference.widenings
    assert other.classifications == reference.classifications


class TestDifferentialBackends:
    @pytest.mark.parametrize("geometry", range(len(GEOMETRIES)))
    def test_backends_bit_identical_across_geometries(
        self, branchy_program, geometry
    ):
        config = GEOMETRIES[geometry]
        serial = run_backend(branchy_program, "serial", cache_config=config)
        for backend in ("threads", "processes"):
            assert_bit_identical(
                serial, run_backend(branchy_program, backend, cache_config=config)
            )

    @pytest.mark.parametrize("strategy", list(MergeStrategy))
    def test_backends_bit_identical_across_merge_strategies(
        self, branchy_program, strategy
    ):
        speculation = SpeculationConfig(
            depth_miss=64, depth_hit=16, merge_strategy=strategy
        )
        serial = run_backend(
            branchy_program, "serial",
            cache_config=GEOMETRIES[0], speculation=speculation,
        )
        assert_bit_identical(
            serial,
            run_backend(
                branchy_program, "processes",
                cache_config=GEOMETRIES[0], speculation=speculation,
            ),
        )

    def test_backends_agree_on_table7_kernel(self, bench_cache):
        """The Table-7 harness shape (crypto kernel + client loop): every
        backend must report the same leak verdicts."""
        program = compile_source(
            build_client_source(crypto_kernel("hash", 64, 64), 2880)
        )
        serial = run_backend(program, "serial", cache_config=bench_cache, shards=3)
        processes = run_backend(
            program, "processes", cache_config=bench_cache, shards=3
        )
        assert_bit_identical(serial, processes)
        assert processes.leak_detected == serial.leak_detected

    def test_backends_agree_under_widening_pressure(self, bench_cache):
        """On a widening-active kernel the sharded engines compute the
        exact unwidened lfp regardless of backend."""
        program = compile_source(wcet_benchmark_source("adpcm"))
        serial = run_backend(program, "serial", cache_config=bench_cache, shards=2)
        assert serial.widenings == 0
        assert_bit_identical(
            serial,
            run_backend(program, "processes", cache_config=bench_cache, shards=2),
        )

    def test_unsharded_run_ignores_backend(self, branchy_program):
        analysis = SpeculativeCacheAnalysis(
            branchy_program,
            cache_config=GEOMETRIES[0],
            scenario_shards=1,
            shard_backend="processes",
        )
        analysis.run()
        # No sharded solve ran, so no backend was exercised.
        assert analysis.shard_backend_used is None


class TestBackendResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
        assert resolve_shard_backend(None) == "serial"

    def test_explicit_backend_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "processes")
        assert resolve_shard_backend("threads") == "threads"

    def test_legacy_thread_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
        assert resolve_shard_backend(None, shard_threads=True) == "threads"
        # ...but an explicit backend still outranks it.
        assert resolve_shard_backend("serial", shard_threads=True) == "serial"

    def test_environment_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "processes")
        assert resolve_shard_backend(None) == "processes"

    @pytest.mark.parametrize("bogus", ["fork", "PROCESSES", ""])
    def test_invalid_backend_rejected(self, bogus, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
        with pytest.raises(ValueError):
            resolve_shard_backend(bogus)

    def test_constructor_rejects_invalid_backend(self, branchy_program):
        with pytest.raises(ValueError):
            SpeculativeCacheAnalysis(
                branchy_program,
                cache_config=GEOMETRIES[0],
                shard_backend="bogus",
            )

    def test_constructor_resolves_environment(self, branchy_program, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "threads")
        analysis = SpeculativeCacheAnalysis(
            branchy_program, cache_config=GEOMETRIES[0]
        )
        assert analysis.shard_backend == "threads"
        assert analysis.shard_threads


class TestBrokenPoolFallback:
    def test_falls_back_to_serial_and_stays_correct(
        self, branchy_program, monkeypatch
    ):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise WorkerPoolError("no workers today")

        serial = run_backend(branchy_program, "serial", cache_config=GEOMETRIES[0])
        monkeypatch.setattr(multicolor, "PersistentWorkerPool", ExplodingPool)
        analysis = SpeculativeCacheAnalysis(
            branchy_program,
            cache_config=GEOMETRIES[0],
            speculation=SpeculationConfig(depth_miss=64, depth_hit=16),
            scenario_shards=SHARDS,
            shard_backend="processes",
        )
        fallback = analysis.run()
        assert analysis.shard_backend_used == "serial"
        assert_bit_identical(serial, fallback)


class TestRequestPlumbing:
    SOURCE = "char a[64]; int p; int main() { if (p > 0) { a[0]; } a[0]; return 0; }"

    def test_backend_never_affects_result_key(self):
        keys = {
            AnalysisRequest.speculative(
                self.SOURCE, scenario_shards=4, shard_backend=backend
            ).result_key()
            for backend in (None,) + SHARD_BACKENDS
        }
        assert len(keys) == 1

    def test_backend_never_affects_equality(self):
        plain = AnalysisRequest.speculative(self.SOURCE, scenario_shards=4)
        forced = AnalysisRequest.speculative(
            self.SOURCE, scenario_shards=4, shard_backend="processes"
        )
        assert plain == forced

    def test_wire_round_trip_preserves_backend(self):
        request = AnalysisRequest.speculative(
            self.SOURCE, scenario_shards=4, shard_backend="processes"
        )
        restored = request_from_wire(request_to_wire(request))
        assert restored.shard_backend == "processes"
        assert restored == request

    def test_legacy_payload_defaults_to_unset_backend(self):
        payload = request_to_wire(AnalysisRequest.speculative(self.SOURCE))
        del payload["shard_backend"]
        restored = request_from_wire(payload)
        assert restored.shard_backend is None

    def test_wire_rejects_unknown_backend(self):
        payload = request_to_wire(AnalysisRequest.speculative(self.SOURCE))
        payload["shard_backend"] = "fork"
        with pytest.raises(WireError, match="shard backend"):
            request_from_wire(payload)


class TestSchedulerFanOut:
    SOURCE = TestRequestPlumbing.SOURCE

    def test_fans_out_predicate(self):
        fan = AnalysisRequest.speculative(
            self.SOURCE, scenario_shards=4, shard_backend="processes"
        )
        assert JobScheduler._fans_out(fan)
        assert not JobScheduler._fans_out(
            AnalysisRequest.speculative(
                self.SOURCE, scenario_shards=4, shard_backend="serial"
            )
        )
        assert not JobScheduler._fans_out(
            AnalysisRequest.speculative(self.SOURCE, shard_backend="processes")
        )
        assert not JobScheduler._fans_out(
            AnalysisRequest.baseline(
                self.SOURCE, scenario_shards=4, shard_backend="processes"
            )
        )

    def test_sharded_fanout_jobs_complete_and_are_counted(self):
        with JobScheduler(AnalysisEngine(), max_workers=2, batch_size=4) as sched:
            fan = sched.submit(
                AnalysisRequest.speculative(
                    self.SOURCE, scenario_shards=2, shard_backend="processes"
                )
            )
            plain = sched.submit(AnalysisRequest.speculative(self.SOURCE))
            fan_result = fan.result(timeout=120)
            plain.result(timeout=120)
            stats = sched.stats
            assert stats.sharded_jobs == 1
            assert stats.fanout_dispatches == 1
        # The backend is an execution hint: the fan-out job's result is
        # bit-identical to running the same sharded request serially,
        # directly on an engine.
        direct = AnalysisEngine().run(
            AnalysisRequest.speculative(
                self.SOURCE, scenario_shards=2, shard_backend="serial"
            )
        )
        assert result_fingerprint(fan_result) == result_fingerprint(direct)
