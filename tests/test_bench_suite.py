"""Tests for the benchmark-suite substrate (programs, crypto kernels, the
client harness, workload sweeps, and the table drivers on small subsets)."""

import pytest

from repro import compile_source
from repro.bench.client import build_client_source
from repro.bench.crypto import CRYPTO_BENCHMARKS, crypto_kernel
from repro.bench.programs import (
    WCET_BENCHMARKS,
    figure7_source,
    figure11_source,
    motivating_example_source,
    quantl_client_source,
    wcet_benchmark_source,
)
from repro.bench.tables import (
    BENCH_CACHE,
    TABLE7_BUFFER_BYTES,
    generate_table5,
    generate_table6,
    generate_table7,
    run_depth_ablation,
    run_motivating_example,
)
from repro.bench.workloads import (
    find_distinguishing_buffer,
    sweep_buffer_sizes,
    sweep_cache_sizes,
    sweep_speculation_depths,
)
from repro.cache.config import CacheConfig


class TestBenchmarkPrograms:
    @pytest.mark.parametrize("name", sorted(WCET_BENCHMARKS))
    def test_wcet_benchmark_compiles(self, name):
        program = compile_source(wcet_benchmark_source(name, 64, 64))
        program.cfg.validate()
        assert program.cfg.all_memory_refs()

    def test_unknown_wcet_benchmark(self):
        with pytest.raises(KeyError):
            wcet_benchmark_source("nope")

    @pytest.mark.parametrize("name", sorted(CRYPTO_BENCHMARKS))
    def test_crypto_kernel_compiles_in_client(self, name):
        kernel = crypto_kernel(name, 64, 64)
        program = compile_source(build_client_source(kernel, buffer_bytes=1024))
        program.cfg.validate()
        secret_refs = [r for r in program.cfg.all_memory_refs() if r.index_secret]
        assert secret_refs, "the client harness must contain the secret-indexed access"

    def test_unknown_crypto_kernel(self):
        with pytest.raises(KeyError):
            crypto_kernel("nope")

    def test_paper_example_sources_compile(self):
        for source in (
            motivating_example_source(num_lines=16),
            quantl_client_source(),
            figure7_source(),
            figure11_source(),
        ):
            compile_source(source).cfg.validate()

    def test_client_buffer_zero_has_no_buffer_array(self):
        kernel = crypto_kernel("des", 64, 64)
        source = build_client_source(kernel, buffer_bytes=0)
        assert "in_buf" not in source

    def test_client_buffer_rounded_to_lines(self):
        kernel = crypto_kernel("hash", 64, 64)
        source = build_client_source(kernel, buffer_bytes=100)
        assert "char in_buf[64];" in source


class TestTableDrivers:
    def test_motivating_example_scaled(self):
        result = run_motivating_example(num_lines=64)
        assert result.non_speculative_must_hit
        assert not result.speculative_must_hit
        assert result.speculative_leak and not result.non_speculative_leak
        assert result.concrete_misses_misprediction > result.concrete_misses_correct_prediction

    def test_table5_subset_shape(self):
        rows = generate_table5(names=["susan", "vga"])
        by_name = {row.name: row for row in rows}
        assert by_name["susan"].speculative.misses > by_name["susan"].non_speculative.misses
        assert by_name["vga"].speculative.misses == by_name["vga"].non_speculative.misses
        for row in rows:
            assert row.speculative.misses >= row.non_speculative.misses

    def test_table6_subset_shape(self):
        rows = generate_table6(names=["stc"])
        (name, rollback, jit) = rows[0]
        assert name == "stc"
        assert jit.speculative.misses <= rollback.speculative.misses

    def test_table7_subset_shape(self):
        rows = generate_table7(names=["encoder", "aes"])
        by_name = {row.name: row for row in rows}
        assert by_name["encoder"].leak_only_under_speculation
        assert not by_name["aes"].speculative.leak_detected
        assert not by_name["aes"].non_speculative.leak_detected

    def test_table7_buffer_constants_cover_all_benchmarks(self):
        assert set(TABLE7_BUFFER_BYTES) == set(CRYPTO_BENCHMARKS)

    def test_depth_ablation_subset(self):
        rows = run_depth_ablation(names=["vga", "jcphuff"])
        for row in rows:
            assert row.edges_with_bounding <= row.edges_without_bounding
            # The optimisation may only improve precision.
            assert row.misses_with_bounding <= row.misses_without_bounding


class TestWorkloads:
    def test_buffer_sweep_points(self):
        points = list(
            sweep_buffer_sizes(
                "encoder", BENCH_CACHE, buffer_sizes=[2880, 0]
            )
        )
        assert [p.buffer_bytes for p in points] == [2880, 0]
        assert points[0].distinguishes

    def test_find_distinguishing_buffer_returns_smallest(self):
        point = find_distinguishing_buffer(
            "encoder", BENCH_CACHE, buffer_sizes=[2944, 2880]
        )
        assert point is not None
        assert point.buffer_bytes == 2880

    def test_find_distinguishing_buffer_none_for_branchless_kernel(self):
        point = find_distinguishing_buffer(
            "salsa", BENCH_CACHE, buffer_sizes=[2880, 2944]
        )
        assert point is None

    def test_depth_sweep_monotone_in_misses(self, motivating_program_small):
        points = sweep_speculation_depths(
            motivating_program_small,
            depths=[0, 4, 200],
            cache_config=CacheConfig(num_lines=64, line_size=64),
        )
        misses = [p.estimate.misses for p in points]
        assert misses[0] <= misses[-1]

    def test_cache_size_sweep(self):
        points = sweep_cache_sizes(
            figure7_source(), cache_lines=[3, 4, 8], line_size=64
        )
        assert [p.num_lines for p in points] == [3, 4, 8]
        for point in points:
            assert point.speculative_misses >= point.non_speculative_misses
