"""Unit tests for CFG structure, dominators, loops, unrolling, inlining,
memory layout, and the IR printer."""

import pytest

from repro import compile_source
from repro.errors import CFGError, ConfigError
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.dominators import (
    compute_dominators,
    compute_postdominators,
    immediate_dominators,
    immediate_postdominator,
)
from repro.ir.instructions import CondBranch, Const, Jump, MemoryRef, Return, Temp
from repro.ir.loops import find_natural_loops, infer_trip_count, loop_of_block
from repro.ir.lowering import lower_program
from repro.ir.memory import AccessKind, MemoryBlock, MemoryLayout, placeholder_blocks
from repro.ir.printer import format_cfg, format_instruction, format_memory_summary
from repro.ir.unroll import unroll_fixed_loops
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program


def build_diamond() -> CFG:
    """entry -> (left | right) -> join -> exit(return)."""
    cfg = CFG(name="diamond")
    entry = cfg.add_block(BasicBlock("entry"))
    left = cfg.add_block(BasicBlock("left"))
    right = cfg.add_block(BasicBlock("right"))
    join = cfg.add_block(BasicBlock("join"))
    entry.terminator = CondBranch(cond=Temp("c"), true_target="left", false_target="right")
    left.terminator = Jump(target="join")
    right.terminator = Jump(target="join")
    join.terminator = Return(value=Const(0))
    return cfg


def build_loop() -> CFG:
    """entry -> header -> body -> header, header -> exit."""
    cfg = CFG(name="loop")
    entry = cfg.add_block(BasicBlock("entry"))
    header = cfg.add_block(BasicBlock("header"))
    body = cfg.add_block(BasicBlock("body"))
    exit_block = cfg.add_block(BasicBlock("exit"))
    entry.terminator = Jump(target="header")
    header.terminator = CondBranch(cond=Temp("c"), true_target="body", false_target="exit")
    body.terminator = Jump(target="header")
    exit_block.terminator = Return(value=None)
    return cfg


class TestCFG:
    def test_successors_and_predecessors(self):
        cfg = build_diamond()
        assert set(cfg.successors("entry")) == {"left", "right"}
        assert set(cfg.predecessors("join")) == {"left", "right"}
        assert cfg.predecessors("entry") == []

    def test_edges_are_labelled(self):
        cfg = build_diamond()
        labels = {(e.source, e.target): e.taken for e in cfg.edges()}
        assert labels[("entry", "left")] is True
        assert labels[("entry", "right")] is False
        assert labels[("left", "join")] is None

    def test_exit_and_conditional_blocks(self):
        cfg = build_diamond()
        assert cfg.exit_blocks() == ["join"]
        assert cfg.conditional_blocks() == ["entry"]

    def test_reverse_postorder_starts_at_entry(self):
        cfg = build_diamond()
        rpo = cfg.reverse_postorder()
        assert rpo[0] == "entry"
        assert rpo.index("join") > rpo.index("left")
        assert rpo.index("join") > rpo.index("right")

    def test_reachable_blocks_excludes_orphans(self):
        cfg = build_diamond()
        orphan = cfg.add_block(BasicBlock("orphan"))
        orphan.terminator = Return(value=None)
        assert "orphan" not in cfg.reachable_blocks()

    def test_duplicate_block_rejected(self):
        cfg = build_diamond()
        with pytest.raises(CFGError):
            cfg.add_block(BasicBlock("entry"))

    def test_unknown_block_rejected(self):
        cfg = build_diamond()
        with pytest.raises(CFGError):
            cfg.block("nope")

    def test_validate_catches_dangling_target(self):
        cfg = build_diamond()
        cfg.block("left").terminator = Jump(target="missing")
        with pytest.raises(CFGError):
            cfg.validate()

    def test_validate_catches_missing_terminator(self):
        cfg = build_diamond()
        cfg.block("left").terminator = None
        with pytest.raises(CFGError):
            cfg.validate()

    def test_instruction_count_includes_terminators(self):
        cfg = build_diamond()
        assert cfg.instruction_count == 4


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_diamond()
        dom = compute_dominators(cfg)
        for block in cfg.reachable_blocks():
            assert "entry" in dom[block]

    def test_branch_sides_do_not_dominate_join(self):
        dom = compute_dominators(build_diamond())
        assert "left" not in dom["join"]
        assert "right" not in dom["join"]

    def test_immediate_dominators(self):
        idom = immediate_dominators(build_diamond())
        assert idom["join"] == "entry"
        assert idom["left"] == "entry"
        assert idom["entry"] is None

    def test_postdominators_join_postdominates_sides(self):
        pdom = compute_postdominators(build_diamond())
        assert "join" in pdom["left"]
        assert "join" in pdom["entry"]

    def test_immediate_postdominator_of_branch_is_join(self):
        assert immediate_postdominator(build_diamond(), "entry") == "join"

    def test_loop_header_postdominates_body(self):
        cfg = build_loop()
        pdom = compute_postdominators(cfg)
        assert "header" in pdom["body"]


class TestLoops:
    def test_natural_loop_detection(self):
        cfg = build_loop()
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "header"
        assert loop.blocks == {"header", "body"}
        assert loop.exits(cfg) == ["exit"]

    def test_no_loops_in_diamond(self):
        assert find_natural_loops(build_diamond()) == []

    def test_loop_of_block(self):
        cfg = build_loop()
        loops = find_natural_loops(cfg)
        assert loop_of_block(loops, "body") is loops[0]
        assert loop_of_block(loops, "exit") is None

    def test_trip_count_of_counter_loop(self):
        source = (
            "int a[64]; int s; int main() { reg int i; reg int x; x = 0;"
            "  for (i = 0; i < 10; i++) { s = s + 1; }"
            "  return x; }"
        )
        program, _ = unroll_fixed_loops(parse_program(source), max_iterations=0)
        cfgs = lower_program(check_program(program))
        cfg = cfgs["main"]
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        count = infer_trip_count(cfg, loops[0])
        assert count in (10, None)  # pattern-match is best effort

    def test_quantl_loop_trip_count_is_upper_bound(self):
        from repro.bench.programs import quantl_client_source

        cfgs = lower_program(check_program(parse_program(quantl_client_source())))
        cfg = cfgs["quantl"]
        loops = find_natural_loops(cfg)
        assert loops
        # The loop has a data-dependent break; the counter-based inference
        # reports the header bound (an upper bound on the iterations).
        assert infer_trip_count(cfg, loops[0]) == 30


class TestUnrolling:
    def test_fixed_loop_fully_unrolled(self):
        source = "char a[256]; int main() { reg int i; for (i = 0; i < 4; i++) { a[i * 64]; } return 0; }"
        program, stats = unroll_fixed_loops(parse_program(source))
        assert stats.loops_unrolled == 1
        assert stats.iterations_emitted == 4
        cfgs = lower_program(check_program(program))
        refs = [r for r in cfgs["main"].all_memory_refs() if r.symbol == "a"]
        assert sorted(r.index_const for r in refs) == [0, 64, 128, 192]

    def test_loop_with_break_not_unrolled(self):
        source = (
            "int a[64]; int w; int main() { int i;"
            "  for (i = 0; i < 30; i++) { if (a[i] > w) break; } return i; }"
        )
        program, stats = unroll_fixed_loops(parse_program(source))
        assert stats.loops_unrolled == 0

    def test_data_dependent_bound_not_unrolled(self):
        source = "int n; int s; int main() { int i; for (i = 0; i < n; i++) { s = s + 1; } return s; }"
        _, stats = unroll_fixed_loops(parse_program(source))
        assert stats.loops_unrolled == 0

    def test_too_many_iterations_not_unrolled(self):
        source = "int s; int main() { int i; for (i = 0; i < 100; i++) { s = s + 1; } return s; }"
        _, stats = unroll_fixed_loops(parse_program(source), max_iterations=10)
        assert stats.loops_unrolled == 0

    def test_nested_fixed_loops_unrolled(self):
        source = (
            "char a[1024]; int main() { reg int i; reg int j;"
            "  for (i = 0; i < 2; i++) { for (j = 0; j < 2; j++) { a[i * 128 + j * 64]; } }"
            "  return 0; }"
        )
        program, stats = unroll_fixed_loops(parse_program(source))
        assert stats.loops_unrolled == 2  # the inner loop is unrolled once, then the outer
        cfgs = lower_program(check_program(program))
        refs = [r.index_const for r in cfgs["main"].all_memory_refs() if r.symbol == "a"]
        assert sorted(refs) == [0, 64, 128, 192]

    def test_downward_counting_loop(self):
        source = "char a[256]; int main() { reg int i; for (i = 192; i >= 0; i -= 64) { a[i]; } return 0; }"
        program, stats = unroll_fixed_loops(parse_program(source))
        assert stats.iterations_emitted == 4

    def test_counter_value_after_loop_usable_as_index(self):
        source = (
            "char a[256]; int main() { reg int i;"
            "  for (i = 0; i < 3; i++) { a[0]; }"
            "  a[i * 64]; return 0; }"
        )
        program, _ = unroll_fixed_loops(parse_program(source))
        cfgs = lower_program(check_program(program))
        refs = [r.index_const for r in cfgs["main"].all_memory_refs() if r.symbol == "a"]
        # The post-loop access resolves because the counter is left at its
        # final value (3) by the unrolling pass.
        assert 192 in refs


class TestInlining:
    def test_call_is_inlined_into_main(self):
        source = (
            "int t[64];"
            "int helper(int x) { return t[0] + x; }"
            "int main() { return helper(2); }"
        )
        program = compile_source(source)
        assert program.cfg.name == "main"
        symbols = program.cfg.referenced_symbols()
        assert "t" in symbols
        assert not any(
            getattr(i, "callee", None) == "helper"
            for block in program.cfg.blocks.values()
            for i in block.instructions
        )

    def test_argument_passing_touches_memory_parameters(self):
        source = (
            "int kernel(int el) { return el + 1; }"
            "int main() { return kernel(5); }"
        )
        program = compile_source(source)
        writes = [r for r in program.cfg.all_memory_refs() if r.symbol == "el" and r.is_write]
        assert writes

    def test_multiple_call_sites_each_inlined(self):
        source = (
            "int f(int x) { return x * 2; }"
            "int main() { return f(1) + f(2); }"
        )
        program = compile_source(source)
        program.cfg.validate()
        assert len(program.cfg.blocks) >= 5

    def test_recursion_detected(self):
        source = "int f(int x) { return f(x - 1); } int main() { return f(3); }"
        from repro.errors import LoweringError

        with pytest.raises(LoweringError):
            compile_source(source)


class TestMemoryLayout:
    def _layout(self, source: str, line_size: int = 64) -> MemoryLayout:
        info = check_program(parse_program(source))
        return MemoryLayout.from_program(info, line_size=line_size)

    def test_scalar_occupies_one_block(self):
        layout = self._layout("int x; int main() { return x; }")
        assert layout.object("x").num_blocks == 1

    def test_array_block_count_rounds_up(self):
        layout = self._layout("char a[130]; int main() { return 0; }")
        assert layout.object("a").num_blocks == 3

    def test_reg_symbols_have_no_layout(self):
        layout = self._layout("reg int i; int main() { return i; }")
        assert not layout.has_symbol("i")

    def test_total_blocks(self):
        layout = self._layout("char a[128]; int x; int main() { return x; }")
        assert layout.total_blocks == 3

    def test_concrete_resolution(self):
        layout = self._layout("int a[64]; int main() { return 0; }")
        ref = MemoryRef(symbol="a", index_const=17, element_size=4)
        access = layout.resolve(ref)
        assert access.kind is AccessKind.CONCRETE
        assert access.concrete_block == MemoryBlock("a", 1)

    def test_unknown_resolution_covers_all_blocks(self):
        layout = self._layout("int a[64]; int main() { return 0; }")
        ref = MemoryRef(symbol="a", index_const=None, element_size=4)
        access = layout.resolve(ref)
        assert access.kind is AccessKind.UNKNOWN
        assert len(access.blocks) == 4

    def test_secret_resolution(self):
        layout = self._layout("int a[64]; int main() { return 0; }")
        ref = MemoryRef(symbol="a", index_const=None, index_secret=True, element_size=4)
        assert layout.resolve(ref).kind is AccessKind.SECRET

    def test_out_of_range_index_clamped(self):
        layout = self._layout("int a[16]; int main() { return 0; }")
        ref = MemoryRef(symbol="a", index_const=400, element_size=4)
        access = layout.resolve(ref)
        assert access.concrete_block.index == 0  # single-block array

    def test_unknown_symbol_raises(self):
        layout = self._layout("int x; int main() { return x; }")
        with pytest.raises(ConfigError):
            layout.object("nope")

    def test_invalid_line_size(self):
        info = check_program(parse_program("int main() { return 0; }"))
        with pytest.raises(ConfigError):
            MemoryLayout.from_program(info, line_size=0)

    def test_placeholder_blocks_are_distinct_and_flagged(self):
        placeholders = placeholder_blocks("a", 3)
        assert len(set(placeholders)) == 3
        assert all(p.is_placeholder for p in placeholders)
        assert not MemoryBlock("a", 0).is_placeholder

    def test_placeholder_str_uses_paper_notation(self):
        assert str(MemoryBlock("decis_levl", -1)) == "decis_levl[1*]"

    def test_describe_mentions_every_object(self):
        layout = self._layout("char a[128]; int x; int main() { return x; }")
        text = layout.describe()
        assert "a" in text and "x" in text


class TestPrinter:
    def test_format_cfg_contains_blocks_and_instructions(self, quantl_program):
        text = format_cfg(quantl_program.cfgs["quantl"])
        assert "function quantl" in text
        assert "decis_levl" in text
        assert "br " in text

    def test_format_instruction(self):
        assert "bb1" in format_instruction(Jump(target="bb1"))
        assert format_instruction(Return(value=None)) == "ret"
        assert "load x" in str(MemoryRef(symbol="x", element_size=0))

    def test_memory_summary_counts(self, figure7_program):
        text = format_memory_summary(figure7_program.cfg)
        assert "a: 2" in text
