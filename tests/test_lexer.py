"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import LexerError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [token.type for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifier(self):
        tokens = tokenize("foo_bar42")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "foo_bar42"

    def test_decimal_literal(self):
        tokens = tokenize("12345")
        assert tokens[0].type is TokenType.INT_LITERAL
        assert tokens[0].value == "12345"

    def test_hex_literal(self):
        tokens = tokenize("0x7c")
        assert tokens[0].type is TokenType.INT_LITERAL
        assert tokens[0].value == "0x7c"

    def test_literal_with_long_suffix(self):
        tokens = tokenize("15L")
        assert tokens[0].type is TokenType.INT_LITERAL
        assert tokens[0].value == "15"

    def test_char_literal_becomes_integer(self):
        tokens = tokenize("'A'")
        assert tokens[0].type is TokenType.INT_LITERAL
        assert tokens[0].value == str(ord("A"))

    def test_escaped_char_literal(self):
        tokens = tokenize(r"'\n'")
        assert tokens[0].value == str(ord("\n"))


class TestKeywords:
    @pytest.mark.parametrize(
        "keyword, token_type",
        [
            ("int", TokenType.KW_INT),
            ("char", TokenType.KW_CHAR),
            ("long", TokenType.KW_LONG),
            ("if", TokenType.KW_IF),
            ("else", TokenType.KW_ELSE),
            ("while", TokenType.KW_WHILE),
            ("for", TokenType.KW_FOR),
            ("return", TokenType.KW_RETURN),
            ("break", TokenType.KW_BREAK),
            ("continue", TokenType.KW_CONTINUE),
            ("reg", TokenType.KW_REG),
            ("register", TokenType.KW_REG),
            ("secret", TokenType.KW_SECRET),
            ("const", TokenType.KW_CONST),
            ("unsigned", TokenType.KW_UNSIGNED),
        ],
    )
    def test_keyword(self, keyword, token_type):
        assert types(keyword)[0] is token_type

    def test_c_typedef_aliases(self):
        assert types("uint8_t")[0] is TokenType.KW_CHAR
        assert types("uint32_t")[0] is TokenType.KW_INT
        assert types("uint64_t")[0] is TokenType.KW_LONG

    def test_keyword_prefix_is_identifier(self):
        tokens = tokenize("iffy")
        assert tokens[0].type is TokenType.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "text, token_type",
        [
            ("<<", TokenType.SHL),
            (">>", TokenType.SHR),
            ("<=", TokenType.LE),
            (">=", TokenType.GE),
            ("==", TokenType.EQ),
            ("!=", TokenType.NE),
            ("&&", TokenType.AND_AND),
            ("||", TokenType.OR_OR),
            ("+=", TokenType.PLUS_ASSIGN),
            ("-=", TokenType.MINUS_ASSIGN),
            ("++", TokenType.PLUS_PLUS),
            ("--", TokenType.MINUS_MINUS),
        ],
    )
    def test_multi_char_operator(self, text, token_type):
        assert types(text)[0] is token_type

    def test_single_char_operators(self):
        assert types("+ - * / % ( ) { } [ ] ; , < > = ! & | ^ ~")[:-1] == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.PERCENT,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.SEMICOLON,
            TokenType.COMMA,
            TokenType.LT,
            TokenType.GT,
            TokenType.ASSIGN,
            TokenType.NOT,
            TokenType.AMP,
            TokenType.PIPE,
            TokenType.CARET,
            TokenType.TILDE,
        ]

    def test_greedy_matching_of_shift_vs_compare(self):
        assert types("a >> b")[1] is TokenType.SHR
        assert types("a > > b")[1] is TokenType.GT


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values("x // comment\n y") == ["x", "y"]

    def test_block_comment_skipped(self):
        assert values("x /* a\nb\nc */ y") == ["x", "y"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_newlines_update_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]
        assert tokens[2].column == 3


class TestErrors:
    def test_unknown_character_raises_with_location(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a\n  $")
        assert excinfo.value.line == 2

    def test_unterminated_char_literal(self):
        with pytest.raises(LexerError):
            tokenize("'a")

    def test_unknown_escape(self):
        with pytest.raises(LexerError):
            tokenize(r"'\q'")


class TestRealisticSnippets:
    def test_figure2_snippet(self):
        source = "if(p==0) load(l1[0]); else load(l2[0]);"
        kinds = types(source)
        assert TokenType.KW_IF in kinds
        assert TokenType.KW_ELSE in kinds
        assert kinds.count(TokenType.LBRACKET) == 2

    def test_quantl_loop_header(self):
        source = "for(mil = 0 ; mil < 30 ; mil++) {"
        kinds = types(source)
        assert TokenType.KW_FOR in kinds
        assert TokenType.PLUS_PLUS in kinds
