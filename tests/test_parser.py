"""Unit tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_program


class TestGlobalDeclarations:
    def test_scalar_declaration(self):
        program = parse_program("int x;")
        assert len(program.globals) == 1
        decl = program.globals[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.name == "x"
        assert decl.base_type is ast.BaseType.INT

    def test_char_and_long(self):
        program = parse_program("char c; long l;")
        assert program.globals[0].base_type is ast.BaseType.CHAR
        assert program.globals[1].base_type is ast.BaseType.LONG

    def test_multiple_declarators(self):
        program = parse_program("int a, b, c;")
        assert [d.name for d in program.globals] == ["a", "b", "c"]

    def test_array_declaration(self):
        program = parse_program("int table[31];")
        decl = program.globals[0]
        assert isinstance(decl, ast.ArrayDecl)
        assert decl.length == 31

    def test_array_length_constant_expression(self):
        program = parse_program("char ph[64*510];")
        assert program.globals[0].length == 64 * 510

    def test_array_initializer(self):
        program = parse_program("int t[4] = { 1, 2, 3, 4 };")
        assert program.globals[0].init == [1, 2, 3, 4]

    def test_array_initializer_trailing_comma(self):
        program = parse_program("int t[3] = { 1, 2, 3, };")
        assert program.globals[0].init == [1, 2, 3]

    def test_scalar_initializer(self):
        program = parse_program("int x = 42;")
        assert isinstance(program.globals[0].init, ast.IntLiteral)
        assert program.globals[0].init.value == 42

    def test_qualifiers(self):
        program = parse_program("secret reg char k; const int c;")
        assert program.globals[0].qualifiers.is_secret
        assert program.globals[0].qualifiers.is_reg
        assert program.globals[1].qualifiers.is_const

    def test_unsigned_defaults_to_int(self):
        program = parse_program("unsigned x;")
        assert program.globals[0].base_type is ast.BaseType.INT

    def test_typedef_aliases(self):
        program = parse_program("uint8_t sbox[256]; uint32_t word;")
        assert program.globals[0].base_type is ast.BaseType.CHAR
        assert program.globals[1].base_type is ast.BaseType.INT


class TestFunctions:
    def test_function_with_params(self):
        program = parse_program("int quantl(int el, int detl) { return el; }")
        func = program.function("quantl")
        assert [p.name for p in func.params] == ["el", "detl"]
        assert func.return_type is ast.BaseType.INT

    def test_void_parameter_list(self):
        program = parse_program("int main(void) { return 0; }")
        assert program.function("main").params == []

    def test_empty_parameter_list(self):
        program = parse_program("int main() { return 0; }")
        assert program.function("main").params == []

    def test_has_function(self):
        program = parse_program("int f() { return 1; }")
        assert program.has_function("f")
        assert not program.has_function("g")
        with pytest.raises(KeyError):
            program.function("g")


class TestStatements:
    def _body(self, body_source: str) -> list[ast.Stmt]:
        program = parse_program("int main() { " + body_source + " }")
        return program.function("main").body.statements

    def test_assignment(self):
        (stmt,) = self._body("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Identifier)

    def test_array_element_assignment(self):
        (stmt,) = self._body("a[3] = 1;")
        assert isinstance(stmt.target, ast.Index)
        assert stmt.target.array == "a"

    def test_compound_assignment_desugars(self):
        (stmt,) = self._body("x += 2;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value, ast.BinaryOp)
        assert stmt.value.op == "+"

    def test_increment_desugars(self):
        (stmt,) = self._body("x++;")
        assert isinstance(stmt.value, ast.BinaryOp)
        assert stmt.value.right.value == 1

    def test_expression_statement(self):
        (stmt,) = self._body("ph[0];")
        assert isinstance(stmt, ast.ExprStatement)
        assert isinstance(stmt.expr, ast.Index)

    def test_if_else(self):
        (stmt,) = self._body("if (p == 0) { x = 1; } else { x = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is not None

    def test_if_without_braces(self):
        (stmt,) = self._body("if (p == 0) x = 1; else x = 2;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.then_body, ast.Block)
        assert len(stmt.then_body.statements) == 1

    def test_while(self):
        (stmt,) = self._body("while (i < 10) { i = i + 1; }")
        assert isinstance(stmt, ast.While)

    def test_for(self):
        (stmt,) = self._body("for (i = 0; i < 30; i++) { a[i]; }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Assign)
        assert isinstance(stmt.cond, ast.BinaryOp)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_with_declaration(self):
        (stmt,) = self._body("for (reg int i = 0; i < 4; i++) { a[i]; }")
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.init.qualifiers.is_reg

    def test_break_and_continue(self):
        statements = self._body("while (1) { if (x) break; continue; }")
        loop = statements[0]
        inner = loop.body.statements
        assert isinstance(inner[0].then_body.statements[0], ast.Break)
        assert isinstance(inner[1], ast.Continue)

    def test_return_without_value(self):
        (stmt,) = self._body("return;")
        assert isinstance(stmt, ast.Return)
        assert stmt.value is None

    def test_local_declarations_expand(self):
        statements = self._body("int a, b; a = 1;")
        assert len(statements) == 3
        assert isinstance(statements[0], ast.VarDecl)
        assert isinstance(statements[1], ast.VarDecl)

    def test_empty_statement_ignored(self):
        assert self._body(";;") == []


class TestExpressions:
    def _expr(self, text: str) -> ast.Expr:
        program = parse_program("int main() { x = " + text + "; }")
        return program.function("main").body.statements[0].value

    def test_precedence_multiplication_over_addition(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_additive(self):
        expr = self._expr("a + b >> 2")
        assert expr.op == ">>"

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_relational_and_logical(self):
        expr = self._expr("a < 3 && b >= 4")
        assert expr.op == "&&"

    def test_unary_minus_and_not(self):
        expr = self._expr("-a + !b")
        assert expr.op == "+"
        assert expr.left.op == "-"
        assert expr.right.op == "!"

    def test_call_with_arguments(self):
        expr = self._expr("my_abs(el - 1)")
        assert isinstance(expr, ast.Call)
        assert expr.name == "my_abs"
        assert len(expr.args) == 1

    def test_index_expression(self):
        expr = self._expr("decis_levl[mil + 1]")
        assert isinstance(expr, ast.Index)
        assert expr.array == "decis_levl"

    def test_cast_is_ignored(self):
        expr = self._expr("(long)detl * 2")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Identifier)

    def test_nested_calls_and_indexing(self):
        expr = self._expr("t[my_abs(i)] + t[0]")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Index)
        assert isinstance(expr.left.index, ast.Call)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int x")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("int main() { x = 1;")

    def test_non_constant_array_length(self):
        with pytest.raises(ParseError):
            parse_program("int a[n];")

    def test_indexing_non_identifier(self):
        with pytest.raises(ParseError):
            parse_program("int main() { x = (a + b)[0]; }")

    def test_unexpected_token_in_expression(self):
        with pytest.raises(ParseError):
            parse_program("int main() { x = * ; }")

    def test_missing_type(self):
        with pytest.raises(ParseError):
            parse_program("foo bar;")


class TestPaperPrograms:
    def test_quantl_parses(self):
        from repro.bench.programs import quantl_client_source

        program = parse_program(quantl_client_source())
        assert program.has_function("quantl")
        assert program.has_function("main")
        assert len(program.globals) == 3

    def test_figure2_parses(self):
        from repro.bench.programs import motivating_example_source

        program = parse_program(motivating_example_source(num_lines=16))
        names = [decl.name for decl in program.globals]
        assert names == ["ph", "l1", "l2", "p", "k"]
