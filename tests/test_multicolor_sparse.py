"""Tests for the sparse multi-color engine rebuild: differential equality
against the retained dense reference, the scenario-sharded scheduler, the
heap-based window construction, the postdominator-tree convergence fix,
and the precomputed slot-placement indices."""

from __future__ import annotations

import random

import pytest

from repro import compile_source
from repro.analysis import analyze_speculative
from repro.analysis.multicolor import SpeculativeCacheAnalysis
from repro.bench.client import build_client_source
from repro.bench.crypto import CRYPTO_BENCHMARKS, crypto_kernel
from repro.bench.programs import branchy_kernel_source, wcet_benchmark_source
from repro.cache.config import CacheConfig
from repro.engine.engine import execute_request
from repro.engine.request import AnalysisRequest
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.dominators import (
    VIRTUAL_EXIT,
    compute_postdominators,
    immediate_postdominator,
    postdominator_tree,
)
from repro.ir.instructions import CondBranch, Const, Jump, Return, Temp
from repro.service.wire import request_from_wire, request_to_wire
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy
from repro.speculation.vcfg import SpeculativeWindow, build_vcfg, compute_window

# ----------------------------------------------------------------------
# Seeded random MiniC programs
# ----------------------------------------------------------------------
SEED = 0x5EED

#: Geometries of the differential matrix: the paper's shape (scaled) and a
#: set-associative FIFO one, so both abstract cache domains are exercised.
GEOMETRIES = [
    CacheConfig(num_lines=4, line_size=64),
    CacheConfig(num_lines=8, line_size=64, associativity=2, policy="fifo"),
]


def random_source(rng: random.Random, num_statements: int = 12) -> str:
    """A random straight-line/diamond/breaking-loop MiniC program.

    Memory-dependent branch conditions produce full-depth scenarios,
    register conditions exercise the dynamic depth bounding, the breaking
    loop survives unrolling (so widening points exist), and the
    secret-indexed access exercises leak classification.
    """
    arrays = 5
    decls = [f"char a{i}[64];" for i in range(arrays)]
    decls += ["char cnd[256];", "char sbox[256];", "secret int key;",
              "reg int p;", "int q;"]

    def access() -> str:
        return f"a{rng.randrange(arrays)}[{rng.choice([0, 32])}];"

    body = []
    for _ in range(num_statements):
        roll = rng.random()
        if roll < 0.40:
            body.append("  " + access())
        elif roll < 0.80:
            cond = f"cnd[{rng.randrange(4) * 64}]" if rng.random() < 0.7 else "p"
            inner = ""
            if rng.random() < 0.3:
                inner = (
                    f" if (cnd[{rng.randrange(4) * 64}])"
                    f" {{ {access()} }} else {{ {access()} }}"
                )
            body.append(f"  if ({cond}) {{ {access()}{inner} }} else {{ {access()} }}")
        elif roll < 0.90:
            body.append(
                "  for (q = 0; q < 8; q = q + 1) {\n"
                f"    {access()}\n"
                f"    if (cnd[{rng.randrange(4) * 64}]) break;\n"
                "  }"
            )
        else:
            body.append("  sbox[key];")
    return (
        "\n".join(decls)
        + "\n\nint main() {\n"
        + "\n".join(body)
        + "\n  return 0;\n}\n"
    )


@pytest.fixture(scope="module")
def random_programs():
    rng = random.Random(SEED)
    return [compile_source(random_source(rng)) for _ in range(4)]


# ----------------------------------------------------------------------
# Sparse engine == dense reference, bit for bit
# ----------------------------------------------------------------------
class TestSparseMatchesDenseReference:
    @pytest.mark.parametrize("strategy", list(MergeStrategy))
    @pytest.mark.parametrize("geometry", range(len(GEOMETRIES)))
    @pytest.mark.parametrize("config_name", ["paper_default", "no_speculation"])
    def test_differential_matrix(
        self, random_programs, strategy, geometry, config_name
    ):
        """The sparse engine's result is identical to the retained dense
        path across merge strategies x cache geometries x speculation
        configs on seeded random programs.  The engines share one pop
        schedule by construction, so even the iteration and widening
        counters must agree — asserting them documents that the sparse
        rebuild is an optimisation, not a semantic change."""
        cache = GEOMETRIES[geometry]
        speculation = getattr(SpeculationConfig, config_name)().with_strategy(strategy)
        for program in random_programs:
            dense = SpeculativeCacheAnalysis(
                program, cache_config=cache, speculation=speculation, mode="dense"
            ).run()
            sparse = SpeculativeCacheAnalysis(
                program, cache_config=cache, speculation=speculation
            ).run()
            assert sparse.classifications == dense.classifications
            assert sparse.entry_states == dense.entry_states
            assert sparse.iterations == dense.iterations
            assert sparse.widenings == dense.widenings

    def test_differential_on_table7_harnesses(self, bench_cache):
        for name in ("hash", "des", "str2key"):
            kernel = crypto_kernel(name, 64, 64)
            program = compile_source(build_client_source(kernel, 2880))
            dense = SpeculativeCacheAnalysis(
                program, cache_config=bench_cache, mode="dense"
            ).run()
            sparse = SpeculativeCacheAnalysis(
                program, cache_config=bench_cache
            ).run()
            assert sparse.classifications == dense.classifications
            assert sparse.iterations == dense.iterations

    def test_differential_on_widening_active_kernel(self, bench_cache):
        """adpcm is the corpus kernel whose fixpoint actually widens; the
        schedules (and therefore the widening timing) must still agree."""
        program = compile_source(wcet_benchmark_source("adpcm"))
        dense = SpeculativeCacheAnalysis(
            program, cache_config=bench_cache, mode="dense"
        ).run()
        sparse = SpeculativeCacheAnalysis(program, cache_config=bench_cache).run()
        assert dense.widenings > 0, "adpcm stopped widening; pick another kernel"
        assert sparse.classifications == dense.classifications
        assert sparse.widenings == dense.widenings

    def test_unknown_mode_rejected(self, quantl_program):
        with pytest.raises(ValueError):
            SpeculativeCacheAnalysis(quantl_program, mode="eager")


# ----------------------------------------------------------------------
# Scenario sharding
# ----------------------------------------------------------------------
class TestScenarioSharding:
    def test_shard_counts_agree_on_widening_free_kernels(self, bench_cache):
        """Without widening the fixpoint is the unique lfp, so every shard
        count — including the canonical unsharded engine — must produce
        identical classifications."""
        for source in (
            branchy_kernel_source(6),
            build_client_source(crypto_kernel("hash", 64, 64), 2880),
        ):
            program = compile_source(source)
            canonical = SpeculativeCacheAnalysis(
                program, cache_config=bench_cache
            ).run()
            for shards in (2, 3, 8):
                sharded = SpeculativeCacheAnalysis(
                    program, cache_config=bench_cache, scenario_shards=shards
                ).run()
                assert sharded.classifications == canonical.classifications
                assert sharded.widenings == 0

    def test_threaded_sharding_matches_serial(self, bench_cache):
        program = compile_source(branchy_kernel_source(6))
        serial = SpeculativeCacheAnalysis(
            program, cache_config=bench_cache, scenario_shards=4
        ).run()
        threaded = SpeculativeCacheAnalysis(
            program, cache_config=bench_cache, scenario_shards=4, shard_threads=True
        ).run()
        assert threaded.classifications == serial.classifications
        assert threaded.entry_states == serial.entry_states

    def test_sharding_is_shard_count_invariant_under_widening(self, bench_cache):
        """On widening-active programs the sharded scheduler computes the
        exact (unwidened) fixpoint: identical for every shard count, and
        never less precise than the canonical engine."""
        program = compile_source(wcet_benchmark_source("adpcm"))
        canonical = SpeculativeCacheAnalysis(program, cache_config=bench_cache).run()
        assert canonical.widenings > 0
        two = SpeculativeCacheAnalysis(
            program, cache_config=bench_cache, scenario_shards=2
        ).run()
        four = SpeculativeCacheAnalysis(
            program, cache_config=bench_cache, scenario_shards=4
        ).run()
        assert two.classifications == four.classifications
        key = lambda c: (c.block, c.instruction_index, c.speculative, c.scenario_color)
        canonical_hits = {key(c): c.must_hit for c in canonical.classifications}
        sharded_hits = {key(c): c.must_hit for c in two.classifications}
        assert set(canonical_hits) == set(sharded_hits)
        # exact fixpoint: every canonical must-hit is preserved
        assert all(
            sharded_hits[site] for site, hit in canonical_hits.items() if hit
        )

    def test_sharding_with_no_scenarios_is_harmless(self, bench_cache):
        program = compile_source(
            "char a[64];\nint main() {\n  a[0];\n  return 0;\n}\n"
        )
        result = SpeculativeCacheAnalysis(
            program, cache_config=bench_cache, scenario_shards=8
        ).run()
        assert result.num_speculative_branches == 0
        assert result.classifications

    def test_analyze_speculative_knob(self, quantl_program, bench_cache):
        plain = analyze_speculative(quantl_program, cache_config=bench_cache)
        sharded = analyze_speculative(
            quantl_program, cache_config=bench_cache, scenario_shards=3
        )
        assert sharded.classifications == plain.classifications


# ----------------------------------------------------------------------
# Request / wire plumbing for the sharding knob
# ----------------------------------------------------------------------
class TestShardingPlumbing:
    SOURCE = "char a[64]; char c[64];\nint main() {\n  if (c[0]) { a[0]; }\n  return 0;\n}\n"

    def test_result_keys_separate_shard_counts(self):
        plain = AnalysisRequest(source=self.SOURCE)
        sharded = AnalysisRequest(source=self.SOURCE, scenario_shards=2)
        assert plain.result_key() != sharded.result_key()
        # the default keeps its historical key shape (warm stores stay valid)
        assert plain.result_key() == AnalysisRequest(source=self.SOURCE).result_key()

    def test_wire_roundtrip_and_legacy_default(self):
        request = AnalysisRequest(source=self.SOURCE, scenario_shards=4)
        assert request_from_wire(request_to_wire(request)) == request
        legacy_payload = request_to_wire(AnalysisRequest(source=self.SOURCE))
        del legacy_payload["scenario_shards"]
        assert request_from_wire(legacy_payload).scenario_shards == 1

    def test_execute_request_routes_shards(self):
        plain = execute_request(AnalysisRequest(source=self.SOURCE))
        sharded = execute_request(
            AnalysisRequest(source=self.SOURCE, scenario_shards=2)
        )
        assert sharded.classifications == plain.classifications


# ----------------------------------------------------------------------
# Heap-based compute_window
# ----------------------------------------------------------------------
def reference_compute_window(cfg, start: str, depth: int) -> SpeculativeWindow:
    """The pre-heap implementation (sort-the-worklist-per-pop), kept
    verbatim as the equality oracle."""
    from repro.speculation.vcfg import first_fence_index

    if depth <= 0:
        return SpeculativeWindow(depth=depth)
    distance = {start: 0}
    worklist = [start]
    while worklist:
        worklist.sort(key=lambda name: distance[name])
        block_name = worklist.pop(0)
        if first_fence_index(cfg, block_name) is not None:
            continue
        block_distance = distance[block_name]
        exit_distance = block_distance + cfg.block(block_name).instruction_count
        if exit_distance >= depth:
            continue
        for successor in cfg.successors(block_name):
            if exit_distance < distance.get(successor, depth):
                distance[successor] = exit_distance
                if successor not in worklist:
                    worklist.append(successor)
    allowed = {}
    for name, dist in distance.items():
        if depth - dist <= 0:
            continue
        limit = cfg.block(name).instruction_count
        fence = first_fence_index(cfg, name)
        if fence is not None:
            limit = min(limit, fence)
        allowance = min(limit, depth - dist)
        if allowance > 0:
            allowed[name] = allowance
    return SpeculativeWindow(depth=depth, allowed=allowed)


class TestComputeWindowHeap:
    @pytest.mark.parametrize("name", sorted(CRYPTO_BENCHMARKS))
    def test_window_equality_on_table7_kernels(self, name):
        """The Dijkstra rewrite computes exactly the windows the old
        sort-based implementation did, for every branch target of every
        Table-7 client harness at both depth bounds."""
        kernel = crypto_kernel(name, 64, 64)
        program = compile_source(build_client_source(kernel, 2880))
        cfg = program.cfg
        starts = set()
        for branch_block in cfg.conditional_blocks():
            terminator = cfg.block(branch_block).terminator
            starts.update(terminator.targets())
        if not starts:
            # Some kernels (e.g. str2key, aes) are branchless once their
            # fixed loops unroll; sweep the windows from every block then.
            starts = set(cfg.reachable_blocks())
        for start in sorted(starts):
            for depth in (16, 20, 200):
                assert compute_window(cfg, start, depth) == reference_compute_window(
                    cfg, start, depth
                )

    def test_window_equality_on_random_programs(self, random_programs):
        for program in random_programs:
            cfg = program.cfg
            for start in cfg.reachable_blocks():
                for depth in (0, 7, 64):
                    assert compute_window(cfg, start, depth) == (
                        reference_compute_window(cfg, start, depth)
                    )


# ----------------------------------------------------------------------
# Postdominator-tree convergence fix
# ----------------------------------------------------------------------
def legacy_immediate_postdominator(cfg, block: str) -> str | None:
    """The pre-fix selection: an inverted chain test (which favours the
    postdominator *nearest the exit*) plus an arbitrary sorted fallback."""
    pdom = compute_postdominators(cfg)
    candidates = pdom.get(block, set()) - {block, VIRTUAL_EXIT}
    if not candidates:
        return None
    for candidate in candidates:
        if all(candidate in pdom[other] for other in candidates if other != candidate):
            return candidate
    return sorted(candidates)[0]


def build_double_diamond() -> CFG:
    """entry branches; both sides join at mid; mid branches; both sides
    join at last; last returns.  ipdom(entry) is mid, NOT last."""
    cfg = CFG(name="double_diamond")
    layout = {
        "entry": ("t1", "f1"),
        "t1": "mid",
        "f1": "mid",
        "mid": ("t2", "f2"),
        "t2": "last",
        "f2": "last",
    }
    for name in ("entry", "t1", "f1", "mid", "t2", "f2", "last"):
        cfg.add_block(BasicBlock(name))
    for name, target in layout.items():
        if isinstance(target, tuple):
            cfg.block(name).terminator = CondBranch(
                cond=Temp("c"), true_target=target[0], false_target=target[1]
            )
        else:
            cfg.block(name).terminator = Jump(target=target)
    cfg.block("last").terminator = Return(value=Const(0))
    return cfg


def build_doomed_branch() -> CFG:
    """entry -> exit | loop; the loop never terminates and contains a
    branch of its own.  That branch has NO postdominators — but the
    iterative sets computed over the full graph never converge past their
    all-nodes initialisation for the doomed region, so the legacy
    fallback picks an arbitrary (alphabetically first) block."""
    cfg = CFG(name="doomed")
    for name in ("entry", "aexit", "loop", "linner", "lback"):
        cfg.add_block(BasicBlock(name))
    cfg.block("entry").terminator = CondBranch(
        cond=Temp("c"), true_target="aexit", false_target="loop"
    )
    cfg.block("aexit").terminator = Return(value=Const(0))
    cfg.block("loop").terminator = CondBranch(
        cond=Temp("d"), true_target="linner", false_target="lback"
    )
    cfg.block("linner").terminator = Jump(target="lback")
    cfg.block("lback").terminator = Jump(target="loop")
    return cfg


class TestPostdominatorTree:
    def test_immediate_not_farthest(self):
        cfg = build_double_diamond()
        tree = postdominator_tree(cfg)
        assert tree["entry"] == "mid"
        assert tree["mid"] == "last"
        assert tree["t1"] == "mid"
        assert tree["last"] is None
        # Regression: the legacy selection returned the farthest
        # postdominator, silently moving the convergence point downstream.
        assert legacy_immediate_postdominator(cfg, "entry") == "last"
        assert immediate_postdominator(cfg, "entry") == "mid"

    def test_doomed_branch_has_no_convergence(self):
        cfg = build_doomed_branch()
        tree = postdominator_tree(cfg)
        assert tree["loop"] is None
        assert tree["linner"] is None
        # Regression: the legacy fallback invented a convergence point for
        # the in-loop branch — a block that does not postdominate it.
        legacy = legacy_immediate_postdominator(cfg, "loop")
        assert legacy is not None
        pdom_restricted = postdominator_tree(cfg)
        assert pdom_restricted["loop"] is None  # nothing postdominates it

    def test_vcfg_convergence_uses_the_tree(self):
        cfg = build_double_diamond()
        vcfg = build_vcfg(cfg, SpeculationConfig(depth_miss=8, depth_hit=4))
        by_branch = {s.branch_block: s for s in vcfg.scenarios}
        assert by_branch["entry"].convergence_block == "mid"
        assert by_branch["mid"].convergence_block == "last"

    def test_doomed_vcfg_never_converges(self):
        cfg = build_doomed_branch()
        vcfg = build_vcfg(cfg, SpeculationConfig(depth_miss=8, depth_hit=4))
        by_branch = {s.branch_block: s for s in vcfg.scenarios}
        assert by_branch["loop"].convergence_block is None


# ----------------------------------------------------------------------
# O(1) scenario lookup and slot-placement indices
# ----------------------------------------------------------------------
class TestScenarioIndices:
    def test_scenario_lookup_tracks_mutation(self, quantl_program):
        import dataclasses

        vcfg = build_vcfg(quantl_program.cfg, SpeculationConfig.paper_default())
        first = vcfg.scenario(0)
        assert first.color == 0
        appended = dataclasses.replace(first, color=9999)
        vcfg.scenarios.append(appended)
        assert vcfg.scenario(9999) is appended  # append detected lazily
        with pytest.raises(KeyError):
            vcfg.scenario(123456)
        assert vcfg.scenarios_at(first.branch_block)
        # Non-append mutations require the explicit invalidation contract.
        replaced = dataclasses.replace(vcfg.scenario(0), convergence_block=None)
        vcfg.scenarios = [replaced] + list(vcfg.scenarios[1:-1])
        vcfg.invalidate_indices()
        assert vcfg.scenario(0) is replaced
        with pytest.raises(KeyError):
            vcfg.scenario(9999)

    def test_fixpoint_slots_stay_within_placement_indices(self, bench_cache):
        """Every slot the fixpoint actually materialises lives at a block
        the precomputed window/resume indices predicted."""
        program = compile_source(
            build_client_source(crypto_kernel("des", 64, 64), 2880)
        )
        engine = SpeculativeCacheAnalysis(program, cache_config=bench_cache)
        fixpoint = engine.solve()
        observed = 0
        for block, slots in fixpoint.speculative.items():
            window_colors, resume_colors = engine.possible_slot_colors(block)
            for slot, state in slots.items():
                if getattr(state, "is_bottom", False):
                    continue
                observed += 1
                if slot[0] == "window":
                    assert slot[1] in window_colors, (block, slot)
                else:
                    assert slot[1] in resume_colors, (block, slot)
        assert observed, "expected live speculative slots in the des harness"
