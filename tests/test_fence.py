"""The ``fence`` speculation barrier: language, IR, windows, simulator —
plus the :class:`SpeculationConfig` boundary cases (``depth_hit ==
depth_miss`` and depth 0) the simulator must short-circuit cleanly."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.analysis.baseline import analyze_baseline
from repro.analysis.speculative import analyze_speculative
from repro.errors import ConfigError
from repro.frontend import compile_source
from repro.ir.instructions import Fence
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.speculation.config import SpeculationConfig
from repro.speculation.predictor import OpposingPredictor, PerfectPredictor
from repro.speculation.simulator import SpeculativeSimulator
from repro.speculation.vcfg import build_vcfg, compute_window, first_fence_index

#: A branch whose wrong (taken) path touches memory the right path never
#: does; under misprediction the excursion pollutes the cache.
BRANCHY = """
char table[256];
char other[256];
int p;
int main() {
  reg int t;
  if (p > 0) {
    t = other[0];
    t = other[64];
  }
  t = table[0];
  return t;
}
"""

FENCED = BRANCHY.replace("t = other[0];", "fence;\n    t = other[0];")

#: Speculation-only leak at an 11-line cache: either pad alone fits next
#: to the preloaded S-box, both pads (mispredicted arm + re-executed
#: correct arm) do not.
SPEC_LEAK = """
char sbox[256];
char pad_a[192];
char pad_b[192];
secret int key;
int mode;

int main() {
  reg int i;
  reg int t;
  for (i = 0; i < 256; i = i + 64) { t = sbox[i]; }
  if (mode > 0) {
    t = pad_a[0] + pad_a[64] + pad_a[128];
  } else {
    t = pad_b[0] + pad_b[64] + pad_b[128];
  }
  t = sbox[key];
  return t;
}
"""

LEAK_CACHE = CacheConfig(num_lines=11, line_size=64)


class TestFenceFrontend:
    def test_parse_fence_statement(self):
        program = parse_program("int main() { fence; return 0; }")
        statements = program.function("main").body.statements
        assert isinstance(statements[0], ast.Fence)

    def test_parse_lfence_spellings(self):
        for spelling in ("lfence;", "lfence();", "fence;"):
            program = parse_program(f"int main() {{ {spelling} return 0; }}")
            assert isinstance(
                program.function("main").body.statements[0], ast.Fence
            )

    def test_fence_lowers_to_ir_instruction(self):
        program = compile_source("int x; int main() { x = 1; fence; return x; }")
        entry = program.cfg.block(program.cfg.entry)
        kinds = [type(instruction) for instruction in entry.instructions]
        assert Fence in kinds
        fence = next(i for i in entry.instructions if isinstance(i, Fence))
        assert fence.memory_refs() == ()
        assert fence.defined_temp() is None
        assert str(fence) == "fence"

    def test_fence_survives_unrolling(self):
        source = (
            "char a[256]; int main() { reg int i; int t;"
            " for (i = 0; i < 4; i = i + 1) { fence; t = a[i]; } return t; }"
        )
        program = compile_source(source)
        fences = sum(
            1
            for name in program.cfg.reachable_blocks()
            for instruction in program.cfg.block(name).instructions
            if isinstance(instruction, Fence)
        )
        assert fences == 4  # one copy per unrolled iteration

    def test_fence_survives_inlining(self):
        source = (
            "char a[256]; int helper(int x) { fence; return x; }"
            " int main() { int t; t = helper(3); t = a[0]; return t; }"
        )
        program = compile_source(source)
        fences = sum(
            1
            for name in program.cfg.reachable_blocks()
            for instruction in program.cfg.block(name).instructions
            if isinstance(instruction, Fence)
        )
        assert fences == 1


class TestFenceWindows:
    def test_fence_at_target_start_kills_scenario(self):
        program = compile_source(FENCED)
        vcfg = build_vcfg(program.cfg, SpeculationConfig.paper_default())
        taken = [s for s in vcfg.scenarios if s.mispredicted_taken]
        assert taken
        for scenario in taken:
            assert not scenario.window_miss.contains(scenario.wrong_target)
            assert scenario.window_miss.num_instructions == 0

    def test_unfenced_scenario_window_nonempty(self):
        program = compile_source(BRANCHY)
        vcfg = build_vcfg(program.cfg, SpeculationConfig.paper_default())
        taken = [s for s in vcfg.scenarios if s.mispredicted_taken]
        assert all(s.window_miss.num_instructions > 0 for s in taken)

    def test_mid_block_fence_truncates_allowance(self):
        source = (
            "char a[256]; char b[256]; int p; int main() { reg int t;"
            " if (p > 0) { t = a[0]; fence; t = b[0]; }"
            " t = a[64]; return t; }"
        )
        program = compile_source(source)
        cfg = program.cfg
        branch = cfg.conditional_blocks()[0]
        wrong = cfg.block(branch).terminator.true_target
        fence_at = first_fence_index(cfg, wrong)
        assert fence_at is not None and fence_at > 0
        window = compute_window(cfg, wrong, depth=200)
        # Only the pre-fence prefix is speculable, and the window must not
        # leak past the fence into successors.
        assert window.allowed == {wrong: fence_at}

    def test_fenced_speculative_analysis_matches_baseline_counts(self):
        # Every arm of the single branch begins with a fence: the then-arm
        # directly, and the fall-through target (`t = table[0]`) after the
        # if — so no scenario has a window and the speculative analysis
        # degenerates to the baseline.
        fully_fenced = compile_source(
            "char table[256];\nchar other[256];\nint p;\n"
            "int main() {\n  reg int t;\n"
            "  if (p > 0) {\n    fence;\n    t = other[0];\n    t = other[64];\n  }\n"
            "  fence;\n  t = table[0];\n  return t;\n}\n"
        )
        cache = CacheConfig(num_lines=4, line_size=64)
        spec = analyze_speculative(fully_fenced, cache_config=cache)
        base = analyze_baseline(fully_fenced, cache_config=cache)
        assert spec.miss_count == base.miss_count
        assert spec.hit_count == base.hit_count
        assert spec.speculative_miss_count == 0

    def test_fences_close_speculation_only_leak(self):
        leaky = compile_source(SPEC_LEAK)
        assert not analyze_baseline(leaky, cache_config=LEAK_CACHE).leak_detected
        assert analyze_speculative(leaky, cache_config=LEAK_CACHE).leak_detected
        patched = compile_source(
            SPEC_LEAK.replace("t = pad_a[0]", "fence;\n    t = pad_a[0]").replace(
                "t = pad_b[0]", "fence;\n    t = pad_b[0]"
            )
        )
        assert not analyze_speculative(patched, cache_config=LEAK_CACHE).leak_detected


class TestFenceSimulator:
    def _run(self, source: str, **kwargs):
        program = compile_source(source)
        cache = CacheConfig(num_lines=4, line_size=64)
        simulator = SpeculativeSimulator(
            program, cache_config=cache, predictor=OpposingPredictor(), **kwargs
        )
        return simulator.run({"p": 0})

    def test_excursion_stops_at_fence(self):
        unfenced = self._run(BRANCHY)
        fenced = self._run(FENCED)
        assert unfenced.speculative_excursions >= 1
        assert any(record.speculative for record in unfenced.accesses)
        # The fence sits before the wrong path's first access: the
        # excursion happens but touches nothing.
        assert not any(record.speculative for record in fenced.accesses)
        assert fenced.misses < unfenced.misses

    def test_fence_stops_fixed_length_excursions_too(self):
        fenced = self._run(FENCED, excursion_length=50)
        assert not any(record.speculative for record in fenced.accesses)

    def test_fence_is_architectural_noop(self):
        program_plain = compile_source("int x; int main() { x = 7; return x; }")
        program_fenced = compile_source(
            "int x; int main() { fence; x = 7; fence; return x; }"
        )
        plain = SpeculativeSimulator(program_plain).run()
        fenced = SpeculativeSimulator(program_fenced).run()
        assert fenced.return_value == plain.return_value == 7
        assert fenced.misses == plain.misses


class TestSpeculationBoundaries:
    def test_equal_depths_are_valid_and_windows_coincide(self):
        config = SpeculationConfig(depth_miss=30, depth_hit=30)
        program = compile_source(BRANCHY)
        vcfg = build_vcfg(program.cfg, config)
        for scenario in vcfg.scenarios:
            assert scenario.window_miss.allowed == scenario.window_hit.allowed
            assert scenario.window(True).depth == scenario.window(False).depth == 30

    def test_hit_depth_above_miss_depth_rejected(self):
        with pytest.raises(ConfigError):
            SpeculationConfig(depth_miss=10, depth_hit=11)
        with pytest.raises(ConfigError):
            SpeculationConfig(depth_miss=-1)

    def test_depth_zero_is_disabled(self):
        assert SpeculationConfig.no_speculation().disabled
        assert SpeculationConfig(depth_miss=0, depth_hit=0).disabled
        assert not SpeculationConfig.paper_default().disabled

    def test_depth_zero_simulator_matches_perfect_prediction(self):
        program = compile_source(BRANCHY)
        cache = CacheConfig(num_lines=4, line_size=64)
        disabled = SpeculativeSimulator(
            program,
            cache_config=cache,
            speculation=SpeculationConfig.no_speculation(),
            predictor=OpposingPredictor(),
        ).run({"p": 0})
        perfect = SpeculativeSimulator(
            program, cache_config=cache, predictor=PerfectPredictor()
        ).run({"p": 0})
        assert disabled.mispredictions == 0
        assert disabled.speculative_excursions == 0
        assert disabled.misses == perfect.misses
        assert disabled.hits == perfect.hits
        assert not any(record.speculative for record in disabled.accesses)

    def test_depth_zero_analysis_matches_baseline(self):
        program = compile_source(SPEC_LEAK)
        spec = analyze_speculative(
            program,
            cache_config=LEAK_CACHE,
            speculation=SpeculationConfig.no_speculation(),
        )
        base = analyze_baseline(program, cache_config=LEAK_CACHE)
        assert spec.miss_count == base.miss_count
        assert spec.hit_count == base.hit_count
        assert not spec.leak_detected

    def test_equal_depths_analysis_runs_clean(self):
        program = compile_source(SPEC_LEAK)
        result = analyze_speculative(
            program,
            cache_config=LEAK_CACHE,
            speculation=SpeculationConfig(depth_miss=200, depth_hit=200),
        )
        # With bh == bm the dynamic bound changes nothing: same verdict as
        # the paper-default configuration on this program.
        assert result.leak_detected
