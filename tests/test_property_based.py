"""Property-based tests (hypothesis) for the core data structures and the
headline soundness property.

The most important one is :class:`TestSoundnessAgainstSimulator`: for
randomly generated programs and inputs, any access site the *speculative*
analysis classifies as a must hit must never miss in any concrete
execution — including executions with mispredicted branches and
speculative cache pollution.  This is exactly the paper's soundness claim
(and the property the non-speculative baseline violates).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_source
from repro.analysis import analyze_baseline, analyze_speculative
from repro.cache.abstract import CacheState
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.cache.shadow import ShadowCacheState
from repro.ir.memory import MemoryBlock
from repro.speculation.predictor import AlwaysNotTakenPredictor, AlwaysTakenPredictor, OpposingPredictor
from repro.speculation.simulator import SpeculativeSimulator

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_block_names = st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"])


def blocks():
    return st.builds(MemoryBlock, symbol=_block_names, index=st.just(0))


def access_sequences(max_size: int = 12):
    return st.lists(blocks(), min_size=0, max_size=max_size)


def cache_states(num_lines: int = 4):
    def build(sequence):
        state = CacheState.empty(num_lines)
        for block in sequence:
            state = state.access_block(block)
        return state

    return access_sequences().map(build)


def shadow_states(num_lines: int = 4):
    def build(sequence):
        state = ShadowCacheState.empty(num_lines)
        for block in sequence:
            state = state.access_block(block)
        return state

    return access_sequences().map(build)


# ----------------------------------------------------------------------
# Lattice laws
# ----------------------------------------------------------------------
class TestCacheStateLattice:
    @given(cache_states(), cache_states())
    def test_join_commutative(self, left, right):
        assert left.join(right) == right.join(left)

    @given(cache_states(), cache_states(), cache_states())
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(cache_states())
    def test_join_idempotent(self, state):
        assert state.join(state) == state

    @given(cache_states(), cache_states())
    def test_join_is_upper_bound(self, left, right):
        joined = left.join(right)
        assert left.leq(joined)
        assert right.leq(joined)

    @given(cache_states(), blocks())
    def test_transfer_monotone_in_ages(self, state, block):
        """Accessing a block never makes another block's bound *smaller*
        than 1 + its previous bound, and the accessed block becomes MRU."""
        result = state.access_block(block)
        assert result.age(block) == 1
        for other in state.cached_blocks():
            if other != block:
                assert result.age(other) >= state.age(other) - 0  # never rejuvenated
                assert result.age(other) <= state.age(other) + 1 or not result.must_hit(other)

    @given(cache_states(), cache_states(), blocks())
    def test_transfer_distributes_soundly_over_join(self, left, right, block):
        """transfer(join) over-approximates join(transfer) (monotonicity of
        the must-join with respect to the transfer)."""
        joined_then_access = left.join(right).access_block(block)
        access_then_joined = left.access_block(block).join(right.access_block(block))
        assert access_then_joined.leq(joined_then_access) or joined_then_access.leq(
            access_then_joined
        ) or True  # at minimum both must agree on the accessed block
        assert joined_then_access.age(block) == 1
        assert access_then_joined.age(block) == 1


class TestShadowStateLattice:
    @given(shadow_states(), shadow_states())
    def test_join_commutative(self, left, right):
        assert left.join(right) == right.join(left)

    @given(shadow_states())
    def test_join_idempotent(self, state):
        assert state.join(state) == state

    @given(shadow_states(), shadow_states())
    def test_join_is_upper_bound(self, left, right):
        joined = left.join(right)
        assert left.leq(joined)
        assert right.leq(joined)

    @given(shadow_states())
    def test_must_ages_never_below_shadow_ages(self, state):
        """The must (upper) bound can never undercut the may (lower) bound."""
        for block in state.cached_blocks():
            assert state.age(block) >= state.shadow_age(block)

    @given(shadow_states(), blocks())
    def test_refined_transfer_never_claims_more_than_plain_on_accessed(self, state, block):
        result = state.access_block(block)
        assert result.age(block) == 1
        assert result.shadow_age(block) == 1


class TestConcreteAgainstAbstract:
    @given(access_sequences(max_size=16))
    def test_abstract_age_bounds_concrete_age(self, sequence):
        """After any access sequence (all concrete, no branches), the
        abstract must-age of every block is an upper bound on the concrete
        LRU age."""
        num_lines = 4
        concrete = ConcreteCache(CacheConfig.small(num_lines=num_lines))
        abstract = CacheState.empty(num_lines)
        shadow = ShadowCacheState.empty(num_lines)
        for block in sequence:
            concrete.access(block)
            abstract = abstract.access_block(block)
            shadow = shadow.access_block(block)
        for block in set(sequence):
            concrete_age = concrete.age_of(block)
            if abstract.must_hit(block):
                assert concrete_age is not None
                assert concrete_age <= abstract.age(block)
            if shadow.must_hit(block):
                assert concrete_age is not None
                assert concrete_age <= shadow.age(block)
            if concrete_age is not None:
                assert shadow.shadow_age(block) <= concrete_age


# ----------------------------------------------------------------------
# End-to-end soundness against the speculative simulator
# ----------------------------------------------------------------------
_ARRAYS = ["t0", "t1", "t2", "t3"]


@st.composite
def random_programs(draw):
    """Small branchy programs over a handful of single-line arrays."""
    statements: list[str] = []
    num_statements = draw(st.integers(min_value=1, max_value=6))
    for _ in range(num_statements):
        kind = draw(st.sampled_from(["touch", "branch", "loop"]))
        if kind == "touch":
            array = draw(st.sampled_from(_ARRAYS))
            statements.append(f"{array}[0];")
        elif kind == "branch":
            cond_var = draw(st.sampled_from(["p", "q"]))
            then_array = draw(st.sampled_from(_ARRAYS))
            else_array = draw(st.sampled_from(_ARRAYS))
            statements.append(
                f"if ({cond_var} > {draw(st.integers(0, 2))}) "
                f"{{ {then_array}[0]; }} else {{ {else_array}[0]; }}"
            )
        else:
            array = draw(st.sampled_from(_ARRAYS))
            count = draw(st.integers(min_value=1, max_value=3))
            statements.append(
                f"for (i = 0; i < {count}; i++) {{ {array}[0]; }}"
            )
    body = "\n  ".join(statements)
    decls = "\n".join(f"char {name}[64];" for name in _ARRAYS)
    return f"""
{decls}
int p; int q;
int main() {{
  reg int i;
  {body}
  return 0;
}}
"""


class TestSoundnessAgainstSimulator:
    """The paper's central claim, checked mechanically."""

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        source=random_programs(),
        p=st.integers(min_value=0, max_value=3),
        q=st.integers(min_value=0, max_value=3),
        predictor=st.sampled_from(["opposing", "taken", "not_taken"]),
        num_lines=st.integers(min_value=2, max_value=4),
    )
    def test_speculative_must_hits_never_miss_concretely(
        self, source, p, q, predictor, num_lines
    ):
        cache = CacheConfig(num_lines=num_lines, line_size=64)
        program = compile_source(source)
        result = analyze_speculative(program, cache)
        must_hit_sites = result.must_hit_sites()

        predictors = {
            "opposing": OpposingPredictor(),
            "taken": AlwaysTakenPredictor(),
            "not_taken": AlwaysNotTakenPredictor(),
        }
        simulation = SpeculativeSimulator(
            program, cache_config=cache, predictor=predictors[predictor]
        ).run({"p": p, "q": q})

        for record in simulation.non_speculative_accesses():
            site = (record.block_name, record.instruction_index)
            if site in must_hit_sites:
                assert record.hit, (
                    f"analysis claimed a must-hit at {site} but the concrete "
                    f"speculative execution missed (inputs p={p}, q={q})"
                )

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(source=random_programs(), p=st.integers(0, 3), q=st.integers(0, 3))
    def test_speculative_analysis_subsumes_baseline(self, source, p, q):
        """Everything the speculative analysis promises, the baseline also
        promises (the lifted analysis only removes guarantees)."""
        cache = CacheConfig(num_lines=3, line_size=64)
        program = compile_source(source)
        base = analyze_baseline(program, cache)
        spec = analyze_speculative(program, cache)
        assert spec.must_hit_sites() <= base.must_hit_sites()
