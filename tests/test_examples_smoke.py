"""Smoke tests: the example scripts under ``examples/`` run to completion.

The heavy, paper-sized quickstart is exercised by the E1 benchmark; here the
example modules are imported and their entry points driven with small
arguments so a broken example fails the test suite rather than the reader.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contains_expected_scripts(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "wcet_estimation.py",
            "side_channel_detection.py",
            "merge_strategies.py",
            "mitigation_synthesis.py",
        } <= names

    def test_wcet_example_runs_on_subset(self, capsys):
        module = _load("wcet_estimation")
        module.main(["vga", "jcphuff"])
        output = capsys.readouterr().out
        assert "vga" in output
        assert "UNDERESTIMATED" in output or "tight" in output

    def test_wcet_example_rejects_unknown_benchmark(self):
        module = _load("wcet_estimation")
        with pytest.raises(SystemExit):
            module.main(["not-a-benchmark"])

    def test_side_channel_example_runs_on_subset(self, capsys):
        module = _load("side_channel_detection")
        module.main(["encoder"])
        output = capsys.readouterr().out
        assert "encoder" in output
        assert "buffer sweep" in output

    def test_mitigation_example_runs_on_subset(self, capsys):
        module = _load("mitigation_synthesis")
        module.main(["des"])
        output = capsys.readouterr().out
        assert "== des ==" in output
        assert "optimized" in output
        assert "chosen 'optimized'" in output

    def test_mitigation_example_rejects_unknown_kernel(self):
        module = _load("mitigation_synthesis")
        with pytest.raises(SystemExit):
            module.main(["not-a-kernel"])

    def test_merge_strategy_example_runs(self, capsys):
        module = _load("merge_strategies")
        module.figure7_states()
        output = capsys.readouterr().out
        assert "JUST_IN_TIME" in output
        assert "Figure 6c" in output
