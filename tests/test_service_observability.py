"""Live observability of the service edge.

Covers the lifecycle event log every job carries (queued -> coalesced |
dispatched -> running -> done | failed | cancelled, with monotonic
timestamps and sequence numbers), the per-priority queue-depth gauges
and latency histograms, the slow-job log, the streaming ``watch`` RPC
and its heartbeats, the ``events``/``top``/``metrics`` RPCs, Prometheus
text exposition, the progress-reporting differential (progress on/off
must be bit-identical across every shard backend), and the client's
bounded connect retry.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time

import pytest

from repro.engine.engine import AnalysisEngine, execute_request
from repro.engine.request import AnalysisRequest
from repro.obs import CollectingReporter, render_prometheus, reporting
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import JobScheduler, JobState
from repro.service.server import ReproServer
from repro.service.wire import result_fingerprint

SOURCE = "char a[64]; int p; int main() { if (p > 0) { a[0]; } a[0]; return 0; }"
BROKEN_SOURCE = "int main( { nope"

#: Two secret-dependent branches -> multiple speculation scenarios, so a
#: sharded run exercises round/shard progress events.
SHARDY_SOURCE = """
char table[4096]; int k;
int main() {
  int x = 0;
  if (k > 0) { x = x + table[k * 64]; }
  if (k > 1) { x = x + table[128]; }
  return x;
}
"""


def distinct_request(i: int) -> AnalysisRequest:
    return AnalysisRequest.speculative(
        f"char a{i}[{64 * (i + 1)}]; int main() {{ a{i}[0]; return 0; }}"
    )


# ----------------------------------------------------------------------
# Job lifecycle event logs (scheduler level)
# ----------------------------------------------------------------------
class TestLifecycleEvents:
    def test_full_lifecycle_sequence(self):
        with JobScheduler(AnalysisEngine(), max_workers=1) as sched:
            job = sched.submit(AnalysisRequest.speculative(SHARDY_SOURCE))
            job.result(timeout=60)
        events = job.events.snapshot()
        names = [event["event"] for event in events]
        assert names[0] == "queued"
        assert "dispatched" in names and "running" in names
        assert names[-1] == "done"
        assert names.index("dispatched") < names.index("running")
        # Monotonic seq and t stamps, every event attributed to the job.
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)
        assert all(a["t"] <= b["t"] for a, b in zip(events, events[1:]))
        assert all(event["job_id"] == job.id for event in events)
        queued = events[0]
        assert queued["priority"] == "normal" and queued["label"]
        done = events[-1]
        assert done["execute_seconds"] >= 0 and done["e2e_seconds"] >= 0
        dispatched = next(e for e in events if e["event"] == "dispatched")
        assert dispatched["queued_seconds"] >= 0

    def test_analysis_publishes_progress_into_the_job_log(self):
        with JobScheduler(AnalysisEngine(), max_workers=1) as sched:
            job = sched.submit(
                AnalysisRequest.speculative(SHARDY_SOURCE, scenario_shards=2)
            )
            job.result(timeout=60)
        progress = [e for e in job.events.snapshot() if e["event"] == "progress"]
        phases = {e["phase"] for e in progress}
        assert "fixpoint" in phases and "classify" in phases
        assert "fixpoint.round" in phases, "sharded solves must report rounds"

    def test_coalesced_job_logs_only_its_own_enqueue(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        request = AnalysisRequest.speculative(SOURCE)
        primary = sched.submit(request)
        follower = sched.submit(request)
        assert follower.coalesced
        sched.start_workers()
        with sched:
            follower.result(timeout=60)
        own = [e["event"] for e in follower.events.snapshot()]
        assert own == ["queued", "coalesced"]
        coalesced = follower.events.snapshot()[1]
        assert coalesced["into"] == primary.id
        # Execution events live on the primary.
        assert [e["event"] for e in primary.events.snapshot()][-1] == "done"

    def test_failed_job_records_the_error(self):
        with JobScheduler(AnalysisEngine(), max_workers=1) as sched:
            job = sched.submit(AnalysisRequest.speculative(BROKEN_SOURCE))
            with pytest.raises(Exception):
                job.result(timeout=60)
        terminal = job.events.snapshot()[-1]
        assert terminal["event"] == "failed" and terminal["error"]

    def test_cancelled_job_records_the_event(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        job = sched.submit(distinct_request(0))
        assert sched.cancel(job.id)
        assert [e["event"] for e in job.events.snapshot()] == ["queued", "cancelled"]

    def test_status_reports_current_phase(self):
        with JobScheduler(AnalysisEngine(), max_workers=1) as sched:
            job = sched.submit(
                AnalysisRequest.speculative(SHARDY_SOURCE, scenario_shards=2)
            )
            job.result(timeout=60)
        # The last reported phase survives on the job and in its status.
        assert job.phase is not None
        assert job.status()["phase"] == job.phase

    def test_queue_depth_per_priority(self):
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        sched.submit(distinct_request(0), priority="high")
        sched.submit(distinct_request(1))
        sched.submit(distinct_request(2))
        depth = sched.stats.queue_depth
        assert depth == {"high": 1, "normal": 2, "low": 0}
        # Cancelling decrements immediately (no wait for a dispatcher).
        jobs = sched.recent_jobs()
        sched.cancel(jobs[1]["job_id"])
        assert sched.stats.queue_depth["normal"] == 1
        sched.start_workers()
        with sched:
            sched.drain(timeout=60)
        assert all(d == 0 for d in sched.stats.queue_depth.values())

    def test_latency_histograms_fed(self):
        from repro.obs import metrics

        with JobScheduler(AnalysisEngine(), max_workers=1) as sched:
            sched.submit(distinct_request(0)).result(timeout=60)
        snapshot = metrics().snapshot()
        for name in (
            "scheduler.queue_wait_seconds",
            "scheduler.execute_seconds",
            "scheduler.e2e_seconds",
        ):
            assert snapshot[name]["count"] >= 1, f"{name} never observed"

    def test_slow_job_log_catches_threshold_breaches(self):
        with JobScheduler(
            AnalysisEngine(), max_workers=1, slow_job_seconds=1e-9
        ) as sched:
            job = sched.submit(distinct_request(0))
            job.result(timeout=60)
        assert sched.stats.slow_jobs >= 1
        slow = sched.slow_jobs()
        assert slow and slow[-1]["job_id"] == job.id
        assert slow[-1]["e2e_seconds"] > 0

    def test_slow_job_log_disabled_at_zero(self):
        with JobScheduler(
            AnalysisEngine(), max_workers=1, slow_job_seconds=0.0
        ) as sched:
            sched.submit(distinct_request(0)).result(timeout=60)
        assert sched.stats.slow_jobs == 0 and sched.slow_jobs() == []

    def test_slow_job_threshold_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_JOB_SECONDS", "123.5")
        sched = JobScheduler(AnalysisEngine(), max_workers=1, autostart=False)
        assert sched.slow_job_seconds == 123.5

    def test_recent_jobs_view(self):
        with JobScheduler(AnalysisEngine(), max_workers=1) as sched:
            jobs = [sched.submit(distinct_request(i)) for i in range(3)]
            sched.drain(timeout=60)
            recent = sched.recent_jobs(limit=2)
        assert len(recent) == 2
        assert {entry["job_id"] for entry in recent} <= {job.id for job in jobs}
        assert all(entry["state"] == "done" for entry in recent)


# ----------------------------------------------------------------------
# Progress must never perturb results (the observational contract)
# ----------------------------------------------------------------------
class TestProgressDifferential:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_identical_results_with_progress_on_and_off(self, backend):
        request = AnalysisRequest.speculative(
            SHARDY_SOURCE, scenario_shards=2, shard_backend=backend
        )
        silent = execute_request(request)
        collector = CollectingReporter()
        with reporting(collector):
            reported = execute_request(request)
        assert result_fingerprint(reported) == result_fingerprint(silent)
        assert reported.iterations == silent.iterations
        assert reported.entry_states == silent.entry_states
        assert reported.classifications == silent.classifications
        phases = {event["phase"] for event in collector.events}
        assert "fixpoint" in phases and "classify" in phases

    def test_processes_backend_relays_worker_progress(self):
        request = AnalysisRequest.speculative(
            SHARDY_SOURCE, scenario_shards=2, shard_backend="processes"
        )
        collector = CollectingReporter()
        with reporting(collector):
            execute_request(request)
        shard_events = [
            e for e in collector.events if e["phase"] == "fixpoint.shard"
        ]
        assert shard_events, "workers must relay per-shard progress"
        worker_pids = {e["pid"] for e in shard_events}
        assert worker_pids and os.getpid() not in worker_pids, (
            "relayed shard events must carry the worker's pid"
        )

    def test_publish_without_reporter_is_a_noop(self):
        from repro.obs import current_reporter, publish_progress

        assert current_reporter().active is False
        publish_progress("fixpoint", pops=1)  # must not raise


# ----------------------------------------------------------------------
# Daemon surface: watch / events / top / metrics
# ----------------------------------------------------------------------
@pytest.fixture
def server():
    srv = ReproServer(port=0, max_workers=1).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as cli:
        yield cli


class TestWatchRPC:
    def test_watch_streams_the_full_lifecycle(self, client):
        job_id = client.submit(
            AnalysisRequest.speculative(SHARDY_SOURCE, scenario_shards=2)
        )
        seen: list[dict] = []
        status = client.watch(job_id, on_event=seen.append, timeout=60)
        assert status["state"] == "done"
        names = [event["event"] for event in seen]
        assert names[0] == "queued" and names[-1] == "done"
        assert "progress" in names, "watch must stream live progress"
        assert [e["seq"] for e in seen] == sorted(e["seq"] for e in seen)
        # The connection survives a completed stream.
        assert client.ping() > 0

    def test_watch_a_finished_job_replays_its_log(self, client):
        job_id = client.submit(AnalysisRequest.speculative(SOURCE))
        client.result(job_id, timeout=60)
        seen: list[dict] = []
        status = client.watch(job_id, on_event=seen.append, timeout=10)
        assert status["state"] == "done"
        assert [e["event"] for e in seen][-1] == "done"

    def test_watch_unknown_job_errors_and_connection_survives(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.watch("job-424242")
        assert client.ping() > 0

    def test_watch_emits_heartbeats_while_the_job_waits(self, server, monkeypatch):
        """Raw-socket watch of a job whose execution stalls (the engine
        is slowed artificially): the daemon must keep the stream alive
        with heartbeat lines while no events arrive."""
        real_run_batch = server.engine.run_batch

        def slow_run_batch(requests, **kwargs):
            time.sleep(0.5)
            return real_run_batch(requests, **kwargs)

        monkeypatch.setattr(server.engine, "run_batch", slow_run_batch)
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as conn:
            reader = conn.makefile("rb")

            def call(payload: dict) -> dict:
                conn.sendall(json.dumps(payload).encode() + b"\n")
                return json.loads(reader.readline())

            parked_id = call(
                {"op": "submit", "request": _wire(distinct_request(7))}
            )["job_id"]
            conn.sendall(
                json.dumps(
                    {"op": "watch", "job_id": parked_id, "heartbeat": 0.05,
                     "timeout": 60}
                ).encode() + b"\n"
            )
            heartbeats = 0
            while True:
                line = json.loads(reader.readline())
                assert line["ok"] is True
                if "heartbeat" in line:
                    heartbeats += 1
                if line.get("done"):
                    assert line["job"]["state"] == "done"
                    break
        assert heartbeats >= 1, "an idle stream must prove the daemon is alive"


def _wire(request: AnalysisRequest) -> dict:
    from repro.service.wire import request_to_wire

    return request_to_wire(request)


class TestEventsTopMetricsRPCs:
    def test_events_rpc_returns_the_lifecycle(self, client):
        job_id = client.submit(AnalysisRequest.speculative(SOURCE))
        client.result(job_id, timeout=60)
        events = client.events(job_id)
        names = [event["event"] for event in events]
        assert names[0] == "queued" and "done" in names
        assert all(event["job_id"] == job_id for event in events)

    def test_events_rpc_concatenates_a_coalesced_jobs_primary(self, server):
        # Hold the queue with a first job so the duplicate coalesces.
        with ServiceClient(port=server.port) as cli:
            request = AnalysisRequest.speculative(SHARDY_SOURCE, scenario_shards=2)
            primary_id = cli.submit(request)
            follower_id = cli.submit(request)
            cli.result(follower_id, timeout=60)
            events = cli.events(follower_id)
            own = [e for e in events if e["job_id"] == follower_id]
            if any(e["event"] == "coalesced" for e in own):
                relayed = [e for e in events if e["job_id"] == primary_id]
                assert any(e["event"] == "done" for e in relayed), (
                    "a coalesced job's events must include its primary's"
                )

    def test_top_rpc_frame(self, client):
        job_id = client.submit(AnalysisRequest.speculative(SOURCE))
        client.result(job_id, timeout=60)
        top = client.top(limit=8)
        assert top["max_workers"] == 1
        assert "queue_depth" in top["scheduler"]
        assert any(job["job_id"] == job_id for job in top["jobs"])
        assert all(name.startswith("scheduler.") for name in top["metrics"])
        json.dumps(top)  # the whole frame is JSON-clean

    def test_metrics_rpc_snapshot_is_renderable(self, client):
        client.analyze(AnalysisRequest.speculative(SOURCE), timeout=60)
        snapshot = client.metrics()
        assert snapshot["fixpoint.pops"]["type"] == "counter"
        text = render_prometheus(snapshot)
        assert "repro_fixpoint_pops_total" in text
        assert 'le="+Inf"' in text

    def test_stats_rpc_includes_slow_jobs(self, client):
        assert client.stats()["slow_jobs"] == []


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: One sample line: name, optional {labels}, a number.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[^}]*)?\})?"
    r" (NaN|[-+]?[0-9.eE+-]+|\+Inf)$"
)


class TestPrometheusExposition:
    def test_every_line_is_valid_exposition(self, client):
        client.analyze(
            AnalysisRequest.speculative(SHARDY_SOURCE, scenario_shards=2),
            timeout=60,
        )
        text = render_prometheus(client.metrics())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE.match(line), f"invalid exposition line: {line!r}"

    def test_histogram_buckets_are_cumulative_and_capped(self, client):
        client.analyze(AnalysisRequest.speculative(SOURCE), timeout=60)
        text = render_prometheus(client.metrics())
        buckets: dict[str, list[tuple[str, int]]] = {}
        counts: dict[str, int] = {}
        for line in text.splitlines():
            if "_bucket{" in line:
                name = line.split("_bucket{", 1)[0]
                le = line.split('le="', 1)[1].split('"', 1)[0]
                buckets.setdefault(name, []).append((le, int(line.rsplit(" ", 1)[1])))
            elif " " in line and line.split(" ", 1)[0].endswith("_count"):
                name = line.split(" ", 1)[0][: -len("_count")]
                counts[name] = int(line.rsplit(" ", 1)[1])
        assert buckets, "at least one histogram must be exposed"
        for name, series in buckets.items():
            values = [value for _, value in series]
            assert values == sorted(values), f"{name} buckets not cumulative"
            assert series[-1][0] == "+Inf"
            assert series[-1][1] == counts[name], f"{name} +Inf != count"

    def test_cli_stats_prom_flag(self, server, capsys):
        from repro.service.cli import main as cli_main

        with ServiceClient(port=server.port) as cli:
            cli.analyze(AnalysisRequest.speculative(SOURCE), timeout=60)
        assert cli_main(["stats", "--prom", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_scheduler_e2e_seconds histogram" in out
        assert "repro_fixpoint_pops_total" in out


# ----------------------------------------------------------------------
# Daemon trace relay under the process backend (worker spans)
# ----------------------------------------------------------------------
class TestTraceRelayOverProcesses:
    def test_trace_rpc_includes_worker_shard_spans(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "processes")
        with ServiceClient(port=server.port) as cli:
            cli.analyze(
                AnalysisRequest.speculative(SHARDY_SOURCE, scenario_shards=2),
                timeout=120,
            )
            spans = cli.trace(cli.last_job_id)
        by_name: dict[str, list[dict]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert "scheduler.batch" in by_name and "fixpoint" in by_name
        shard_spans = by_name.get("fixpoint.shard", [])
        assert shard_spans, "worker shard spans must be relayed to the master"
        worker_pids = {span["pid"] for span in shard_spans}
        assert worker_pids and os.getpid() not in worker_pids, (
            "relayed spans must carry the worker process's pid"
        )
        # Grafted into one trace: every span shares the dispatch trace id.
        assert len({span["trace_id"] for span in spans}) == 1


# ----------------------------------------------------------------------
# Client robustness: bounded connect retry, configurable timeouts
# ----------------------------------------------------------------------
class TestClientRobustness:
    def test_dead_daemon_fails_fast_with_attempt_count(self):
        # Bind-then-close guarantees a refused port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.monotonic()
        with pytest.raises(ServiceError, match=r"after 2 attempt\(s\)"):
            ServiceClient(
                port=port,
                connect_timeout=0.5,
                connect_retries=1,
                connect_backoff=0.01,
            )
        assert time.monotonic() - started < 5.0, "a dead daemon must fail fast"

    def test_retry_disabled_reports_one_attempt(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceError, match=r"after 1 attempt\(s\)"):
            ServiceClient(port=port, connect_timeout=0.2, connect_retries=0)

    def test_connect_timeout_defaults_to_min_of_timeout(self, server):
        with ServiceClient(port=server.port, timeout=5.0) as cli:
            assert cli.timeout == 5.0
            assert cli.ping() > 0
        with ServiceClient(port=server.port, connect_timeout=2.0) as cli:
            assert cli.ping() > 0
