#!/usr/bin/env python3
"""Quickstart: analyse the paper's Figure 2 program.

This walks through the whole pipeline on the motivating example:

1. build a declarative analysis request and compile it through the
   engine (repeat runs hit the compile cache);
2. run the classical (non-speculative) must-hit cache analysis;
3. run the speculation-sound analysis of the paper;
4. compare both against a concrete speculative execution.

Everything is submitted through the process-wide
:class:`~repro.engine.engine.AnalysisEngine` — the same path the
``repro`` daemon serves — so re-running a request is answered from the
result cache instead of re-executing the fixpoint.

Run with::

    python examples/quickstart.py
"""

from repro import AnalysisRequest, default_engine
from repro.bench.programs import motivating_example_source
from repro.cache.config import CacheConfig
from repro.speculation.predictor import OpposingPredictor, PerfectPredictor
from repro.speculation.simulator import SpeculativeSimulator


def main() -> None:
    # The Figure 2 program, sized for the paper's 512-line 32-KB data cache.
    source = motivating_example_source(num_lines=512, line_size=64)
    cache = CacheConfig.paper_default()
    engine = default_engine()

    print("=== compiling (through the engine's compile cache) ===")
    baseline_request = AnalysisRequest.baseline(source, cache_config=cache)
    speculative_request = AnalysisRequest.speculative(source, cache_config=cache)
    program = engine.compile(baseline_request)
    print(f"entry function: {program.cfg.name}")
    print(f"basic blocks:   {len(program.cfg.blocks)}")
    print(f"instructions:   {program.cfg.instruction_count}")
    print(f"memory blocks:  {program.layout.total_blocks}")
    print()

    print("=== classical must-hit analysis (Algorithm 1) ===")
    baseline = engine.run(baseline_request)
    print(baseline.summary())
    print()

    print("=== speculation-sound analysis (Algorithms 2/3) ===")
    speculative = engine.run(speculative_request)
    print(speculative.summary())
    print()

    secret_base = [c for c in baseline.normal_classifications() if c.secret_indexed][0]
    secret_spec = [c for c in speculative.normal_classifications() if c.secret_indexed][0]
    print("the secret-indexed access ph[k]:")
    print(f"  non-speculative analysis: must hit = {secret_base.must_hit}")
    print(f"  speculative analysis:     must hit = {secret_spec.must_hit}, "
          f"secret dependent = {secret_spec.secret_dependent}")
    print()

    print("=== concrete executions (Figure 3) ===")
    perfect = SpeculativeSimulator(
        program, cache_config=cache, predictor=PerfectPredictor()
    ).run()
    mispredicted = SpeculativeSimulator(
        program, cache_config=cache, predictor=OpposingPredictor(), excursion_length=2
    ).run()
    print(f"correct prediction:  {perfect.stats.misses} misses + {perfect.stats.hits} hit")
    print(f"misprediction:       {mispredicted.stats.misses} misses "
          f"({mispredicted.stats.observable_misses} observable)")
    print()
    print("The non-speculative analysis certifies the final access as a hit, "
          "yet a single misprediction makes it miss — exactly the unsoundness "
          "the paper fixes.")
    print()

    print("=== the service view ===")
    replay = engine.run(speculative_request)
    print(f"re-running the speculative request: from_cache = {replay.from_cache}")
    print(engine.stats)


if __name__ == "__main__":
    main()
