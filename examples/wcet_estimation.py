#!/usr/bin/env python3
"""Execution-time estimation on the WCET benchmark set (Table 5 scenario).

For each synthetic Mälardalen/MiBench-style kernel the script runs both
analyses and prints a Table-5-shaped comparison, plus the derived
worst-case cycle estimates showing how much the non-speculative bound
underestimates.

All work is submitted through the process-wide analysis engine (the path
the ``repro`` daemon serves): each kernel compiles once for both
analysis flavours, and re-running the script inside one process would be
answered entirely from the result cache.  ``repro wcet`` is the
daemon-backed equivalent of this script.

Run with::

    python examples/wcet_estimation.py [benchmark ...]
"""

import sys

from repro import AnalysisRequest, default_engine
from repro.apps.report import format_comparison_table
from repro.apps.wcet import compare_wcet
from repro.bench.programs import WCET_BENCHMARKS, wcet_benchmark_source
from repro.bench.tables import BENCH_CACHE, BENCH_SPECULATION


def main(argv: list[str]) -> None:
    names = argv or ["adpcm", "susan", "jcmarker", "g72", "vga"]
    unknown = [name for name in names if name not in WCET_BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmarks {unknown}; available: {sorted(WCET_BENCHMARKS)}")

    engine = default_engine()
    rows = []
    for name in names:
        source = wcet_benchmark_source(name, BENCH_CACHE.num_lines, BENCH_CACHE.line_size)
        program = engine.compile(
            AnalysisRequest.speculative(source, line_size=BENCH_CACHE.line_size)
        )
        row = compare_wcet(
            program,
            cache_config=BENCH_CACHE,
            speculation=BENCH_SPECULATION,
            name=name,
            engine=engine,
        )
        rows.append(row)

    print(format_comparison_table(rows, title="Execution time estimation (Table 5 shape)"))
    print()
    print("worst-case cycle estimates (hit latency "
          f"{BENCH_CACHE.hit_latency}, miss penalty {BENCH_CACHE.miss_penalty}):")
    for row in rows:
        gap = row.speculative.estimated_cycles - row.non_speculative.estimated_cycles
        flag = "UNDERESTIMATED" if row.underestimated else "tight"
        print(
            f"  {row.name:10s} non-speculative {row.non_speculative.estimated_cycles:7d}  "
            f"speculative {row.speculative.estimated_cycles:7d}  (+{gap}, {flag})"
        )
    print()
    print(engine.stats)


if __name__ == "__main__":
    main(sys.argv[1:])
