#!/usr/bin/env python3
"""Mitigation synthesis: the detect → repair → re-verify loop.

For each requested Table-7 crypto kernel, this script detects the
speculative cache side channel in its Figure-10 client harness, then
asks :func:`repro.mitigation.synthesize_mitigation` for a fence
placement that closes it.  Two placements are compared:

* the fence-every-branch **baseline** (no analysis, every source branch
  arm fenced — what blind ``lfence`` hardening does), and
* the **optimized** placement found by the dominator-guided greedy
  minimiser, which re-analyses every candidate through the engine and
  keeps only fences that provably remove leak sites.

Both must re-analyse to zero leak sites; the synthesiser refuses to
return anything unverified.  ``repro mitigate`` is the daemon-backed
equivalent of this script.

Run with::

    python examples/mitigation_synthesis.py [kernel ...]
"""

import sys

from repro import default_engine
from repro.bench.crypto import CRYPTO_BENCHMARKS
from repro.bench.tables import table7_client_request
from repro.mitigation import synthesize_mitigation


def main(argv: list[str]) -> None:
    names = argv or ["hash", "des"]
    unknown = [name for name in names if name not in CRYPTO_BENCHMARKS]
    if unknown:
        raise SystemExit(
            f"unknown kernels {unknown}; available: {sorted(CRYPTO_BENCHMARKS)}"
        )

    engine = default_engine()
    for name in names:
        result = synthesize_mitigation(table7_client_request(name), engine=engine)

        print(f"== {name} ==")
        if result.already_safe:
            print("  no leak detected; nothing to mitigate\n")
            continue
        for site in result.leak_sites:
            print(
                f"  leak: secret-indexed access to {site.symbol!r} "
                f"(line {site.line}, block {site.block})"
            )
        baseline, optimized = result.baseline, result.optimized
        if baseline is None:
            # The incremental loop only scores the fence-every-branch
            # strawman when the minimiser fails to verify a placement.
            print("  baseline : skipped (optimized placement verified)")
        else:
            print(
                f"  baseline : {baseline.source_fences} fences, "
                f"WCET overhead {baseline.wcet_overhead_cycles:+d} cycles, "
                f"verified={baseline.verified}"
            )
        if optimized is not None:
            placed = ", ".join(point.describe() for point in optimized.points)
            print(
                f"  optimized: {optimized.source_fences} fences, "
                f"WCET overhead {optimized.wcet_overhead_cycles:+d} cycles, "
                f"verified={optimized.verified}"
            )
            print(f"             at: {placed}")
        print(
            f"  chosen {result.chosen!r} after {result.analyses_run} engine "
            f"analyses ({result.synthesis_time:.2f}s)\n"
        )

    print(engine.stats)


if __name__ == "__main__":
    main(sys.argv[1:])
