#!/usr/bin/env python3
"""Comparing the merge strategies of Figure 6 (Table 6 scenario).

The script analyses the Figure 7 diamond and a few WCET kernels under all
four strategies, showing the precision/cost trade-off the paper discusses
(Just-in-Time merging is the recommended one), and prints the abstract
cache state at the merge point of the Figure 7 example for each strategy.

The four per-strategy analyses are submitted to the process-wide engine
as one batch, so the diamond compiles once and the requests deduplicate
and (with ``REPRO_MAX_WORKERS``) fan out exactly as daemon traffic would.

Run with::

    python examples/merge_strategies.py
"""

from repro import AnalysisRequest, default_engine
from repro.apps.report import format_merge_table
from repro.bench.programs import figure7_source
from repro.bench.tables import generate_table6
from repro.cache.config import CacheConfig
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy


def figure7_states() -> None:
    print("=== Figure 7: abstract state at the merge point (4-line cache) ===")
    source = figure7_source()
    cache = CacheConfig.small(num_lines=4)
    engine = default_engine()
    requests = [
        AnalysisRequest.speculative(
            source,
            cache_config=cache,
            speculation=SpeculationConfig(
                depth_miss=2, depth_hit=2, merge_strategy=strategy
            ),
            label=f"figure7-{strategy.name.lower()}",
        )
        for strategy in MergeStrategy
    ]
    program = engine.compile(requests[0])
    merge_block = [
        name
        for name in program.cfg.reachable_blocks()
        if any(ref.symbol == "a" for ref in program.cfg.block(name).memory_refs())
    ][-1]
    results = engine.run_batch(requests)
    for strategy, result in zip(MergeStrategy, results):
        state = result.entry_states[merge_block]
        cached = sorted(
            str(block) for block in state.cached_blocks() if not block.is_placeholder
        )
        hits = result.hit_count
        print(f"  {strategy.name:18s} ({strategy.figure_label}): "
              f"guaranteed cached at merge = {cached}  must-hits = {hits}")
    print()
    print("  non-speculatively, a/b/c are all cached at the merge point; a sound")
    print("  speculative analysis must drop 'a', and Just-in-Time merging keeps")
    print("  the precision on 'b' and 'c' (the Figure 7 bottom-right state).")
    print()


def table6() -> None:
    print("=== Table 6: merge-at-rollback vs Just-in-Time on the WCET set ===")
    rows = generate_table6(names=["adpcm", "susan", "jcmarker", "stc"])
    print(format_merge_table(rows, title=""))
    print()
    for name, rollback, jit in rows:
        better = "more precise" if jit.speculative.misses < rollback.speculative.misses else "equal"
        print(f"  {name}: JIT is {better} "
              f"({jit.speculative.misses} vs {rollback.speculative.misses} potential misses)")


def main() -> None:
    figure7_states()
    table6()
    print()
    print(default_engine().stats)


if __name__ == "__main__":
    main()
