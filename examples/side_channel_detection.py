#!/usr/bin/env python3
"""Timing side-channel detection on the crypto benchmark set (Table 7
scenario).

Each kernel is wrapped in the paper's Figure-10 client harness (preload an
S-box, touch an attacker-controlled buffer, run the kernel, access the
S-box with the secret key) and analysed both ways.  The script also shows
the buffer-size sweep the paper describes for one kernel.

Compilation and both analyses go through the process-wide engine (the
same path the ``repro`` daemon serves), so every harness compiles once
and the sweep benefits from the result cache; ``repro sidechannel`` is
the daemon-backed equivalent.

Run with::

    python examples/side_channel_detection.py [kernel ...]
"""

import sys

from repro import AnalysisRequest, default_engine
from repro.apps.report import format_leak_table
from repro.apps.sidechannel import compare_leaks
from repro.bench.client import build_client_source
from repro.bench.crypto import CRYPTO_BENCHMARKS, crypto_kernel
from repro.bench.tables import BENCH_CACHE, BENCH_SPECULATION, TABLE7_BUFFER_BYTES
from repro.bench.workloads import sweep_buffer_sizes


def main(argv: list[str]) -> None:
    names = argv or ["hash", "encoder", "des", "aes", "salsa"]
    unknown = [name for name in names if name not in CRYPTO_BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown kernels {unknown}; available: {sorted(CRYPTO_BENCHMARKS)}")

    engine = default_engine()
    rows = []
    for name in names:
        kernel = crypto_kernel(name, BENCH_CACHE.num_lines, BENCH_CACHE.line_size)
        buffer_bytes = TABLE7_BUFFER_BYTES.get(name, BENCH_CACHE.size_bytes)
        source = build_client_source(kernel, buffer_bytes, line_size=BENCH_CACHE.line_size)
        program = engine.compile(
            AnalysisRequest.speculative(source, line_size=BENCH_CACHE.line_size)
        )
        rows.append(
            compare_leaks(
                program,
                cache_config=BENCH_CACHE,
                speculation=BENCH_SPECULATION,
                buffer_bytes=buffer_bytes,
                name=name,
                engine=engine,
            )
        )
    print(format_leak_table(rows, title="Side-channel detection (Table 7 shape)"))
    print()

    for row in rows:
        if row.leak_only_under_speculation:
            sites = ", ".join(
                f"{site.symbol} ({site.block}:{site.instruction_index})"
                for site in row.speculative.leak_sites
            )
            print(f"  {row.name}: leak visible only under speculation at {sites}")

    # The paper's buffer-size sweep, shown for the first kernel.
    sweep_name = names[0]
    print()
    print(f"buffer sweep for {sweep_name!r} (speculative / non-speculative leak):")
    sizes = range(BENCH_CACHE.size_bytes, -1, -8 * BENCH_CACHE.line_size)
    for point in sweep_buffer_sizes(
        sweep_name, BENCH_CACHE, BENCH_SPECULATION, buffer_sizes=sizes
    ):
        spec = "leak" if point.comparison.speculative.leak_detected else "  -  "
        base = "leak" if point.comparison.non_speculative.leak_detected else "  -  "
        marker = "  <-- analyses disagree" if point.distinguishes else ""
        print(f"  {point.buffer_bytes:6d} bytes:  {spec} / {base}{marker}")
    print()
    print(engine.stats)


if __name__ == "__main__":
    main(sys.argv[1:])
