"""Shared transfer-function plumbing for the cache analyses.

Both the baseline and the speculative analysis iterate the same basic
operation: push an abstract cache state through the memory accesses of a
basic block.  This module pre-resolves every instruction's
:class:`MemoryRef` to a :class:`BlockAccess` once per program and
provides the block-level transfer and classification helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.abstract import CacheState
from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssocCacheState
from repro.cache.shadow import ShadowCacheState
from repro.ir.cfg import CFG
from repro.ir.memory import AccessKind, BlockAccess, MemoryLayout
from repro.analysis.result import AccessClassification


@dataclass(frozen=True)
class SiteAccess:
    """A static access site: instruction position plus resolved access."""

    instruction_index: int
    access: BlockAccess


class AccessTable:
    """Pre-resolved memory accesses for every block of a CFG."""

    def __init__(self, cfg: CFG, layout: MemoryLayout):
        self.cfg = cfg
        self.layout = layout
        self._by_block: dict[str, list[SiteAccess]] = {}
        for name in cfg.reachable_blocks():
            sites: list[SiteAccess] = []
            for index, instruction in enumerate(cfg.block(name).instructions):
                for ref in instruction.memory_refs():
                    sites.append(
                        SiteAccess(instruction_index=index, access=layout.resolve(ref))
                    )
            self._by_block[name] = sites

    def sites(self, block: str) -> list[SiteAccess]:
        return self._by_block.get(block, [])

    def sites_up_to(self, block: str, instruction_limit: int | None) -> list[SiteAccess]:
        """Sites of the first ``instruction_limit`` instructions (all when None)."""
        sites = self._by_block.get(block, [])
        if instruction_limit is None:
            return sites
        return [site for site in sites if site.instruction_index < instruction_limit]

    @property
    def total_sites(self) -> int:
        return sum(len(sites) for sites in self._by_block.values())


def new_entry_state(config: CacheConfig, use_shadow: bool):
    """Fresh empty-cache state of the flavour ``config`` calls for.

    Fully-associative geometries use the flat single-set domain (the
    paper's default, bit-identical to the pre-geometry behaviour);
    set-associative ones use the per-set product domain.  Both honour
    ``config.policy``.
    """
    if config.is_fully_associative:
        flavour = ShadowCacheState if use_shadow else CacheState
        return flavour.empty(config.num_lines, policy=config.policy)
    return SetAssocCacheState.empty(config, use_shadow)


def new_bottom_state(config: CacheConfig, use_shadow: bool):
    if config.is_fully_associative:
        flavour = ShadowCacheState if use_shadow else CacheState
        return flavour.bottom(config.num_lines, policy=config.policy)
    return SetAssocCacheState.bottom(config, use_shadow)


def transfer_block(state, table: AccessTable, block: str, instruction_limit: int | None = None):
    """Push ``state`` through the accesses of ``block``.

    Returns the state after the last (allowed) instruction.
    """
    current = state
    for site in table.sites_up_to(block, instruction_limit):
        current = current.access(site.access)
    return current


def transfer_block_with_prefix_join(
    state, table: AccessTable, block: str, instruction_limit: int | None = None
):
    """Like :func:`transfer_block`, but also return the join of the states
    after *every* prefix of the block.

    The prefix join is exactly the state contributed by a rollback that may
    happen at any point inside the block (Section 5.2): the merge of all
    possible rollback points.
    """
    current = state
    prefix_join = state
    for site in table.sites_up_to(block, instruction_limit):
        current = current.access(site.access)
        prefix_join = prefix_join.join(current)
    return current, prefix_join


def classify_block(
    state,
    table: AccessTable,
    block: str,
    secret_symbols: set[str],
    instruction_limit: int | None = None,
    speculative: bool = False,
    scenario_color: int | None = None,
) -> list[AccessClassification]:
    """Walk ``block`` from ``state`` and classify each access site."""
    classifications: list[AccessClassification] = []
    current = state
    for site in table.sites_up_to(block, instruction_limit):
        access = site.access
        must_hit = current.must_hit_access(access)
        secret_indexed = access.kind is AccessKind.SECRET
        secret_dependent = False
        if secret_indexed and not getattr(current, "is_bottom", False):
            hit_blocks = sum(1 for b in access.blocks if current.must_hit(b))
            secret_dependent = 0 < hit_blocks < len(access.blocks)
        classifications.append(
            AccessClassification(
                block=block,
                instruction_index=site.instruction_index,
                ref=access.ref,
                kind=access.kind,
                must_hit=must_hit,
                speculative=speculative,
                scenario_color=scenario_color,
                secret_indexed=secret_indexed,
                secret_dependent=secret_dependent,
            )
        )
        current = current.access(access)
    return classifications
