"""Algorithm 1: the classical non-speculative must-hit cache analysis.

This is the state-of-the-art baseline the paper compares against
(Ferdinand & Wilhelm-style must analysis, as used by CacheAudit and the
program-repair work of [62]).  It is sound for processors without
speculative execution and — as the paper demonstrates — unsound with it.
"""

from __future__ import annotations

from repro.ai.solver import solve_forward
from repro.analysis.result import CacheAnalysisResult
from repro.analysis.transfer import (
    AccessTable,
    classify_block,
    new_bottom_state,
    new_entry_state,
    transfer_block,
)
from repro.cache.config import CacheConfig
from repro.frontend import CompiledProgram
from repro.obs import metrics, span


def analyze_baseline(
    program: CompiledProgram,
    cache_config: CacheConfig | None = None,
    use_shadow_state: bool = True,
) -> CacheAnalysisResult:
    """Run the non-speculative must-hit analysis on ``program``.

    Parameters
    ----------
    program:
        Output of :func:`repro.compile_source`.
    cache_config:
        Cache geometry; defaults to the paper's 512 x 64-byte LRU cache.
    use_shadow_state:
        Use the shadow-variable refined state (Section 6.3).  The paper
        applies the refinement to both the baseline and the speculative
        analysis; disable it to reproduce Figure 11's precision loss.
    """
    config = cache_config or CacheConfig.paper_default()
    cfg = program.cfg
    table = AccessTable(cfg, program.layout)
    secret_symbols = set(program.info.secret_symbols)

    # The public `analysis_time` is derived from the span's duration:
    # the span always times itself, sinks or not.
    with span("fixpoint", program=cfg.name, kind="baseline") as fixpoint_span:
        result = solve_forward(
            cfg,
            entry_state=new_entry_state(config, use_shadow_state),
            bottom=new_bottom_state(config, use_shadow_state),
            transfer=lambda name, state: transfer_block(state, table, name),
        )
        fixpoint_span.set(iterations=result.iterations, widenings=result.widenings)
    metrics().counter("fixpoint.pops").inc(result.iterations)
    metrics().counter("fixpoint.widenings").inc(result.widenings)

    analysis = CacheAnalysisResult(
        program_name=cfg.name,
        cache_config=config,
        speculation=None,
        entry_states=dict(result.entry_states),
        iterations=result.iterations,
        widenings=result.widenings,
        analysis_time=fixpoint_span.duration,
    )
    with span("classify", program=cfg.name) as classify_span:
        for block in cfg.reachable_blocks():
            state = result.entry_states[block]
            if getattr(state, "is_bottom", False):
                continue
            analysis.classifications.extend(
                classify_block(state, table, block, secret_symbols)
            )
        classify_span.set(sites=len(analysis.classifications))
    return analysis
