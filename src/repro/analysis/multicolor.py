"""The lifted worklist engine with per-color speculative states
(Algorithms 2 and 3 of the paper).

Every basic block ``n`` carries a *normal* abstract state ``S[n]`` plus a
dictionary of *speculative* states ``SS[n][slot]``.  Slots are the
engine's realisation of the paper's colors:

* ``("window", c)`` — the cache state while scenario ``c``'s mispredicted
  branch is being speculatively executed (between ``vn_start`` and the
  rollback);
* ``("resume", c)`` or ``("resume", c, origin)`` — the cache state after
  the rollback, while the correct branch executes, carried until the
  conversion point (``vn_stop``).  Collapsing strategies (Figures 6c/6d)
  use a single resume slot per color; non-collapsing ones (6a/6b) keep one
  per rollback block.

The propagation rules correspond one-to-one to the virtual control-flow
edges of Section 5.1:

1. *Injection* (``n — vn_start`` and ``vn_start — n``): when a branch
   block is processed, its post-transfer normal state is copied into the
   window slot of each of its scenarios at the mispredicted target.
2. *Window propagation* (``n — n``): window slots flow along ordinary CFG
   edges between blocks of the active speculative window, with the block
   transfer truncated to the window's instruction allowance.
3. *Rollback* (``n — vn_stop``): each window block contributes the join of
   all its prefix states to the correct branch — either directly into the
   normal state (merge-at-rollback) or into a resume slot.
4. *Conversion* (``vn_stop — n``): resume slots flowing into the
   scenario's convergence block are joined into the normal state there and
   stop propagating.

Execution modes
---------------

``mode="sparse"`` (the default) is a delta-driven scheduler: every block
carries a *dirty set* of slots whose inputs changed since the block was
last processed, and a visit re-transfers only those slots.  The pop
schedule is identical to the dense engine's by construction — a delivery
whose inputs did not change re-joins a value that is already below the
target state, so skipping it changes neither the states nor the set of
blocks re-enqueued — which makes the sparse results bit-identical to the
dense ones, widening timing included.

``mode="dense"`` is the original engine, retained as the differential
reference: every visit re-transfers the normal state and *all* slots at
the block, paying O(#slots-at-block) per pop regardless of what changed.

``scenario_shards >= 2`` runs the scenario-sharded scheduler: colors are
partitioned round-robin into shards, and the solver alternates an *outer
normal-state fixpoint* (no scenarios) with per-shard sparse fixpoints,
each shard working against a private copy of the normal states whose
changes are joined back deterministically after every round.  Shards
only interact through the normal states, so the rounds are a chaotic
iteration of the same equation system and converge to the same least
fixpoint for every shard count.  The sharded scheduler computes the
*exact* join-fixpoint: widening is an acceleration whose effect depends
on the visit schedule, so applying it per-shard would make the result
depend on the shard count.  The cache lattices are finite, so
termination does not need it; on programs where the canonical engine's
widening fires (rare — deep unrolled loops), the sharded result can be
strictly more precise.

Shard backends
--------------

Because shard runs only read the shared normal states and their outputs
are joined deterministically, *where* they execute is a pure scheduling
choice.  ``shard_backend`` selects it:

* ``"serial"`` — shard fixpoints run one after another in the calling
  thread (the reference schedule);
* ``"threads"`` — shard fixpoints run on a thread pool.  GIL-bound, so
  no speedup for pure-Python transfers, but it exercises the concurrent
  schedule cheaply;
* ``"processes"`` — shard state lives in persistent worker processes
  (:class:`~repro.engine.pool.PersistentWorkerPool`; worker count from
  ``REPRO_MAX_WORKERS``, default the CPU count).  Each outer round the
  master broadcasts the blocks whose normal state changed as a
  codec-encoded delta (:mod:`repro.cache.codec`), workers run their
  shard fixpoints against their mirror of the normal states, and the
  master joins the codec-encoded shard deltas back in shard order.  If
  workers cannot be started (or die mid-run), the solve falls back to
  the serial backend.

All three backends are **bit-identical** by construction: workers run
the same ``_run_sparse_pass`` code on equal inputs, the codec
round-trips states to equal values, and every join happens master-side
in the serial schedule's order (shard index, then block order).  The
backend that actually ran is recorded in ``shard_backend_used``.
Requests may therefore treat the backend as an execution knob, not a
semantic one — result cache keys deliberately exclude it.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field, replace

from repro.analysis.depth import DepthChooser
from repro.analysis.result import AccessClassification, CacheAnalysisResult
from repro.analysis.transfer import (
    AccessTable,
    classify_block,
    new_bottom_state,
    new_entry_state,
    transfer_block,
    transfer_block_with_prefix_join,
)
from repro.cache.codec import decode_state_map, encode_state_map
from repro.cache.config import CacheConfig
from repro.engine.pool import PersistentWorkerPool, WorkerPoolError, default_max_workers
from repro.engine.request import SHARD_BACKENDS
from repro.engine.worklist import PriorityWorklist, WideningPolicy, run_fixpoint
from repro.frontend import CompiledProgram
from repro.ir.cfg import diff_cfgs
from repro.ir.loops import find_natural_loops
from repro.obs import (
    CollectingReporter,
    current_reporter,
    metrics,
    publish_progress,
    reporting,
    republish,
    span,
    tracer,
)
from repro.obs.progress import POP_PUBLISH_INTERVAL
from repro.speculation.config import SpeculationConfig
from repro.speculation.vcfg import (
    SpeculationScenario,
    VCFGBaseline,
    VirtualCFG,
    build_vcfg,
    build_vcfg_incremental,
)

#: A speculative-state slot key; see the module docstring.
SlotKey = tuple

#: Number of visits to a loop header before widening is applied to S.
WIDENING_DELAY = 3

#: Hard bound on worklist pops (defensive; the lattice is finite so the
#: computation always terminates, but a bug in a transfer function should
#: surface as an error rather than an endless loop).
MAX_VISITS = 5_000_000


def resolve_shard_backend(
    shard_backend: str | None, shard_threads: bool = False
) -> str:
    """Resolve the backend knob: an explicit value wins, then the legacy
    ``shard_threads`` flag, then the ``REPRO_SHARD_BACKEND`` environment
    variable, then ``"serial"``."""
    resolved = shard_backend
    if resolved is None and shard_threads:
        resolved = "threads"
    if resolved is None:
        resolved = os.environ.get("REPRO_SHARD_BACKEND") or "serial"
    if resolved not in SHARD_BACKENDS:
        raise ValueError(
            f"unknown shard backend {resolved!r} (expected one of {SHARD_BACKENDS})"
        )
    return resolved


@dataclass
class _Delivery:
    """One pending join: ``value`` flows into ``slot`` (or S) at ``target``."""

    target: str
    slot: SlotKey | None  # None means the normal state S
    value: object


@dataclass
class SpeculativeFixpoint:
    """Raw fixpoint output of the engine."""

    normal: dict[str, object] = field(default_factory=dict)
    speculative: dict[str, dict[SlotKey, object]] = field(default_factory=dict)
    iterations: int = 0
    widenings: int = 0


@dataclass
class WarmStartData:
    """A retained prior fixpoint, decoded and ready to seed a warm solve.

    Built by :mod:`repro.engine.incremental` from an
    :class:`~repro.engine.incremental.AnalysisSnapshot`; everything here is
    expressed in the *old* program's terms (old scenario colors, old block
    set) — :meth:`SpeculativeCacheAnalysis._plan_warm` maps it onto the
    edited program.
    """

    #: ``{block name: content fingerprint}`` of the predecessor CFG.
    block_fingerprints: dict[str, str]
    #: Successor lists of the predecessor CFG (the edited CFG cannot
    #: reconstruct where removed/rewritten blocks used to deliver).
    old_successors: dict[str, tuple[str, ...]]
    #: The predecessor's speculation scenarios (old colors).
    scenarios: tuple[SpeculationScenario, ...]
    #: The predecessor fixpoint's normal states per block.
    normal: dict[str, object]
    #: The predecessor fixpoint's speculative slots per block (old colors).
    slots: dict[str, dict[SlotKey, object]]
    #: Depth of each old color's active window at the end of the prior run.
    chooser_active_depths: dict[int, int]
    #: Old colors whose window choice was locked to the long window.
    chooser_locked: frozenset[int]
    #: The predecessor run's classifications, for per-block reuse during
    #: :meth:`SpeculativeCacheAnalysis._classify_warm` (None disables it).
    classifications: tuple[AccessClassification, ...] | None = None
    #: Per-block source-line signatures of the predecessor CFG.
    #: Classifications embed the source lines of the accesses they report,
    #: so reuse additionally requires the block's lines to match (content
    #: fingerprints are deliberately line-insensitive).
    block_line_signatures: dict[str, str] | None = None


@dataclass
class _WarmPlan:
    """The affected-region computation for one warm solve."""

    warm: WarmStartData
    #: Blocks whose states must be recomputed from bottom.
    affected: set[str]
    #: ``{old color: new scenario}`` for scenarios whose structure is
    #: unchanged *and* whose branch block is outside the affected region —
    #: only these have their slots and chooser decisions seeded.
    stable: dict[int, SpeculationScenario]
    #: Branch blocks that must re-run injection even though their own
    #: normal state is untouched: they carry scenarios being rebuilt from
    #: scratch (unstable, or demoted from stable), whose slots can only be
    #: repopulated by a fresh injection.
    force_branches: set[str]


@dataclass
class _Shard:
    """One group of colors plus the per-shard solver state that persists
    across outer rounds of the sharded scheduler."""

    index: int
    scenarios: list[SpeculationScenario]
    scenarios_by_branch: dict[str, list[SpeculationScenario]]
    chooser: DepthChooser
    slots: dict[str, dict[SlotKey, object]]
    dirty: dict[str, set]
    visits: dict[str, int]

    @property
    def branch_blocks(self) -> set[str]:
        return set(self.scenarios_by_branch)


class SpeculativeCacheAnalysis:
    """The lifted analysis engine."""

    def __init__(
        self,
        program: CompiledProgram,
        cache_config: CacheConfig | None = None,
        speculation: SpeculationConfig | None = None,
        mode: str = "sparse",
        scenario_shards: int = 1,
        shard_threads: bool = False,
        shard_backend: str | None = None,
        warm_start: WarmStartData | None = None,
        prune_scenarios: bool = False,
    ):
        if mode not in ("sparse", "dense"):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.program = program
        self.cfg = program.cfg
        self.layout = program.layout
        self.cache_config = cache_config or CacheConfig.paper_default()
        self.speculation = speculation or SpeculationConfig.paper_default()
        self.mode = mode
        self.scenario_shards = max(1, int(scenario_shards))
        self.shard_backend = resolve_shard_backend(shard_backend, shard_threads)
        self.shard_threads = self.shard_backend == "threads"
        #: Which backend the last sharded solve actually executed on
        #: (None until then; "serial" after a process-backend fallback).
        self.shard_backend_used: str | None = None
        self.warm_start = warm_start
        #: Reuse counters of the last warm solve (or the fallback reason);
        #: None until solve() runs with a warm_start.
        self.warm_info: dict | None = None
        #: The raw fixpoint of the last run() — what a snapshot retains.
        self.last_fixpoint: SpeculativeFixpoint | None = None
        #: The warm plan of the last solve, when one was used (drives
        #: classification reuse in run()).
        self._warm_plan: _WarmPlan | None = None
        if warm_start is not None:
            self.vcfg, self._vcfg_reuse = build_vcfg_incremental(
                self.cfg,
                self.speculation,
                VCFGBaseline(
                    block_fingerprints=warm_start.block_fingerprints,
                    scenarios=warm_start.scenarios,
                ),
            )
        else:
            self.vcfg = build_vcfg(self.cfg, self.speculation)
            self._vcfg_reuse = None
        self.table = AccessTable(self.cfg, self.layout)
        self.chooser = DepthChooser(self.speculation, self.layout)
        self.secret_symbols = set(program.info.secret_symbols)
        # ------------------------------------------------------------------
        # Taint-driven scenario pruning.  The policy (see
        # repro.analysis.taint.classify_scenarios) only drops colors whose
        # speculative windows contain no access site at all: for those the
        # window transfer is the identity, every rollback/conversion
        # delivery joins a value already below its target, and the window
        # classification walk emits nothing — so verdicts and
        # classifications are bit-identical to the unpruned run, only the
        # per-color slot bookkeeping disappears.  The reported structural
        # counters (speculative branches, virtual edges, depth-bounding
        # stats) keep describing the *full* scenario set, so pruned and
        # unpruned reports stay comparable.
        # ------------------------------------------------------------------
        self.prune_scenarios = bool(prune_scenarios)
        self.pruned_scenarios: list[SpeculationScenario] = []
        self.taint_free_colors: frozenset[int] = frozenset()
        self._all_scenarios: list[SpeculationScenario] | None = None
        if self.prune_scenarios and self.vcfg.scenarios:
            # Imported lazily: the taint pass lives beside the analyses
            # and is only paid for when the knob is on.
            from repro.analysis.taint import TaintAnalysis, classify_scenarios
            from repro.speculation.vcfg import prune_vcfg

            taint = TaintAnalysis(
                self.cfg, self.layout, program.info.secret_symbols
            ).solve()
            prunable, taint_free, _ = classify_scenarios(
                self.vcfg, self.table, taint
            )
            self.taint_free_colors = taint_free
            if prunable:
                self._all_scenarios = list(self.vcfg.scenarios)
                self.pruned_scenarios = prune_vcfg(
                    self.vcfg, lambda scenario: scenario.color not in prunable
                )
        self._use_shadow = self.speculation.use_shadow_state
        #: Dirty-slot re-transfers performed by the sparse scheduler
        #: (telemetry only; published to the metrics registry by run()).
        self._slot_transfers = 0
        self._bottom = new_bottom_state(self.cache_config, self._use_shadow)
        # ------------------------------------------------------------------
        # Precomputed per-block indices (the sparse engine's substrate):
        # which scenarios inject at a block, O(1) color -> scenario lookup,
        # and which window/resume slots can ever be live at a block.
        # These deliberately *snapshot* the vcfg's scenarios rather than
        # going through VirtualCFG's (mutation-aware) lookups: the solver
        # needs a stable view for the whole run, independent of anything
        # external code does to vcfg.scenarios meanwhile.
        # ------------------------------------------------------------------
        self._scenario_by_color: dict[int, SpeculationScenario] = {
            scenario.color: scenario for scenario in self.vcfg.scenarios
        }
        self._scenarios_by_branch: dict[str, list[SpeculationScenario]] = {}
        for scenario in self.vcfg.scenarios:
            self._scenarios_by_branch.setdefault(scenario.branch_block, []).append(scenario)
        # The slot-placement indices cost an O(#scenarios x window-size)
        # sweep plus a per-scenario CFG walk, and only introspection needs
        # them — built on first possible_slot_colors() call.
        self._window_colors: dict[str, frozenset[int]] | None = None
        self._resume_colors: dict[str, frozenset[int]] | None = None

    # ------------------------------------------------------------------
    # Slot-placement indices
    # ------------------------------------------------------------------
    def _index_window_colors(self) -> dict[str, frozenset[int]]:
        """Inverse of the per-scenario window-membership sets: for every
        block, the colors whose ``bm`` window contains it.  The active
        window is always a subset of ``window_miss``, so this is a sound
        upper bound on the window slots that can live at the block."""
        by_block: dict[str, set[int]] = {}
        for scenario in self.vcfg.scenarios:
            for block in scenario.window_miss.allowed:
                by_block.setdefault(block, set()).add(scenario.color)
        return {block: frozenset(colors) for block, colors in by_block.items()}

    def _index_resume_colors(self) -> dict[str, frozenset[int]]:
        """For every block, the colors whose resume slots can reach it: the
        blocks reachable from the scenario's correct target along CFG edges
        that do not enter the convergence block (where the slot converts
        back into S and stops).  Empty when the merge strategy converts at
        the rollback target (no resume slots exist at all)."""
        by_block: dict[str, set[int]] = {}
        strategy = self.speculation.merge_strategy
        if not strategy.convert_at_merge_point:
            return {}
        for scenario in self.vcfg.scenarios:
            convergence = scenario.convergence_block
            if convergence is None or convergence == scenario.correct_target:
                continue
            seen = {scenario.correct_target}
            stack = [scenario.correct_target]
            while stack:
                block = stack.pop()
                by_block.setdefault(block, set()).add(scenario.color)
                for successor in self.cfg.successors(block):
                    if successor != convergence and successor not in seen:
                        seen.add(successor)
                        stack.append(successor)
        return {block: frozenset(colors) for block, colors in by_block.items()}

    def possible_slot_colors(self, block: str) -> tuple[frozenset[int], frozenset[int]]:
        """(window colors, resume colors) that can ever be live at ``block``."""
        if self._window_colors is None:
            self._window_colors = self._index_window_colors()
        if self._resume_colors is None:
            self._resume_colors = self._index_resume_colors()
        empty: frozenset[int] = frozenset()
        return (
            self._window_colors.get(block, empty),
            self._resume_colors.get(block, empty),
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> CacheAnalysisResult:
        # The public `analysis_time` is derived from the span's duration:
        # the span always times itself, sinks or not.
        publish_progress(
            "fixpoint",
            program=self.cfg.name,
            mode=self.mode,
            scenarios=len(self.vcfg.scenarios),
            shards=self.scenario_shards,
        )
        with span(
            "fixpoint",
            program=self.cfg.name,
            kind="speculative",
            mode=self.mode,
            scenarios=len(self.vcfg.scenarios),
            shards=self.scenario_shards,
        ) as fixpoint_span:
            fixpoint = self.solve()
            self.last_fixpoint = fixpoint
            fixpoint_span.set(
                iterations=fixpoint.iterations,
                widenings=fixpoint.widenings,
                backend=self.shard_backend_used,
            )
            if self.warm_info is not None:
                fixpoint_span.set(warm=self.warm_info.get("used", False))
        registry = metrics()
        registry.counter("fixpoint.pops").inc(fixpoint.iterations)
        registry.counter("fixpoint.widenings").inc(fixpoint.widenings)
        registry.counter("fixpoint.slot_retransfers").inc(self._slot_transfers)
        if self.prune_scenarios:
            registry.counter("prune.scenarios_pruned").inc(len(self.pruned_scenarios))
            registry.counter("prune.scenarios_retained").inc(len(self.vcfg.scenarios))
            if self.taint_free_colors:
                registry.counter("prune.scenarios_taint_free").inc(
                    len(self.taint_free_colors)
                )
        # When colors were pruned, the structural counters still describe
        # the full scenario set (pruned windows contribute their bm edges
        # like any never-shortened scenario), keeping reports comparable
        # across the knob.
        reporting_scenarios = (
            self._all_scenarios if self._all_scenarios is not None else self.vcfg.scenarios
        )
        result = CacheAnalysisResult(
            program_name=self.cfg.name,
            cache_config=self.cache_config,
            speculation=self.speculation,
            entry_states=dict(fixpoint.normal),
            iterations=fixpoint.iterations,
            widenings=fixpoint.widenings,
            analysis_time=fixpoint_span.duration,
            num_speculative_branches=len(
                {scenario.branch_block for scenario in reporting_scenarios}
            ),
            num_virtual_edges=sum(
                scenario.window_miss.num_instructions
                for scenario in reporting_scenarios
            ),
            shard_backend_used=self.shard_backend_used,
        )
        stats = self.chooser.stats(reporting_scenarios)
        result.num_virtual_edges_active = stats.virtual_edges_active
        publish_progress(
            "classify", program=self.cfg.name, iterations=fixpoint.iterations
        )
        with span("classify", program=self.cfg.name) as classify_span:
            if self._warm_plan is not None:
                result.classifications = self._classify_warm(fixpoint, self._warm_plan)
            else:
                result.classifications = self._classify(fixpoint)
            classify_span.set(sites=len(result.classifications))
        return result

    # ------------------------------------------------------------------
    # Fixpoint dispatch
    # ------------------------------------------------------------------
    def solve(self) -> SpeculativeFixpoint:
        if self.warm_start is not None and (
            self.mode == "dense" or self.scenario_shards >= 2
        ):
            # Warm starts are defined for the canonical sparse engine only;
            # the dense reference and the sharded (exact-fixpoint) paths
            # run cold.  The engine layer gates these before dispatch, so
            # this is belt-and-braces bookkeeping.
            self.warm_info = {
                "used": False,
                "fallback": "dense" if self.mode == "dense" else "sharded",
            }
            self.warm_start = None
        if self.mode == "dense":
            return self._solve_dense()
        if self.scenario_shards >= 2:
            # Always the exact-fixpoint scheduler, even for programs with
            # fewer than two scenarios: a sharded request promises (and is
            # result-keyed as) unwidened results, so falling back to the
            # widened canonical engine here would break that contract.
            if self.shard_backend == "processes":
                try:
                    return self._solve_sharded_processes()
                except WorkerPoolError:
                    # Workers unavailable or lost mid-run: the sharded
                    # solve is deterministic and only commits state at
                    # the end, so restarting serially is safe (and will
                    # also surface any genuine analysis bug locally).
                    pass
            return self._solve_sharded()
        if self.warm_start is not None:
            plan = self._plan_warm(self.warm_start)
            if plan is not None:
                return self._solve_warm(plan)
        return self._solve_sparse()

    def _schedule_order(self) -> dict[str, int]:
        return {name: position for position, name in enumerate(self.cfg.reverse_postorder())}

    def _widening_policy(self) -> WideningPolicy:
        return WideningPolicy(
            points={loop.header for loop in find_natural_loops(self.cfg)},
            delay=WIDENING_DELAY,
        )

    # ------------------------------------------------------------------
    # Sparse (delta-driven) fixpoint — the default engine
    # ------------------------------------------------------------------
    def _solve_sparse(self) -> SpeculativeFixpoint:
        cfg = self.cfg
        reachable = cfg.reachable_blocks()
        order = self._schedule_order()
        policy = self._widening_policy()

        normal: dict[str, object] = {name: self._bottom for name in reachable}
        normal[cfg.entry] = new_entry_state(self.cache_config, self._use_shadow)
        speculative: dict[str, dict[SlotKey, object]] = {name: {} for name in reachable}
        visits: dict[str, int] = {name: 0 for name in reachable}
        dirty: dict[str, set] = {name: set() for name in reachable}
        dirty[cfg.entry].add(None)

        fixpoint = SpeculativeFixpoint(normal=normal, speculative=speculative)
        fixpoint.iterations = self._run_sparse_pass(
            normal=normal,
            speculative=speculative,
            dirty=dirty,
            seeds=[cfg.entry],
            order=order,
            chooser=self.chooser,
            scenarios_by_branch=self._scenarios_by_branch,
            policy=policy,
            visits=visits,
            normal_changed=set(),
            description="speculative fixpoint",
        )
        fixpoint.widenings = policy.widenings
        return fixpoint

    # ------------------------------------------------------------------
    # Warm-started sparse fixpoint (incremental re-analysis)
    # ------------------------------------------------------------------
    def _plan_warm(self, warm: WarmStartData) -> _WarmPlan | None:
        """Map a retained prior run onto the edited program.

        Computes the *affected region* — the blocks whose fixpoint
        equations (or equation inputs) differ from the predecessor's —
        and the set of scenarios whose slots can be seeded verbatim.
        Every block outside the affected region has an equation system
        identical to the predecessor's and closed under its inputs, so
        its old value *is* the new least-fixpoint value; draining only
        the affected region from bottom therefore reproduces the cold
        lfp bit-for-bit.

        Returns None (cold fallback) when widening could fire: widening
        timing depends on visit counts, which a warm schedule changes.
        Fully-unrolled programs — the default pipeline — have no natural
        loops, so neither a cold nor a warm run ever widens on them.
        """
        if self._widening_policy().points:
            self.warm_info = {"used": False, "fallback": "widening"}
            return None

        cfg = self.cfg
        reachable = set(cfg.reachable_blocks())
        diff = diff_cfgs(warm.block_fingerprints, cfg)

        # --- scenario correspondence (structural, by branch identity) ----
        old_by_key = {
            (s.branch_block, s.mispredicted_taken): s for s in warm.scenarios
        }
        stable: dict[int, SpeculationScenario] = {}
        matched_old: set[int] = set()
        unstable_new: list[SpeculationScenario] = []
        for new in self.vcfg.scenarios:
            old = old_by_key.get((new.branch_block, new.mispredicted_taken))
            if (
                old is not None
                and new.branch_block in diff.unchanged
                and old.wrong_target == new.wrong_target
                and old.correct_target == new.correct_target
                and old.cond_refs == new.cond_refs
                and old.window_miss == new.window_miss
                and old.window_hit == new.window_hit
                and old.convergence_block == new.convergence_block
            ):
                stable[old.color] = new
                matched_old.add(old.color)
            else:
                unstable_new.append(new)
        unstable_old = [s for s in warm.scenarios if s.color not in matched_old]

        # --- closure seeds ------------------------------------------------
        seeds: set[str] = set()
        for name in diff.changed | diff.added:
            if name in reachable:
                seeds.add(name)
        # Removed/rewritten blocks used to deliver into their *old*
        # successors; those inputs are gone and must be recomputed.
        for name in diff.changed | diff.removed:
            for successor in warm.old_successors.get(name, ()):
                if successor in reachable:
                    seeds.add(successor)
        # A scenario whose structure changed re-derives every rollback and
        # conversion contribution; the states that absorbed the old ones
        # must be rebuilt.
        for scenario in unstable_new:
            for target in (scenario.correct_target, scenario.convergence_block):
                if target and target in reachable:
                    seeds.add(target)
        for scenario in unstable_old:
            for target in (scenario.correct_target, scenario.convergence_block):
                if target and target in reachable:
                    seeds.add(target)

        # --- forward closure over delivery edges --------------------------
        # Ordinary successor edges cover normal propagation, window
        # propagation, resume propagation, conversion, and injection
        # (a branch's mispredicted target is one of its successors).  The
        # one delivery that jumps is rollback: a window block feeds the
        # scenario's correct target, so an affected block inside a window
        # taints that target.  Stable scenarios share window geometry with
        # their predecessors, and unstable ones had their targets seeded
        # above, so triggers over the *new* scenarios suffice.
        rollback_trigger: dict[str, list[str]] = {}
        for scenario in self.vcfg.scenarios:
            blocks = set(scenario.window_miss.allowed)
            blocks.add(scenario.branch_block)
            blocks.add(scenario.wrong_target)
            for name in blocks:
                rollback_trigger.setdefault(name, []).append(scenario.correct_target)
        affected: set[str] = set()
        stack = list(seeds)
        while stack:
            name = stack.pop()
            if name in affected or name not in reachable:
                continue
            affected.add(name)
            stack.extend(cfg.successors(name))
            stack.extend(rollback_trigger.get(name, ()))

        # --- demote scenarios whose branch landed in the region -----------
        # The sparse engine's invariant is that a color's window choice is
        # made (at injection) before any of its slots carry state.  Seeded
        # slots of a scenario whose branch state is being recomputed would
        # be processed under the *default* (long) window before the choice
        # reruns, leaking deliveries a cold run never makes — so such
        # scenarios are rebuilt from scratch instead of seeded.
        for old_color, new_scenario in list(stable.items()):
            if new_scenario.branch_block in affected:
                del stable[old_color]

        # Rebuilt scenarios whose branch block sits *outside* the region
        # still need a fresh injection — nothing else repopulates their
        # slots (processing the branch re-delivers its unchanged normal
        # state too, a join no-op everywhere it is already seeded).
        stable_colors = {scenario.color for scenario in stable.values()}
        force_branches = {
            scenario.branch_block
            for scenario in self.vcfg.scenarios
            if scenario.color not in stable_colors
            and scenario.branch_block in reachable
            and scenario.branch_block not in affected
        }

        self.warm_info = {
            "used": True,
            "invalidated_blocks": len(affected),
            "seeded_blocks": len(reachable) - len(affected),
            "stable_scenarios": len(stable),
            "rebuilt_scenarios": len(self.vcfg.scenarios) - len(stable),
            "changed": len(diff.changed),
            "added": len(diff.added),
            "removed": len(diff.removed),
        }
        if self._vcfg_reuse is not None:
            self.warm_info["windows_reused"] = self._vcfg_reuse.get(
                "windows_reused", 0
            )
        return _WarmPlan(
            warm=warm, affected=affected, stable=stable, force_branches=force_branches
        )

    def _solve_warm(self, plan: _WarmPlan) -> SpeculativeFixpoint:
        """Drain the affected region against seeded prior states.

        Produces the same least fixpoint as :meth:`_solve_sparse` from
        scratch (see :meth:`_plan_warm`); only the pop count differs.
        """
        self._warm_plan = plan
        cfg = self.cfg
        warm = plan.warm
        affected = plan.affected
        reachable = cfg.reachable_blocks()
        order = self._schedule_order()
        policy = self._widening_policy()  # no points — checked by _plan_warm

        color_map = {
            old_color: scenario.color for old_color, scenario in plan.stable.items()
        }
        seeded_slots = 0
        normal: dict[str, object] = {}
        speculative: dict[str, dict[SlotKey, object]] = {}
        for name in reachable:
            if name in affected or name not in warm.normal:
                normal[name] = self._bottom
            else:
                normal[name] = warm.normal[name]
            slots: dict[SlotKey, object] = {}
            if name not in affected:
                for slot, value in warm.slots.get(name, {}).items():
                    mapped = color_map.get(slot[1])
                    if mapped is None:
                        continue
                    slots[(slot[0], mapped) + tuple(slot[2:])] = value
                    seeded_slots += 1
            speculative[name] = slots
        if cfg.entry in affected:
            normal[cfg.entry] = new_entry_state(self.cache_config, self._use_shadow)

        # Seed the chooser for stable scenarios: classification reads the
        # active window of every scenario, including ones the warm drain
        # never re-processes.  Colors the prior run never chose stay
        # unseeded and fall back to the same default a cold run uses.
        for old_color, scenario in plan.stable.items():
            depth = warm.chooser_active_depths.get(old_color)
            if depth is None:
                continue
            if old_color in warm.chooser_locked:
                if depth == scenario.window_miss.depth:
                    self.chooser._active[scenario.color] = scenario.window_miss
                    self.chooser._locked_long.add(scenario.color)
            elif depth == scenario.window_hit.depth:
                self.chooser._active[scenario.color] = scenario.window_hit
            elif depth == scenario.window_miss.depth:
                self.chooser._active[scenario.color] = scenario.window_miss

        # Dirty frontier: every unaffected block delivering into the
        # region re-sends everything it holds (joins into unaffected
        # targets are no-ops); window slots additionally re-send when
        # their rollback target is affected, because rollback is the one
        # delivery that does not follow a successor edge.
        visits: dict[str, int] = {name: 0 for name in reachable}
        dirty: dict[str, set] = {name: set() for name in reachable}
        if cfg.entry in affected:
            dirty[cfg.entry].add(None)
        for name in plan.force_branches:
            dirty[name].add(None)
        for name in reachable:
            if name in affected:
                continue
            if any(successor in affected for successor in cfg.successors(name)):
                dirty[name].add(None)
                dirty[name].update(speculative[name].keys())
                continue
            for slot in speculative[name]:
                if slot[0] != "window":
                    continue
                scenario = self._scenario_by_color.get(slot[1])
                if scenario is not None and scenario.correct_target in affected:
                    dirty[name].add(slot)

        seeds = sorted(
            (name for name in reachable if dirty[name]),
            key=lambda name: order.get(name, 0),
        )
        self.warm_info["seeded_slots"] = seeded_slots
        self.warm_info["frontier_blocks"] = len(seeds)

        fixpoint = SpeculativeFixpoint(normal=normal, speculative=speculative)
        fixpoint.iterations = self._run_sparse_pass(
            normal=normal,
            speculative=speculative,
            dirty=dirty,
            seeds=seeds,
            order=order,
            chooser=self.chooser,
            scenarios_by_branch=self._scenarios_by_branch,
            policy=policy,
            visits=visits,
            normal_changed=set(),
            description="warm speculative fixpoint",
        )
        fixpoint.widenings = policy.widenings
        return fixpoint

    def _run_sparse_pass(
        self,
        normal: dict[str, object],
        speculative: dict[str, dict[SlotKey, object]],
        dirty: dict[str, set],
        seeds,
        order: dict[str, int],
        chooser: DepthChooser | None,
        scenarios_by_branch: dict[str, list[SpeculationScenario]],
        policy: WideningPolicy,
        visits: dict[str, int],
        normal_changed: set[str],
        description: str,
    ) -> int:
        """Drain one sparse fixpoint to convergence; returns the pop count.

        Blocks whose normal state changed at least once are accumulated
        into ``normal_changed`` (the sharded scheduler's join set)."""
        worklist = PriorityWorklist(order, initial=seeds)
        # Streaming progress: throttled to one event per
        # POP_PUBLISH_INTERVAL pops, and only when a reporter is
        # installed — the common (unwatched) case pays nothing per pop.
        reporter = current_reporter()
        publish_every = POP_PUBLISH_INTERVAL if reporter.active else 0
        pops_seen = 0

        def step(name: str) -> set[str]:
            nonlocal pops_seen
            if publish_every:
                pops_seen += 1
                if pops_seen % publish_every == 0:
                    reporter.publish(
                        "fixpoint.pops", pops=pops_seen, pass_name=description
                    )
            visits[name] += 1
            pending = dirty[name]
            dirty[name] = set()
            deliveries = self._process_block_sparse(
                name,
                pending,
                normal,
                speculative,
                worklist.push,
                dirty,
                chooser,
                scenarios_by_branch,
            )
            return self._apply_deliveries(
                deliveries,
                normal,
                speculative,
                policy,
                visits,
                dirty=dirty,
                normal_changed=normal_changed,
            )

        return run_fixpoint(
            worklist, step, max_visits=MAX_VISITS, description=description
        )

    def _process_block_sparse(
        self,
        name: str,
        pending: set,
        normal: dict[str, object],
        speculative: dict[str, dict[SlotKey, object]],
        requeue,
        dirty: dict[str, set],
        chooser: DepthChooser | None,
        scenarios_by_branch: dict[str, list[SpeculationScenario]],
    ) -> list[_Delivery]:
        deliveries: list[_Delivery] = []
        successors = self.cfg.successors(name)
        state_in = normal[name]
        normal_dirty = None in pending

        # --- normal transfer and propagation (only when S[n] changed) ------
        state_out = None
        if normal_dirty:
            state_out = transfer_block(state_in, self.table, name)
            for successor in successors:
                deliveries.append(_Delivery(successor, None, state_out))

        # --- dirty speculative slots, in slot-creation order ----------------
        # Iterating the slot dict (not the pending set) keeps the delivery
        # order independent of hash randomisation and identical to the dense
        # engine's relative order.  Slots marked dirty before any state
        # reached them are still bottom and are skipped, exactly as the
        # dense engine skips bottom slots.
        if pending:
            slots_in = speculative[name]
            for slot, slot_state in slots_in.items():
                if slot not in pending or getattr(slot_state, "is_bottom", False):
                    continue
                self._slot_transfers += 1
                if slot[0] == "window":
                    deliveries.extend(
                        self._process_window_slot(
                            name, slot, slot_state, successors, chooser
                        )
                    )
                else:
                    deliveries.extend(
                        self._process_resume_slot(name, slot, slot_state, successors)
                    )

        # --- scenario injection at branch blocks ----------------------------
        # The window (re-)choice runs on every pop, mirroring the dense
        # engine: it is what keeps the chooser's active windows and the
        # window-growth requeues on the same schedule.  The injection
        # delivery itself only carries a new value when S[n] changed — the
        # dense engine's unconditional re-delivery is a join no-op then.
        for scenario in scenarios_by_branch.get(name, ()):
            previous_window = chooser.active_window(scenario)
            window = chooser.choose(scenario, state_in)
            if window.depth > previous_window.depth:
                # The window grew (the condition is no longer a proven hit):
                # re-propagate from every block of the old window, and mark
                # the scenario's window slot dirty there so the re-transfer
                # runs against the new window's limits and successor set.
                slot = ("window", scenario.color)
                for block in previous_window.allowed:
                    if block in normal:
                        requeue(block)
                        dirty[block].add(slot)
            if not normal_dirty:
                continue
            if window.depth <= 0 or not window.contains(scenario.wrong_target):
                continue
            deliveries.append(
                _Delivery(scenario.wrong_target, ("window", scenario.color), state_out)
            )
        return deliveries

    # ------------------------------------------------------------------
    # Scenario-sharded fixpoint
    # ------------------------------------------------------------------
    def _solve_sharded(self) -> SpeculativeFixpoint:
        self.shard_backend_used = "threads" if self.shard_threads else "serial"
        cfg = self.cfg
        reachable = cfg.reachable_blocks()
        order = self._schedule_order()
        # Exact fixpoint: no widening (see the module docstring).
        no_widening = WideningPolicy(points=frozenset(), delay=WIDENING_DELAY)

        normal: dict[str, object] = {name: self._bottom for name in reachable}
        normal[cfg.entry] = new_entry_state(self.cache_config, self._use_shadow)
        visits: dict[str, int] = {name: 0 for name in reachable}
        normal_dirty: dict[str, set] = {name: set() for name in reachable}

        shards = self._build_shards(reachable)
        fixpoint = SpeculativeFixpoint(normal=normal)
        iterations = 0

        pending_normal: set[str] = {cfg.entry}
        # The entry state is non-bottom from the start, so the entry block
        # counts as "changed" for the first shard round even though no
        # delivery ever touches it.
        delta_for_shards: set[str] = {cfg.entry}
        no_slots: dict[str, dict[SlotKey, object]] = {name: {} for name in reachable}
        round_index = 0
        while True:
            with span("fixpoint.round", round=round_index) as round_span:
                round_index += 1
                # Phase 1: outer normal-state fixpoint (scenarios excluded).
                phase1_changed: set[str] = set()
                if pending_normal:
                    for block in pending_normal:
                        normal_dirty[block].add(None)
                    iterations += self._run_sparse_pass(
                        normal=normal,
                        speculative=no_slots,
                        dirty=normal_dirty,
                        seeds=sorted(pending_normal, key=lambda b: order.get(b, 0)),
                        order=order,
                        chooser=None,
                        scenarios_by_branch={},
                        policy=no_widening,
                        visits=visits,
                        normal_changed=phase1_changed,
                        description="sharded speculative fixpoint (normal phase)",
                    )
                    pending_normal = set()
                delta_for_shards |= phase1_changed
                # Phase 2: per-shard sparse fixpoints against private copies of S.
                seeded = [
                    shard
                    for shard in shards
                    if delta_for_shards & shard.branch_blocks
                    or any(shard.dirty[name] for name in shard.dirty)
                ]
                round_span.set(shards_seeded=len(seeded))
                if not seeded:
                    break
                delta = delta_for_shards
                delta_for_shards = set()
                runs = self._run_shards(
                    seeded, normal, delta, order, no_widening, parent_span=round_span
                )
                iterations += sum(pops for pops, _, _ in runs)
                # Phase 3: deterministic join of the shard-local normal states.
                joined_delta: set[str] = set()
                for _, local_normal, local_changed in runs:
                    for block in sorted(local_changed, key=lambda b: order.get(b, 0)):
                        current = normal[block]
                        joined = current.join(local_normal[block])
                        if not joined.leq(current):
                            normal[block] = joined
                            joined_delta.add(block)
                round_span.set(joined_blocks=len(joined_delta))
                publish_progress(
                    "fixpoint.round",
                    round=round_index,
                    shards_seeded=len(seeded),
                    joined_blocks=len(joined_delta),
                    iterations=iterations,
                )
                if not joined_delta:
                    break
                pending_normal = joined_delta
                delta_for_shards = set(joined_delta)

        # Merge the per-shard slot dictionaries and window decisions back
        # into the engine-level views used by classification.
        speculative: dict[str, dict[SlotKey, object]] = {name: {} for name in reachable}
        for shard in shards:
            for name, slots in shard.slots.items():
                if slots:
                    speculative[name].update(slots)
            self.chooser.absorb(shard.chooser)
        fixpoint.speculative = speculative
        fixpoint.iterations = iterations
        fixpoint.widenings = 0
        return fixpoint

    def _build_shards(self, reachable: list[str]) -> list[_Shard]:
        scenarios = self.vcfg.scenarios
        count = max(1, min(self.scenario_shards, len(scenarios)))
        shards: list[_Shard] = []
        for index in range(count):
            members = scenarios[index::count]
            by_branch: dict[str, list[SpeculationScenario]] = {}
            for scenario in members:
                by_branch.setdefault(scenario.branch_block, []).append(scenario)
            shards.append(
                _Shard(
                    index=index,
                    scenarios=members,
                    scenarios_by_branch=by_branch,
                    chooser=DepthChooser(self.speculation, self.layout),
                    slots={name: {} for name in reachable},
                    dirty={name: set() for name in reachable},
                    visits={name: 0 for name in reachable},
                )
            )
        return shards

    def _run_shards(
        self,
        shards: list[_Shard],
        normal: dict[str, object],
        delta: set[str],
        order: dict[str, int],
        policy: WideningPolicy,
        parent_span=None,
    ) -> list[tuple[int, dict[str, object], set[str]]]:
        """Run one round of shard fixpoints; returns per-shard
        (pops, local normal states, blocks whose local normal changed),
        in shard order regardless of execution interleaving."""
        # Captured for the threads backend: pool threads have an empty
        # thread-local reporter, so the caller's is installed explicitly
        # (mirroring the explicit span parenting below).
        reporter = current_reporter()

        def run_one(shard: _Shard) -> tuple[int, dict[str, object], set[str]]:
            # Explicit parenting: on the threads backend this body runs on
            # a pool thread whose own span stack is empty.
            with reporting(reporter), tracer().child_span(
                "fixpoint.shard", parent_span, shard=shard.index
            ) as shard_span:
                local_normal = dict(normal)
                seeds = []
                for block in sorted(
                    delta & shard.branch_blocks, key=lambda b: order.get(b, 0)
                ):
                    shard.dirty[block].add(None)
                for block in shard.dirty:
                    if shard.dirty[block]:
                        seeds.append(block)
                seeds.sort(key=lambda b: order.get(b, 0))
                local_changed: set[str] = set()
                pops = self._run_sparse_pass(
                    normal=local_normal,
                    speculative=shard.slots,
                    dirty=shard.dirty,
                    seeds=seeds,
                    order=order,
                    chooser=shard.chooser,
                    scenarios_by_branch=shard.scenarios_by_branch,
                    policy=policy,
                    visits=shard.visits,
                    normal_changed=local_changed,
                    description=f"sharded speculative fixpoint (shard {shard.index})",
                )
                shard_span.set(pops=pops, changed_blocks=len(local_changed))
                reporter.publish(
                    "fixpoint.shard",
                    shard=shard.index,
                    pops=pops,
                    changed_blocks=len(local_changed),
                )
            return pops, local_normal, local_changed

        if self.shard_threads and len(shards) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(shards)) as pool:
                return list(pool.map(run_one, shards))
        return [run_one(shard) for shard in shards]

    # ------------------------------------------------------------------
    # Scenario-sharded fixpoint, process backend
    # ------------------------------------------------------------------
    def _solve_sharded_processes(self) -> SpeculativeFixpoint:
        """The sharded scheduler with shard fixpoints in worker processes.

        Identical round structure to :meth:`_solve_sharded`; the
        differences are purely about state placement.  Shard state
        (slots, dirty sets, visit counts, chooser) lives in persistent
        workers for the whole solve; each worker also keeps a *mirror*
        of the master's normal states, kept in sync by broadcasting the
        blocks that changed since the previous round (the phase-3 join
        delta plus the next phase-1 changes — exactly the set
        ``_solve_sharded`` hands to :meth:`_run_shards`) as one
        codec-encoded state map.  Workers reply per shard with the pop
        count and the codec-encoded states of the blocks their local
        normal copy changed; the master joins those replies in shard
        order, then block order — the serial schedule — so the fixpoint
        is bit-identical to the serial backend's.

        Raises :class:`WorkerPoolError` if workers cannot be started or
        die mid-run; :meth:`solve` falls back to the serial backend
        (nothing on ``self`` is mutated before the workers' final
        hand-back succeeds).
        """
        cfg = self.cfg
        reachable = cfg.reachable_blocks()
        order = self._schedule_order()
        no_widening = WideningPolicy(points=frozenset(), delay=WIDENING_DELAY)

        normal: dict[str, object] = {name: self._bottom for name in reachable}
        normal[cfg.entry] = new_entry_state(self.cache_config, self._use_shadow)
        visits: dict[str, int] = {name: 0 for name in reachable}
        normal_dirty: dict[str, set] = {name: set() for name in reachable}

        scenarios = self.vcfg.scenarios
        shard_count = max(1, min(self.scenario_shards, len(scenarios)))
        # The same round-robin partition _build_shards uses; the master
        # only needs each shard's branch blocks (for the seeding check).
        shard_branch_blocks = [
            {scenario.branch_block for scenario in scenarios[index::shard_count]}
            for index in range(shard_count)
        ]
        num_workers = max(
            1, min(default_max_workers() or os.cpu_count() or 1, shard_count)
        )
        # Worker w owns shards w, w+W, w+2W, ... — affinity is what lets
        # shard state stay resident across rounds.
        pool = PersistentWorkerPool(
            _shard_worker_factory,
            [
                (
                    self.program,
                    self.cache_config,
                    self.speculation,
                    self.scenario_shards,
                    tuple(range(worker, shard_count, num_workers)),
                )
                for worker in range(num_workers)
            ],
            name="repro-shard",
        )
        self.shard_backend_used = "processes"

        fixpoint = SpeculativeFixpoint(normal=normal)
        iterations = 0
        shard_has_dirty = [False] * shard_count
        pending_normal: set[str] = {cfg.entry}
        delta_for_shards: set[str] = {cfg.entry}
        no_slots: dict[str, dict[SlotKey, object]] = {name: {} for name in reachable}
        round_index = 0
        try:
            while True:
                with span("fixpoint.round", round=round_index) as round_span:
                    round_index += 1
                    # Phase 1: outer normal-state fixpoint (master-side,
                    # identical to the serial backend's).
                    phase1_changed: set[str] = set()
                    if pending_normal:
                        for block in pending_normal:
                            normal_dirty[block].add(None)
                        iterations += self._run_sparse_pass(
                            normal=normal,
                            speculative=no_slots,
                            dirty=normal_dirty,
                            seeds=sorted(pending_normal, key=lambda b: order.get(b, 0)),
                            order=order,
                            chooser=None,
                            scenarios_by_branch={},
                            policy=no_widening,
                            visits=visits,
                            normal_changed=phase1_changed,
                            description="sharded speculative fixpoint (normal phase)",
                        )
                        pending_normal = set()
                    delta_for_shards |= phase1_changed
                    if not any(
                        delta_for_shards & shard_branch_blocks[index]
                        or shard_has_dirty[index]
                        for index in range(shard_count)
                    ):
                        break
                    # Phase 2: broadcast the delta, run the shard fixpoints
                    # remotely.  Every worker gets the delta — mirrors must
                    # track the master even in rounds where a worker's own
                    # shards have nothing to do.  Workers collect their spans
                    # locally (when asked) and relay them in the reply — they
                    # must never write the master's trace file themselves.
                    delta_blob = encode_state_map(
                        {block: normal[block] for block in delta_for_shards}
                    )
                    delta_for_shards = set()
                    want_spans = tracer().enabled
                    # Progress rides the same reply channel as spans:
                    # workers collect locally and the master republishes
                    # into its own reporter (workers never talk to the
                    # service layer directly).
                    want_progress = current_reporter().active
                    replies = pool.request_all(
                        [("round", delta_blob, want_spans, want_progress)]
                        * num_workers
                    )
                    metrics().counter("codec.bytes_shipped").inc(
                        len(delta_blob) * num_workers
                    )
                    reply_bytes = 0
                    by_shard: dict[int, tuple[int, bytes]] = {}
                    for shard_replies, worker_spans, worker_progress in replies:
                        tracer().emit_foreign(worker_spans)
                        republish(worker_progress)
                        for shard_index, pops, changed_blob, leftover_dirty in shard_replies:
                            by_shard[shard_index] = (pops, changed_blob)
                            shard_has_dirty[shard_index] = leftover_dirty
                            reply_bytes += len(changed_blob)
                    metrics().counter("codec.bytes_shipped").inc(reply_bytes)
                    # Phase 3: deterministic join, in shard order then block
                    # order — the serial schedule.
                    joined_delta: set[str] = set()
                    for shard_index in range(shard_count):
                        pops, changed_blob = by_shard[shard_index]
                        iterations += pops
                        local_states = decode_state_map(changed_blob)
                        for block in sorted(local_states, key=lambda b: order.get(b, 0)):
                            current = normal[block]
                            joined = current.join(local_states[block])
                            if not joined.leq(current):
                                normal[block] = joined
                                joined_delta.add(block)
                    round_span.set(
                        delta_bytes=len(delta_blob),
                        reply_bytes=reply_bytes,
                        joined_blocks=len(joined_delta),
                        workers=num_workers,
                    )
                    publish_progress(
                        "fixpoint.round",
                        round=round_index,
                        joined_blocks=len(joined_delta),
                        iterations=iterations,
                        workers=num_workers,
                    )
                    if not joined_delta:
                        break
                    pending_normal = joined_delta
                    delta_for_shards = set(joined_delta)
            finals = pool.request_all([("finalize",)] * num_workers)
        finally:
            pool.close()

        # Merge the workers' slot dictionaries and window decisions back
        # into the engine-level views used by classification, in shard
        # order (matching the serial backend's merge loop).
        speculative: dict[str, dict[SlotKey, object]] = {name: {} for name in reachable}
        by_shard_final: dict[int, tuple[dict, DepthChooser]] = {}
        for entries, worker_metrics in finals:
            metrics().absorb(worker_metrics)
            for shard_index, slots, chooser in entries:
                by_shard_final[shard_index] = (slots, chooser)
        for shard_index in range(shard_count):
            slots, chooser = by_shard_final[shard_index]
            for name, block_slots in slots.items():
                if name in speculative:
                    speculative[name].update(block_slots)
            self.chooser.absorb(chooser)
        fixpoint.speculative = speculative
        fixpoint.iterations = iterations
        fixpoint.widenings = 0
        return fixpoint

    # ------------------------------------------------------------------
    # Dense fixpoint — the retained differential-reference engine
    # ------------------------------------------------------------------
    def _solve_dense(self) -> SpeculativeFixpoint:
        cfg = self.cfg
        reachable = cfg.reachable_blocks()
        order = self._schedule_order()
        policy = self._widening_policy()

        normal: dict[str, object] = {name: self._bottom for name in reachable}
        normal[cfg.entry] = new_entry_state(self.cache_config, self._use_shadow)
        speculative: dict[str, dict[SlotKey, object]] = {name: {} for name in reachable}
        visits: dict[str, int] = {name: 0 for name in reachable}

        fixpoint = SpeculativeFixpoint(normal=normal, speculative=speculative)
        worklist = PriorityWorklist(order, initial=[cfg.entry])

        def step(name: str) -> set[str]:
            visits[name] += 1
            fixpoint.iterations += 1
            deliveries = self._process_block(name, normal, speculative, worklist.push)
            return self._apply_deliveries(
                deliveries, normal, speculative, policy, visits
            )

        run_fixpoint(
            worklist, step, max_visits=MAX_VISITS, description="speculative fixpoint"
        )
        fixpoint.widenings = policy.widenings
        return fixpoint

    def _process_block(
        self,
        name: str,
        normal: dict[str, object],
        speculative: dict[str, dict[SlotKey, object]],
        requeue,
    ) -> list[_Delivery]:
        deliveries: list[_Delivery] = []
        successors = self.cfg.successors(name)
        state_in = normal[name]
        slots_in = speculative[name]

        # --- normal transfer and propagation -------------------------------
        state_out = transfer_block(state_in, self.table, name)
        for successor in successors:
            deliveries.append(_Delivery(successor, None, state_out))

        # --- speculative slots ----------------------------------------------
        for slot, slot_state in slots_in.items():
            if getattr(slot_state, "is_bottom", False):
                continue
            if slot[0] == "window":
                deliveries.extend(
                    self._process_window_slot(name, slot, slot_state, successors)
                )
            else:
                deliveries.extend(
                    self._process_resume_slot(name, slot, slot_state, successors)
                )

        # --- scenario injection at branch blocks ----------------------------
        for scenario in self._scenarios_by_branch.get(name, []):
            previous_window = self.chooser.active_window(scenario)
            window = self.chooser.choose(scenario, state_in)
            if window.depth > previous_window.depth:
                # The window grew (the condition is no longer a proven hit):
                # re-propagate from every block of the old window.
                for block in previous_window.allowed:
                    if block in normal:
                        requeue(block)
            if window.depth <= 0 or not window.contains(scenario.wrong_target):
                continue
            deliveries.append(
                _Delivery(scenario.wrong_target, ("window", scenario.color), state_out)
            )
        return deliveries

    # ------------------------------------------------------------------
    # Shared slot transfers
    # ------------------------------------------------------------------
    def _process_window_slot(
        self,
        name: str,
        slot: SlotKey,
        slot_state,
        successors: list[str],
        chooser: DepthChooser | None = None,
    ) -> list[_Delivery]:
        deliveries: list[_Delivery] = []
        scenario = self._scenario_by_color[slot[1]]
        window = (chooser or self.chooser).active_window(scenario)
        if not window.contains(name):
            return deliveries
        limit = window.allowed_instructions(name)
        slot_out, prefix_join = transfer_block_with_prefix_join(
            slot_state, self.table, name, limit
        )
        # Window propagation (rule 2): only into blocks still inside the window.
        for successor in successors:
            if window.contains(successor):
                deliveries.append(_Delivery(successor, slot, slot_out))
        # Rollback (rule 3): the join of all prefix states re-enters the
        # normal flow at the correct target.
        deliveries.append(self._rollback_delivery(scenario, name, prefix_join))
        return deliveries

    def _rollback_delivery(
        self, scenario: SpeculationScenario, origin: str, state
    ) -> _Delivery:
        strategy = self.speculation.merge_strategy
        target = scenario.correct_target
        convergence = scenario.convergence_block
        convert_immediately = (
            not strategy.convert_at_merge_point
            or convergence is None
            or convergence == target
        )
        if convert_immediately:
            return _Delivery(target, None, state)
        if strategy.collapse_rollback_points:
            return _Delivery(target, ("resume", scenario.color), state)
        return _Delivery(target, ("resume", scenario.color, origin), state)

    def _process_resume_slot(
        self, name: str, slot: SlotKey, slot_state, successors: list[str]
    ) -> list[_Delivery]:
        deliveries: list[_Delivery] = []
        scenario = self._scenario_by_color[slot[1]]
        convergence = scenario.convergence_block
        slot_out = transfer_block(slot_state, self.table, name)
        for successor in successors:
            if successor == convergence:
                # Conversion (rule 4): vn_stop — the speculative state joins
                # the normal flow and stops being tracked separately.
                deliveries.append(_Delivery(successor, None, slot_out))
            else:
                deliveries.append(_Delivery(successor, slot, slot_out))
        return deliveries

    def _apply_deliveries(
        self,
        deliveries: list[_Delivery],
        normal: dict[str, object],
        speculative: dict[str, dict[SlotKey, object]],
        policy: WideningPolicy,
        visits: dict[str, int],
        dirty: dict[str, set] | None = None,
        normal_changed: set[str] | None = None,
    ) -> set[str]:
        changed: set[str] = set()
        for delivery in deliveries:
            target = delivery.target
            if target not in normal:
                continue
            if delivery.slot is None:
                current = normal[target]
                joined = policy.apply(
                    target, visits.get(target, 0), current, current.join(delivery.value)
                )
                if not joined.leq(current):
                    normal[target] = joined
                    changed.add(target)
                    if dirty is not None:
                        dirty[target].add(None)
                    if normal_changed is not None:
                        normal_changed.add(target)
            else:
                slots = speculative[target]
                current = slots.get(delivery.slot, self._bottom)
                joined = current.join(delivery.value)
                if not joined.leq(current):
                    slots[delivery.slot] = joined
                    changed.add(target)
                    if dirty is not None:
                        dirty[target].add(delivery.slot)
        return changed

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _classify(self, fixpoint: SpeculativeFixpoint) -> list[AccessClassification]:
        classifications: list[AccessClassification] = []
        for block in self.cfg.reachable_blocks():
            state = fixpoint.normal[block]
            # Accesses in the correct branch of a mispredicted execution
            # commit with the speculatively polluted cache, so the committed
            # classification must also hold under every *resume* state that
            # reaches the block (window states model squashed instructions
            # only, their misses are the masked "#SpMiss").
            for slot, slot_state in fixpoint.speculative.get(block, {}).items():
                if slot[0] == "resume" and not getattr(slot_state, "is_bottom", False):
                    state = slot_state if getattr(state, "is_bottom", False) else state.join(slot_state)
            if getattr(state, "is_bottom", False):
                continue
            classifications.extend(
                classify_block(state, self.table, block, self.secret_symbols)
            )
        for scenario in self.vcfg.scenarios:
            window = self.chooser.active_window(scenario)
            slot = ("window", scenario.color)
            for block, limit in window.allowed.items():
                state = fixpoint.speculative.get(block, {}).get(slot)
                if state is None or getattr(state, "is_bottom", False):
                    continue
                classifications.extend(
                    classify_block(
                        state,
                        self.table,
                        block,
                        self.secret_symbols,
                        instruction_limit=limit,
                        speculative=True,
                        scenario_color=scenario.color,
                    )
                )
        return classifications

    def _resume_touched_blocks(self, plan: _WarmPlan) -> set[str]:
        """Blocks whose resume-slot population differs between the prior
        run and this one — where the committed (normal) classification
        cannot be reused even though the block itself is unaffected.

        A resume region is everything reachable from a scenario's correct
        target without entering its convergence block.  Regions of *stable*
        scenarios contribute identically in both runs (their slots are
        seeded verbatim and input-closed).  Regions of rebuilt scenarios
        are walked over the *new* CFG; regions of old scenarios with no
        stable counterpart — including ones whose correct target is no
        longer even reachable, so the affected-region closure never saw
        them — are walked over the *old* successor lists.
        """
        touched: set[str] = set()
        if not self.speculation.merge_strategy.convert_at_merge_point:
            # Rollbacks convert into S immediately: no resume slots exist,
            # and their normal-state contributions are inside the affected
            # closure already.
            return touched

        def walk(scenario: SpeculationScenario, successors) -> None:
            convergence = scenario.convergence_block
            if convergence is None or convergence == scenario.correct_target:
                return
            seen = {scenario.correct_target}
            stack = [scenario.correct_target]
            while stack:
                block = stack.pop()
                touched.add(block)
                for successor in successors(block):
                    if successor != convergence and successor not in seen:
                        seen.add(successor)
                        stack.append(successor)

        stable_new_colors = {s.color for s in plan.stable.values()}
        for scenario in self.vcfg.scenarios:
            if scenario.color not in stable_new_colors:
                walk(scenario, self.cfg.successors)
        old_successors = plan.warm.old_successors
        for scenario in plan.warm.scenarios:
            if scenario.color not in plan.stable:
                walk(scenario, lambda name: old_successors.get(name, ()))
        return touched

    def _classify_warm(
        self, fixpoint: SpeculativeFixpoint, plan: _WarmPlan
    ) -> list[AccessClassification]:
        """:meth:`_classify`, reusing the prior run's classifications for
        blocks the edit provably did not touch.

        Reuse is bit-identical to reclassification: a block outside the
        affected region has unchanged content (changed blocks seed the
        region), an identical joined state (normal and stable-scenario
        resume slots are seeded and input-closed; differing resume
        populations are excluded via :meth:`_resume_touched_blocks`), and
        — gated by the per-block line signature — identical source lines,
        so ``classify_block`` would emit exactly the retained objects.
        The same argument covers window classifications of stable
        scenarios (equal windows, equal limits, seeded slots); only the
        scenario color is remapped old→new.
        """
        warm = plan.warm
        if warm.classifications is None or warm.block_line_signatures is None:
            return self._classify(fixpoint)
        affected = plan.affected
        old_lines = warm.block_line_signatures
        new_lines = self.cfg.block_line_signatures()
        resume_touched = self._resume_touched_blocks(plan)

        old_normal: dict[str, list[AccessClassification]] = {}
        old_window: dict[tuple[int, str], list[AccessClassification]] = {}
        for classification in warm.classifications:
            if classification.speculative:
                key = (classification.scenario_color, classification.block)
                old_window.setdefault(key, []).append(classification)
            else:
                old_normal.setdefault(classification.block, []).append(classification)

        reused = 0
        classifications: list[AccessClassification] = []
        for block in self.cfg.reachable_blocks():
            if (
                block not in affected
                and block not in resume_touched
                and old_lines.get(block) == new_lines.get(block)
                and block in old_lines
            ):
                retained = old_normal.get(block, ())
                classifications.extend(retained)
                reused += len(retained)
                continue
            state = fixpoint.normal[block]
            for slot, slot_state in fixpoint.speculative.get(block, {}).items():
                if slot[0] == "resume" and not getattr(slot_state, "is_bottom", False):
                    state = slot_state if getattr(state, "is_bottom", False) else state.join(slot_state)
            if getattr(state, "is_bottom", False):
                continue
            classifications.extend(
                classify_block(state, self.table, block, self.secret_symbols)
            )

        old_color_of = {
            scenario.color: old_color for old_color, scenario in plan.stable.items()
        }
        for scenario in self.vcfg.scenarios:
            window = self.chooser.active_window(scenario)
            slot = ("window", scenario.color)
            old_color = old_color_of.get(scenario.color)
            for block, limit in window.allowed.items():
                if (
                    old_color is not None
                    and block not in affected
                    and old_lines.get(block) == new_lines.get(block)
                    and block in old_lines
                ):
                    for retained in old_window.get((old_color, block), ()):
                        classifications.append(
                            retained
                            if retained.scenario_color == scenario.color
                            else replace(retained, scenario_color=scenario.color)
                        )
                        reused += 1
                    continue
                state = fixpoint.speculative.get(block, {}).get(slot)
                if state is None or getattr(state, "is_bottom", False):
                    continue
                classifications.extend(
                    classify_block(
                        state,
                        self.table,
                        block,
                        self.secret_symbols,
                        instruction_limit=limit,
                        speculative=True,
                        scenario_color=scenario.color,
                    )
                )
        if self.warm_info is not None:
            self.warm_info["classifications_reused"] = reused
        return classifications


# ----------------------------------------------------------------------
# Process-backend shard worker
# ----------------------------------------------------------------------
def _shard_worker_factory(
    program: CompiledProgram,
    cache_config: CacheConfig,
    speculation: SpeculationConfig,
    scenario_shards: int,
    shard_indices: tuple[int, ...],
):
    """Picklable :class:`~repro.engine.pool.PersistentWorkerPool` entry
    point: builds one :class:`_ShardWorker` inside the worker process."""
    # Fork-started workers inherit the master's metrics registry; reset it
    # so the snapshot relayed at finalize only counts this worker's work.
    metrics().clear()
    return _ShardWorker(program, cache_config, speculation, scenario_shards, shard_indices)


class _ShardWorker:
    """The worker-process half of the ``"processes"`` shard backend.

    Owns the shards at ``shard_indices`` of the same round-robin
    partition the master computes (``_build_shards`` is deterministic on
    equal inputs), plus a mirror of the master's normal states.  The
    mirror starts from the same initial assignment the master builds and
    is advanced by the per-round deltas, so at every round start it
    equals the master's ``normal`` — which makes each shard run here
    byte-for-byte the computation the serial backend's ``run_one`` would
    have performed.
    """

    def __init__(
        self,
        program: CompiledProgram,
        cache_config: CacheConfig,
        speculation: SpeculationConfig,
        scenario_shards: int,
        shard_indices: tuple[int, ...],
    ):
        self.analysis = SpeculativeCacheAnalysis(
            program,
            cache_config=cache_config,
            speculation=speculation,
            mode="sparse",
            scenario_shards=scenario_shards,
            shard_backend="serial",
        )
        analysis = self.analysis
        reachable = analysis.cfg.reachable_blocks()
        self.order = analysis._schedule_order()
        self.policy = WideningPolicy(points=frozenset(), delay=WIDENING_DELAY)
        all_shards = analysis._build_shards(reachable)
        self.shards = [all_shards[index] for index in shard_indices]
        self.mirror: dict[str, object] = {name: analysis._bottom for name in reachable}
        self.mirror[analysis.cfg.entry] = new_entry_state(
            analysis.cache_config, analysis._use_shadow
        )

    def __call__(self, message: tuple):
        if message[0] == "round":
            want_spans = bool(message[2]) if len(message) > 2 else False
            want_progress = bool(message[3]) if len(message) > 3 else False
            return self._round(message[1], want_spans, want_progress)
        if message[0] == "finalize":
            return self._finalize()
        raise ValueError(f"unknown shard-worker message {message[0]!r}")

    def _round(
        self, delta_blob: bytes, want_spans: bool = False, want_progress: bool = False
    ) -> tuple[list[tuple[int, int, bytes, bool]], list[dict], list[dict]]:
        """Run one fixpoint round for every owned shard; replies with
        ``(shard index, pops, encoded changed states, leftover dirty)``
        per shard, plus the spans and progress events collected
        worker-side when the master asked for them (it re-emits both
        into its own tree/reporter — workers never write the trace file
        or talk to the service layer).  Mirrors
        :meth:`SpeculativeCacheAnalysis._run_shards`' ``run_one`` exactly
        (a shard with no seeds pops nothing and changes nothing, matching
        the serial backend's seeding filter).
        """
        delta_states = decode_state_map(delta_blob)
        self.mirror.update(delta_states)
        delta = set(delta_states)
        order = self.order
        replies: list[tuple[int, int, bytes, bool]] = []
        spans: list[dict] = []
        # Collection only when the master is tracing/watching: otherwise
        # the shard spans below stay on the disabled (duration-only)
        # fast path and progress publishing stays a no-op.
        collect = tracer().collecting() if want_spans else contextlib.nullcontext()
        progress = CollectingReporter() if want_progress else None
        with collect as collected, reporting(progress):
            for shard in self.shards:
                with span("fixpoint.shard", shard=shard.index) as shard_span:
                    local_normal = dict(self.mirror)
                    for block in sorted(
                        delta & shard.branch_blocks, key=lambda b: order.get(b, 0)
                    ):
                        shard.dirty[block].add(None)
                    seeds = [block for block in shard.dirty if shard.dirty[block]]
                    seeds.sort(key=lambda b: order.get(b, 0))
                    local_changed: set[str] = set()
                    pops = self.analysis._run_sparse_pass(
                        normal=local_normal,
                        speculative=shard.slots,
                        dirty=shard.dirty,
                        seeds=seeds,
                        order=order,
                        chooser=shard.chooser,
                        scenarios_by_branch=shard.scenarios_by_branch,
                        policy=self.policy,
                        visits=shard.visits,
                        normal_changed=local_changed,
                        description=f"sharded speculative fixpoint (shard {shard.index})",
                    )
                    changed_blob = encode_state_map(
                        {block: local_normal[block] for block in local_changed}
                    )
                    shard_span.set(
                        pops=pops,
                        changed_blocks=len(local_changed),
                        reply_bytes=len(changed_blob),
                    )
                leftover_dirty = any(shard.dirty[name] for name in shard.dirty)
                replies.append((shard.index, pops, changed_blob, leftover_dirty))
                if progress is not None:
                    progress.publish(
                        "fixpoint.shard",
                        shard=shard.index,
                        pops=pops,
                        changed_blocks=len(local_changed),
                    )
            if want_spans:
                spans = collected.spans
        return replies, spans, progress.events if progress is not None else []

    def _finalize(self) -> tuple[list[tuple[int, dict, DepthChooser]], dict]:
        """Hand the accumulated shard state back to the master: the
        non-empty slot dictionaries and the per-shard chooser (both
        value-equal under pickling — slots hold the same abstract-state
        dataclasses the codec round-trips, and the chooser's windows are
        frozen dataclasses compared by value everywhere), plus this
        worker's metrics snapshot for the master to absorb."""
        entries = [
            (
                shard.index,
                {name: slots for name, slots in shard.slots.items() if slots},
                shard.chooser,
            )
            for shard in self.shards
        ]
        metrics().counter("fixpoint.slot_retransfers").inc(
            self.analysis._slot_transfers
        )
        self.analysis._slot_transfers = 0
        return entries, metrics().snapshot()
