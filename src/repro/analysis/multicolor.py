"""The lifted worklist engine with per-color speculative states
(Algorithms 2 and 3 of the paper).

Every basic block ``n`` carries a *normal* abstract state ``S[n]`` plus a
dictionary of *speculative* states ``SS[n][slot]``.  Slots are the
engine's realisation of the paper's colors:

* ``("window", c)`` — the cache state while scenario ``c``'s mispredicted
  branch is being speculatively executed (between ``vn_start`` and the
  rollback);
* ``("resume", c)`` or ``("resume", c, origin)`` — the cache state after
  the rollback, while the correct branch executes, carried until the
  conversion point (``vn_stop``).  Collapsing strategies (Figures 6c/6d)
  use a single resume slot per color; non-collapsing ones (6a/6b) keep one
  per rollback block.

The propagation rules correspond one-to-one to the virtual control-flow
edges of Section 5.1:

1. *Injection* (``n — vn_start`` and ``vn_start — n``): when a branch
   block is processed, its post-transfer normal state is copied into the
   window slot of each of its scenarios at the mispredicted target.
2. *Window propagation* (``n — n``): window slots flow along ordinary CFG
   edges between blocks of the active speculative window, with the block
   transfer truncated to the window's instruction allowance.
3. *Rollback* (``n — vn_stop``): each window block contributes the join of
   all its prefix states to the correct branch — either directly into the
   normal state (merge-at-rollback) or into a resume slot.
4. *Conversion* (``vn_stop — n``): resume slots flowing into the
   scenario's convergence block are joined into the normal state there and
   stop propagating.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.depth import DepthChooser
from repro.analysis.result import AccessClassification, CacheAnalysisResult
from repro.analysis.transfer import (
    AccessTable,
    classify_block,
    new_bottom_state,
    new_entry_state,
    transfer_block,
    transfer_block_with_prefix_join,
)
from repro.cache.config import CacheConfig
from repro.engine.worklist import PriorityWorklist, WideningPolicy, run_fixpoint
from repro.frontend import CompiledProgram
from repro.ir.loops import find_natural_loops
from repro.speculation.config import SpeculationConfig
from repro.speculation.vcfg import SpeculationScenario, VirtualCFG, build_vcfg

#: A speculative-state slot key; see the module docstring.
SlotKey = tuple

#: Number of visits to a loop header before widening is applied to S.
WIDENING_DELAY = 3

#: Hard bound on worklist pops (defensive; the lattice is finite so the
#: computation always terminates, but a bug in a transfer function should
#: surface as an error rather than an endless loop).
MAX_VISITS = 5_000_000


@dataclass
class _Delivery:
    """One pending join: ``value`` flows into ``slot`` (or S) at ``target``."""

    target: str
    slot: SlotKey | None  # None means the normal state S
    value: object


@dataclass
class SpeculativeFixpoint:
    """Raw fixpoint output of the engine."""

    normal: dict[str, object] = field(default_factory=dict)
    speculative: dict[str, dict[SlotKey, object]] = field(default_factory=dict)
    iterations: int = 0
    widenings: int = 0


class SpeculativeCacheAnalysis:
    """The lifted analysis engine."""

    def __init__(
        self,
        program: CompiledProgram,
        cache_config: CacheConfig | None = None,
        speculation: SpeculationConfig | None = None,
    ):
        self.program = program
        self.cfg = program.cfg
        self.layout = program.layout
        self.cache_config = cache_config or CacheConfig.paper_default()
        self.speculation = speculation or SpeculationConfig.paper_default()
        self.vcfg: VirtualCFG = build_vcfg(self.cfg, self.speculation)
        self.table = AccessTable(self.cfg, self.layout)
        self.chooser = DepthChooser(self.speculation, self.layout)
        self.secret_symbols = set(program.info.secret_symbols)
        self._use_shadow = self.speculation.use_shadow_state
        self._bottom = new_bottom_state(self.cache_config, self._use_shadow)
        self._scenarios_by_branch: dict[str, list[SpeculationScenario]] = {}
        for scenario in self.vcfg.scenarios:
            self._scenarios_by_branch.setdefault(scenario.branch_block, []).append(scenario)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> CacheAnalysisResult:
        started = time.perf_counter()
        fixpoint = self.solve()
        elapsed = time.perf_counter() - started
        result = CacheAnalysisResult(
            program_name=self.cfg.name,
            cache_config=self.cache_config,
            speculation=self.speculation,
            entry_states=dict(fixpoint.normal),
            iterations=fixpoint.iterations,
            widenings=fixpoint.widenings,
            analysis_time=elapsed,
            num_speculative_branches=self.vcfg.num_speculative_branches,
            num_virtual_edges=self.vcfg.num_virtual_edges,
        )
        stats = self.chooser.stats(self.vcfg.scenarios)
        result.num_virtual_edges_active = stats.virtual_edges_active
        result.classifications = self._classify(fixpoint)
        return result

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def solve(self) -> SpeculativeFixpoint:
        cfg = self.cfg
        reachable = cfg.reachable_blocks()
        order = {name: position for position, name in enumerate(cfg.reverse_postorder())}
        policy = WideningPolicy(
            points={loop.header for loop in find_natural_loops(cfg)},
            delay=WIDENING_DELAY,
        )

        normal: dict[str, object] = {name: self._bottom for name in reachable}
        normal[cfg.entry] = new_entry_state(self.cache_config, self._use_shadow)
        speculative: dict[str, dict[SlotKey, object]] = {name: {} for name in reachable}
        visits: dict[str, int] = {name: 0 for name in reachable}

        fixpoint = SpeculativeFixpoint(normal=normal, speculative=speculative)
        worklist = PriorityWorklist(order, initial=[cfg.entry])

        def step(name: str) -> set[str]:
            visits[name] += 1
            fixpoint.iterations += 1
            deliveries = self._process_block(name, normal, speculative, worklist.push)
            return self._apply_deliveries(
                deliveries, normal, speculative, policy, visits
            )

        run_fixpoint(
            worklist, step, max_visits=MAX_VISITS, description="speculative fixpoint"
        )
        fixpoint.widenings = policy.widenings
        return fixpoint

    def _process_block(
        self,
        name: str,
        normal: dict[str, object],
        speculative: dict[str, dict[SlotKey, object]],
        requeue,
    ) -> list[_Delivery]:
        deliveries: list[_Delivery] = []
        successors = self.cfg.successors(name)
        state_in = normal[name]
        slots_in = speculative[name]

        # --- normal transfer and propagation -------------------------------
        state_out = transfer_block(state_in, self.table, name)
        for successor in successors:
            deliveries.append(_Delivery(successor, None, state_out))

        # --- speculative slots ----------------------------------------------
        for slot, slot_state in slots_in.items():
            if getattr(slot_state, "is_bottom", False):
                continue
            if slot[0] == "window":
                deliveries.extend(
                    self._process_window_slot(name, slot, slot_state, successors)
                )
            else:
                deliveries.extend(
                    self._process_resume_slot(name, slot, slot_state, successors)
                )

        # --- scenario injection at branch blocks ----------------------------
        for scenario in self._scenarios_by_branch.get(name, []):
            previous_window = self.chooser.active_window(scenario)
            window = self.chooser.choose(scenario, state_in)
            if window.depth > previous_window.depth:
                # The window grew (the condition is no longer a proven hit):
                # re-propagate from every block of the old window.
                for block in previous_window.allowed:
                    if block in normal:
                        requeue(block)
            if window.depth <= 0 or not window.contains(scenario.wrong_target):
                continue
            deliveries.append(
                _Delivery(scenario.wrong_target, ("window", scenario.color), state_out)
            )
        return deliveries

    def _process_window_slot(
        self, name: str, slot: SlotKey, slot_state, successors: list[str]
    ) -> list[_Delivery]:
        deliveries: list[_Delivery] = []
        scenario = self.vcfg.scenario(slot[1])
        window = self.chooser.active_window(scenario)
        if not window.contains(name):
            return deliveries
        limit = window.allowed_instructions(name)
        slot_out, prefix_join = transfer_block_with_prefix_join(
            slot_state, self.table, name, limit
        )
        # Window propagation (rule 2): only into blocks still inside the window.
        for successor in successors:
            if window.contains(successor):
                deliveries.append(_Delivery(successor, slot, slot_out))
        # Rollback (rule 3): the join of all prefix states re-enters the
        # normal flow at the correct target.
        deliveries.append(self._rollback_delivery(scenario, name, prefix_join))
        return deliveries

    def _rollback_delivery(
        self, scenario: SpeculationScenario, origin: str, state
    ) -> _Delivery:
        strategy = self.speculation.merge_strategy
        target = scenario.correct_target
        convergence = scenario.convergence_block
        convert_immediately = (
            not strategy.convert_at_merge_point
            or convergence is None
            or convergence == target
        )
        if convert_immediately:
            return _Delivery(target, None, state)
        if strategy.collapse_rollback_points:
            return _Delivery(target, ("resume", scenario.color), state)
        return _Delivery(target, ("resume", scenario.color, origin), state)

    def _process_resume_slot(
        self, name: str, slot: SlotKey, slot_state, successors: list[str]
    ) -> list[_Delivery]:
        deliveries: list[_Delivery] = []
        scenario = self.vcfg.scenario(slot[1])
        convergence = scenario.convergence_block
        slot_out = transfer_block(slot_state, self.table, name)
        for successor in successors:
            if successor == convergence:
                # Conversion (rule 4): vn_stop — the speculative state joins
                # the normal flow and stops being tracked separately.
                deliveries.append(_Delivery(successor, None, slot_out))
            else:
                deliveries.append(_Delivery(successor, slot, slot_out))
        return deliveries

    def _apply_deliveries(
        self,
        deliveries: list[_Delivery],
        normal: dict[str, object],
        speculative: dict[str, dict[SlotKey, object]],
        policy: WideningPolicy,
        visits: dict[str, int],
    ) -> set[str]:
        changed: set[str] = set()
        for delivery in deliveries:
            target = delivery.target
            if target not in normal:
                continue
            if delivery.slot is None:
                current = normal[target]
                joined = policy.apply(
                    target, visits.get(target, 0), current, current.join(delivery.value)
                )
                if not joined.leq(current):
                    normal[target] = joined
                    changed.add(target)
            else:
                slots = speculative[target]
                current = slots.get(delivery.slot, self._bottom)
                joined = current.join(delivery.value)
                if not joined.leq(current):
                    slots[delivery.slot] = joined
                    changed.add(target)
        return changed

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _classify(self, fixpoint: SpeculativeFixpoint) -> list[AccessClassification]:
        classifications: list[AccessClassification] = []
        for block in self.cfg.reachable_blocks():
            state = fixpoint.normal[block]
            # Accesses in the correct branch of a mispredicted execution
            # commit with the speculatively polluted cache, so the committed
            # classification must also hold under every *resume* state that
            # reaches the block (window states model squashed instructions
            # only, their misses are the masked "#SpMiss").
            for slot, slot_state in fixpoint.speculative.get(block, {}).items():
                if slot[0] == "resume" and not getattr(slot_state, "is_bottom", False):
                    state = slot_state if getattr(state, "is_bottom", False) else state.join(slot_state)
            if getattr(state, "is_bottom", False):
                continue
            classifications.extend(
                classify_block(state, self.table, block, self.secret_symbols)
            )
        for scenario in self.vcfg.scenarios:
            window = self.chooser.active_window(scenario)
            slot = ("window", scenario.color)
            for block, limit in window.allowed.items():
                state = fixpoint.speculative.get(block, {}).get(slot)
                if state is None or getattr(state, "is_bottom", False):
                    continue
                classifications.extend(
                    classify_block(
                        state,
                        self.table,
                        block,
                        self.secret_symbols,
                        instruction_limit=limit,
                        speculative=True,
                        scenario_color=scenario.color,
                    )
                )
        return classifications
