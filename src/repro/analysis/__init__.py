"""Cache analyses: the paper's contribution.

* :func:`analyze_baseline` — Algorithm 1: the classical, *non-speculative*
  must-hit abstract interpretation (the state of the art the paper
  compares against, and shows to be unsound under speculation).
* :func:`analyze_speculative` — Algorithms 2 and 3: the lifted analysis
  that propagates per-color speculative states over the virtual control
  flow, with configurable merge strategies (Figure 6) and dynamic
  speculation-depth bounding (Section 6.2).

Both return a :class:`~repro.analysis.result.CacheAnalysisResult`
containing per-location abstract states and a classification of every
memory-access site as a guaranteed hit or potential miss.
"""

from repro.analysis.result import AccessClassification, CacheAnalysisResult
from repro.analysis.baseline import analyze_baseline
from repro.analysis.speculative import analyze_speculative
from repro.analysis.depth import DepthBoundingStats

__all__ = [
    "AccessClassification",
    "CacheAnalysisResult",
    "DepthBoundingStats",
    "analyze_baseline",
    "analyze_speculative",
]
