"""Dynamic bounding of the speculation depth (Section 6.2).

Every speculation scenario carries two precomputed windows: one for the
``bm`` bound (branch condition operands may miss, long speculation) and
one for ``bh`` (operands proven must-hit, short speculation).  During the
fixpoint, whenever the branch block is processed the chooser inspects the
current abstract state: if every memory block the condition depends on is
a must hit, the short window is used, removing the corresponding virtual
edges from consideration.

Because abstract states only grow (become less precise) during the
fixpoint, a must-hit fact can be lost but never gained; the chooser
therefore only ever switches a scenario from the short window to the long
one, which keeps the overall computation monotone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.memory import MemoryLayout
from repro.speculation.config import SpeculationConfig
from repro.speculation.vcfg import SpeculationScenario, SpeculativeWindow


@dataclass
class DepthBoundingStats:
    """Statistics of the optimisation, reported in the ablation bench."""

    scenarios_total: int = 0
    scenarios_shortened: int = 0
    virtual_edges_full: int = 0
    virtual_edges_active: int = 0

    @property
    def virtual_edges_removed(self) -> int:
        return self.virtual_edges_full - self.virtual_edges_active


@dataclass
class DepthChooser:
    """Tracks the active window of every scenario during the fixpoint."""

    config: SpeculationConfig
    layout: MemoryLayout
    _active: dict[int, SpeculativeWindow] = field(default_factory=dict)
    _locked_long: set[int] = field(default_factory=set)

    def active_window(self, scenario: SpeculationScenario) -> SpeculativeWindow:
        """The window currently in force for ``scenario`` (defaults to the
        long window until the branch block has been analysed once)."""
        return self._active.get(scenario.color, scenario.window_miss)

    def choose(self, scenario: SpeculationScenario, state) -> SpeculativeWindow:
        """(Re-)choose the window for ``scenario`` given the abstract state
        at the entry of its branch block.  Returns the active window."""
        if not self.config.dynamic_depth_bounding:
            window = scenario.window_miss
            self._active[scenario.color] = window
            return window
        if scenario.color in self._locked_long:
            return self._active[scenario.color]
        if self._condition_must_hit(scenario, state):
            window = scenario.window_hit
        else:
            window = scenario.window_miss
            self._locked_long.add(scenario.color)
        self._active[scenario.color] = window
        return window

    def _condition_must_hit(self, scenario: SpeculationScenario, state) -> bool:
        if getattr(state, "is_bottom", False):
            # Unreachable so far: optimistically use the short window; it
            # will be revisited as soon as the block becomes reachable.
            return True
        if not scenario.cond_refs:
            # A condition held entirely in registers resolves immediately.
            return True
        for ref in scenario.cond_refs:
            access = self.layout.resolve(ref)
            if not state.must_hit_access(access):
                return False
        return True

    def export_state(self) -> tuple[dict[int, int], frozenset[int]]:
        """``({color: active window depth}, locked colors)`` — the part of
        the chooser an :class:`~repro.engine.incremental.AnalysisSnapshot`
        retains.  Depths (not window objects) are stored so a snapshot
        never keeps an old program's window block sets alive; the warm
        solver re-binds each depth to the matching scenario's window."""
        return (
            {color: window.depth for color, window in self._active.items()},
            frozenset(self._locked_long),
        )

    def absorb(self, other: "DepthChooser") -> None:
        """Fold another chooser's per-color decisions into this one.

        Used by the scenario-sharded engine, where each shard tracks the
        active windows of its own (disjoint) colors."""
        self._active.update(other._active)
        self._locked_long.update(other._locked_long)

    def stats(self, scenarios: list[SpeculationScenario]) -> DepthBoundingStats:
        """Virtual edges are counted at instruction granularity: a rollback
        may occur after every speculated instruction, so each speculatively
        reachable instruction contributes one virtual edge."""
        stats = DepthBoundingStats(scenarios_total=len(scenarios))
        for scenario in scenarios:
            active = self.active_window(scenario)
            stats.virtual_edges_full += scenario.window_miss.num_instructions
            stats.virtual_edges_active += active.num_instructions
            if active.depth == scenario.window_hit.depth and (
                scenario.window_hit.depth < scenario.window_miss.depth
            ):
                stats.scenarios_shortened += 1
        return stats
