"""Secret-taint dataflow over the IR.

A forward may-taint analysis seeded from the secret-marked memory blocks
of the program layout: temporaries are tracked flow-sensitively per
block, memory blocks flow-insensitively (a store through a tainted value
or index taints every block the reference may alias, and taint is never
killed — the cache side channel does not forget), and branches whose
condition is secret-derived taint every block that is control-dependent
on them (computed against the post-dominator tree).  The fixpoint runs
on the shared :mod:`repro.engine.worklist` kernel in the same
reverse-postorder schedule as the cache analyses.

Three consumers:

* **scenario pruning** — :func:`prunable_scenario_colors` decides which
  speculation scenarios the multicolor engine may skip.  The decision
  procedure is deliberately conservative: an access inside a speculative
  window interacts with the shared cache whether or not its *own* data
  is tainted (rollback leaves its aging and evictions behind, and its
  speculative classification is part of the reported result), so the
  verdict- and classification-identical prunable set is exactly the
  scenarios whose windows contain **no access at all**.  Windows with
  accesses but no taint-reachable ones are counted separately
  (``prune.scenarios_taint_free``) — they are the headroom a future
  relaxed mode could claim by accepting classification drift.
* **leak blame paths** — :meth:`TaintResult.blame_path` returns the
  shortest recorded def-use chain from a secret source to a leaking
  access, for ``repro sidechannel --explain`` and the report layer.
* **mitigation candidate ranking** — :func:`tainted_branch_blocks`
  lets the fence-placement ranker score taint-reachable speculative
  windows first (a pure ordering change).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.engine.worklist import PriorityWorklist, run_fixpoint
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    CondBranch,
    Instruction,
    Load,
    MemoryRef,
    Store,
    Temp,
)
from repro.ir.dominators import postdominator_tree
from repro.ir.memory import MemoryBlock, MemoryLayout

#: Defensive bound on taint-fixpoint pops, far above any real program.
MAX_TAINT_VISITS = 1_000_000

#: Blame-graph node kinds (first tuple element of a node key).
_SECRET = "secret"
_TEMP = "temp"
_MEM = "mem"
_SITE = "site"
_CONTROL = "control"


@dataclass(frozen=True)
class BlameStep:
    """One hop of a blame path, anchored to a block/instruction."""

    block: str
    instruction_index: int  # -1 for sources, terminators, and summaries
    line: int
    kind: str  # "source" | "load" | "store" | "compute" | "control" | "access"
    detail: str

    def render(self) -> str:
        where = self.block if self.instruction_index < 0 else (
            f"{self.block}[{self.instruction_index}]"
        )
        suffix = f" (line {self.line})" if self.line else ""
        return f"{self.kind:>7}  {where}: {self.detail}{suffix}"

    def to_dict(self) -> dict:
        return {
            "block": self.block,
            "instruction_index": self.instruction_index,
            "line": self.line,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class TaintResult:
    """Solved taint facts for one program."""

    cfg: CFG
    layout: MemoryLayout
    secret_symbols: frozenset[str]
    #: Memory blocks that may hold secret-derived data (flow-insensitive).
    tainted_blocks: frozenset[MemoryBlock]
    #: Temp names tainted at each block's entry (flow-sensitive).
    tainted_in: dict[str, frozenset[str]]
    #: Blocks control-dependent on a secret-derived branch.
    control_tainted: frozenset[str]
    #: Access sites (block, instruction index) that may touch
    #: secret-derived data or execute under secret-derived control.
    tainted_sites: frozenset[tuple[str, int]]
    #: Blame graph: node -> [(parent node, step)] in discovery order.
    _edges: dict[tuple, list[tuple[tuple, BlameStep]]] = field(default_factory=dict)

    def is_tainted_site(self, block: str, instruction_index: int) -> bool:
        return (block, instruction_index) in self.tainted_sites

    def blame_path(self, block: str, instruction_index: int) -> list[BlameStep] | None:
        """Shortest recorded chain from a secret source to the access at
        ``(block, instruction_index)``; None when the site is untainted.

        BFS backwards over the blame graph, so the witness has the fewest
        def-use hops among all recorded derivations.  The returned list is
        source-first and ends with the access itself.
        """
        start = (_SITE, block, instruction_index)
        if start not in self._edges:
            return None
        parents: dict[tuple, tuple[tuple, BlameStep] | None] = {start: None}
        queue: deque[tuple] = deque([start])
        goal: tuple | None = None
        while queue:
            node = queue.popleft()
            if node[0] == _SECRET:
                goal = node
                break
            for parent, step in self._edges.get(node, ()):
                if parent not in parents:
                    parents[parent] = (node, step)
                    queue.append(parent)
        if goal is None:
            return None
        # Walk forward from the source back down to the access.
        path: list[BlameStep] = []
        node = goal
        while node != start:
            child, step = parents[node]  # type: ignore[misc]
            path.append(step)
            node = child
        if not path or path[0].kind != "source":
            # Direct derivations (a secret-typed symbol accessed in place)
            # skip the layout-seeding edge that carries the source step;
            # synthesise one so every path starts at its secret.
            path.insert(
                0,
                BlameStep(
                    block="<secret>",
                    instruction_index=-1,
                    line=0,
                    kind="source",
                    detail=f"secret value {goal[1]!r}",
                ),
            )
        return path


class TaintAnalysis:
    """One taint solve; use :func:`analyze_taint` unless you need the
    intermediate structures."""

    def __init__(self, cfg: CFG, layout: MemoryLayout, secret_symbols):
        self.cfg = cfg
        self.layout = layout
        self.secret_symbols = frozenset(secret_symbols)
        self._tainted_blocks: set[MemoryBlock] = set()
        self._tainted_in: dict[str, set[str]] = {}
        self._control: set[str] = set()
        self._edges: dict[tuple, list[tuple[tuple, BlameStep]]] = {}
        self._edge_seen: set[tuple] = set()
        self._block_out: set[str] = set()
        self._pending_requeues: list[str] = []
        self._pdom = postdominator_tree(cfg)
        # symbol -> blocks that read it (re-enqueued when a store taints
        # the symbol's memory blocks for the first time).
        self._readers: dict[str, set[str]] = {}
        for name in cfg.reachable_blocks():
            for instruction in cfg.block(name).instructions:
                for ref in instruction.memory_refs():
                    if not ref.is_write:
                        self._readers.setdefault(ref.symbol, set()).add(name)
            terminator = cfg.block(name).terminator
            if isinstance(terminator, CondBranch):
                for ref in terminator.cond_refs:
                    self._readers.setdefault(ref.symbol, set()).add(name)

    # ------------------------------------------------------------------
    # Blame-graph bookkeeping
    # ------------------------------------------------------------------
    def _edge(self, child: tuple, parent: tuple, step: BlameStep) -> None:
        key = (child, parent)
        if key in self._edge_seen:
            return
        self._edge_seen.add(key)
        self._edges.setdefault(child, []).append((parent, step))

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> TaintResult:
        for symbol in sorted(self.secret_symbols):
            if not self.layout.has_symbol(symbol):
                continue
            for block in self.layout.blocks_of(symbol):
                self._tainted_blocks.add(block)
                self._edge(
                    (_MEM, block),
                    (_SECRET, symbol),
                    BlameStep(
                        block="<layout>",
                        instruction_index=-1,
                        line=0,
                        kind="source",
                        detail=f"secret object {symbol!r} occupies {block}",
                    ),
                )
        reachable = self.cfg.reachable_blocks()
        for name in reachable:
            self._tainted_in.setdefault(name, set())
        order = {
            name: position
            for position, name in enumerate(self.cfg.reverse_postorder())
        }
        worklist = PriorityWorklist(order, reachable)
        run_fixpoint(
            worklist,
            self._step,
            max_visits=MAX_TAINT_VISITS,
            description="taint fixpoint",
        )
        tainted_sites: set[tuple[str, int]] = set()
        for name in reachable:
            self._walk_block(name, record_sites=tainted_sites)
        return TaintResult(
            cfg=self.cfg,
            layout=self.layout,
            secret_symbols=self.secret_symbols,
            tainted_blocks=frozenset(self._tainted_blocks),
            tainted_in={
                name: frozenset(temps) for name, temps in self._tainted_in.items()
            },
            control_tainted=frozenset(self._control),
            tainted_sites=frozenset(tainted_sites),
            _edges=self._edges,
        )

    def _step(self, name: str) -> list[str]:
        self._walk_block(name)
        requeue: list[str] = []
        out = self._block_out
        for successor in self.cfg.successors(name):
            target = self._tainted_in.setdefault(successor, set())
            before = len(target)
            target |= out
            if len(target) != before:
                requeue.append(successor)
        # Global-fact growth (memory taint, control taint) re-enqueues its
        # dependents directly: readers of the newly tainted symbol, and the
        # freshly control-tainted blocks themselves.
        requeue.extend(self._pending_requeues)
        self._pending_requeues = []
        return requeue

    # ------------------------------------------------------------------
    # Per-block transfer
    # ------------------------------------------------------------------
    def _operand_tainted(self, operand, tainted: set[str]) -> bool:
        return isinstance(operand, Temp) and operand.name in tainted

    def _ref_data_tainted(self, ref: MemoryRef) -> bool:
        """Whether the data behind ``ref`` may be secret-derived: the
        object is secret-declared, or any block the access may alias
        (the full object for unknown/secret indices) is tainted."""
        if ref.symbol in self.secret_symbols:
            return True
        if not self.layout.has_symbol(ref.symbol):
            return False
        access = self.layout.resolve(ref)
        return any(block in self._tainted_blocks for block in access.blocks)

    def _taint_stored_blocks(
        self, ref: MemoryRef, parent: tuple, step: BlameStep
    ) -> None:
        if not self.layout.has_symbol(ref.symbol):
            return
        access = self.layout.resolve(ref)
        fresh = [b for b in access.blocks if b not in self._tainted_blocks]
        for block in access.blocks:
            self._edge((_MEM, block), parent, step)
        if fresh:
            self._tainted_blocks.update(fresh)
            self._pending_requeues.extend(
                sorted(self._readers.get(ref.symbol, ()))
            )

    def _walk_block(
        self, name: str, record_sites: set[tuple[str, int]] | None = None
    ) -> bool:
        """Transfer ``name``: propagate taint through its instructions.

        Returns whether any *global* fact (memory taint, control taint)
        changed.  With ``record_sites`` given, additionally classifies
        every access site against the (final) entry facts.
        """
        tainted = set(self._tainted_in.get(name, ()))
        control = name in self._control
        changed_global = False
        mem_before = len(self._tainted_blocks)
        control_before = len(self._control)
        block = self.cfg.block(name)
        for index, instruction in enumerate(block.instructions):
            self._transfer_instruction(
                name, index, instruction, tainted, control, record_sites
            )
        terminator = block.terminator
        if isinstance(terminator, CondBranch):
            self._transfer_branch(name, terminator, tainted, control)
        self._block_out = tainted
        if len(self._tainted_blocks) != mem_before:
            changed_global = True
        if len(self._control) != control_before:
            changed_global = True
        return changed_global

    def _transfer_instruction(
        self,
        name: str,
        index: int,
        instruction: Instruction,
        tainted: set[str],
        control: bool,
        record_sites: set[tuple[str, int]] | None,
    ) -> None:
        site_node = (_SITE, name, index)
        if isinstance(instruction, Load):
            ref = instruction.ref
            index_tainted = ref.index_secret or self._operand_tainted(
                instruction.index_operand, tainted
            )
            data_tainted = self._ref_data_tainted(ref)
            site_tainted = index_tainted or data_tainted or control
            if site_tainted:
                self._record_access(
                    site_node,
                    name,
                    index,
                    ref,
                    tainted,
                    instruction.index_operand,
                    index_tainted,
                    data_tainted,
                    control,
                    record_sites,
                )
            if index_tainted or data_tainted or control:
                dest = instruction.dest.name
                if dest not in tainted:
                    tainted.add(dest)
                self._edge(
                    (_TEMP, dest),
                    self._access_parent(
                        ref, tainted, instruction.index_operand, index_tainted,
                        data_tainted, control, name,
                    ),
                    BlameStep(
                        block=name,
                        instruction_index=index,
                        line=instruction.line or ref.line,
                        kind="load",
                        detail=f"{instruction}",
                    ),
                )
            return
        if isinstance(instruction, Store):
            ref = instruction.ref
            index_tainted = ref.index_secret or self._operand_tainted(
                instruction.index_operand, tainted
            )
            value_tainted = self._operand_tainted(instruction.value, tainted)
            data_tainted = self._ref_data_tainted(ref)
            site_tainted = index_tainted or value_tainted or data_tainted or control
            if site_tainted:
                self._record_access(
                    site_node,
                    name,
                    index,
                    ref,
                    tainted,
                    instruction.index_operand,
                    index_tainted,
                    data_tainted or value_tainted,
                    control,
                    record_sites,
                    value_operand=instruction.value if value_tainted else None,
                )
            if index_tainted or value_tainted or control:
                self._taint_stored_blocks(
                    ref,
                    self._access_parent(
                        ref, tainted, instruction.index_operand, index_tainted,
                        value_tainted or data_tainted, control, name,
                        value_operand=(
                            instruction.value if value_tainted else None
                        ),
                    ),
                    BlameStep(
                        block=name,
                        instruction_index=index,
                        line=instruction.line or ref.line,
                        kind="store",
                        detail=f"{instruction}",
                    ),
                )
            return
        # Pure computation: BinOp / UnOp / Copy / CallInstr.
        dest = instruction.defined_temp()
        if dest is None:
            return
        tainted_source = None
        for operand in instruction.used_operands():
            if self._operand_tainted(operand, tainted):
                tainted_source = operand
                break
        if tainted_source is None and not control:
            return
        if dest.name not in tainted:
            tainted.add(dest.name)
        parent: tuple = (
            (_TEMP, tainted_source.name)
            if tainted_source is not None
            else (_CONTROL, name)
        )
        self._edge(
            (_TEMP, dest.name),
            parent,
            BlameStep(
                block=name,
                instruction_index=index,
                line=instruction.line,
                kind="compute" if tainted_source is not None else "control",
                detail=f"{instruction}",
            ),
        )

    def _access_parent(
        self,
        ref: MemoryRef,
        tainted: set[str],
        index_operand,
        index_tainted: bool,
        data_tainted: bool,
        control: bool,
        block_name: str,
        value_operand=None,
    ) -> tuple:
        """The most informative blame parent for an access: a tainted
        index temp, then a tainted value temp, then the secret object /
        tainted block behind the data, then control dependence."""
        if (
            index_operand is not None
            and self._operand_tainted(index_operand, tainted)
        ):
            return (_TEMP, index_operand.name)
        if ref.index_secret and ref.symbol not in self.secret_symbols:
            # The frontend already folded the secret into the index
            # expression; blame the secret objects directly.
            for symbol in sorted(self.secret_symbols):
                return (_SECRET, symbol)
        if value_operand is not None:
            return (_TEMP, value_operand.name)
        if ref.symbol in self.secret_symbols:
            return (_SECRET, ref.symbol)
        if data_tainted and self.layout.has_symbol(ref.symbol):
            for block in self.layout.resolve(ref).blocks:
                if block in self._tainted_blocks:
                    return (_MEM, block)
        if control:
            return (_CONTROL, block_name)
        for symbol in sorted(self.secret_symbols):
            return (_SECRET, symbol)
        return (_CONTROL, block_name)

    def _record_access(
        self,
        site_node: tuple,
        name: str,
        index: int,
        ref: MemoryRef,
        tainted: set[str],
        index_operand,
        index_tainted: bool,
        data_tainted: bool,
        control: bool,
        record_sites: set[tuple[str, int]] | None,
        value_operand=None,
    ) -> None:
        if record_sites is not None:
            record_sites.add((name, index))
        self._edge(
            site_node,
            self._access_parent(
                ref, tainted, index_operand, index_tainted, data_tainted,
                control, name, value_operand=value_operand,
            ),
            BlameStep(
                block=name,
                instruction_index=index,
                line=ref.line,
                kind="access",
                detail=f"{'store' if ref.is_write else 'load'} {ref.symbol}"
                + ("[secret]" if ref.index_secret else ""),
            ),
        )

    def _transfer_branch(
        self, name: str, terminator: CondBranch, tainted: set[str], control: bool
    ) -> None:
        cond_tainted = self._operand_tainted(terminator.cond, tainted) or control
        refs_tainted = any(
            ref.index_secret or self._ref_data_tainted(ref)
            for ref in terminator.cond_refs
        )
        if not (cond_tainted or refs_tainted):
            return
        region = self._control_region(name)
        fresh = region - self._control
        parent: tuple = (
            (_TEMP, terminator.cond.name)
            if isinstance(terminator.cond, Temp)
            and terminator.cond.name in tainted
            else (_CONTROL, name)
        )
        if parent == (_CONTROL, name) and refs_tainted:
            for ref in terminator.cond_refs:
                if ref.symbol in self.secret_symbols:
                    parent = (_SECRET, ref.symbol)
                    break
        for block in sorted(region):
            self._edge(
                (_CONTROL, block),
                parent,
                BlameStep(
                    block=name,
                    instruction_index=-1,
                    line=terminator.line,
                    kind="control",
                    detail=f"{block!r} is control-dependent on {terminator}",
                ),
            )
        if fresh:
            self._control.update(fresh)
            self._pending_requeues.extend(sorted(fresh))

    def _control_region(self, branch: str) -> set[str]:
        """Blocks control-dependent on ``branch``: everything reachable
        from either target before the branch's immediate post-dominator."""
        stop = self._pdom.get(branch)
        block = self.cfg.block(branch)
        terminator = block.terminator
        assert isinstance(terminator, CondBranch)
        region: set[str] = set()
        stack = [t for t in terminator.targets() if t != stop]
        while stack:
            name = stack.pop()
            if name in region:
                continue
            region.add(name)
            for successor in self.cfg.successors(name):
                if successor != stop and successor not in region:
                    stack.append(successor)
        return region


def analyze_taint(program) -> TaintResult:
    """Solve secret-taint dataflow for a compiled program's entry CFG."""
    return TaintAnalysis(
        program.cfg, program.layout, program.info.secret_symbols
    ).solve()


# ----------------------------------------------------------------------
# Scenario-pruning policy
# ----------------------------------------------------------------------
def _window_site_index(scenario, table) -> list[tuple[str, int]]:
    """Access sites inside either of a scenario's windows (``bm`` union
    ``bh``, per-block at the larger instruction allowance)."""
    allowed: dict[str, int | None] = {}
    for window in (scenario.window_miss, scenario.window_hit):
        for block, limit in window.allowed.items():
            previous = allowed.get(block, 0)
            if previous is None or limit is None:
                allowed[block] = None
            else:
                allowed[block] = max(previous, limit)
    sites: list[tuple[str, int]] = []
    for block, limit in allowed.items():
        for site in table.sites_up_to(block, limit):
            sites.append((block, site.instruction_index))
    return sites


def classify_scenarios(vcfg, table, taint: TaintResult):
    """Partition scenarios into ``(prunable, taint_free, relevant)`` color
    sets.

    ``prunable`` — windows with no access site at all: their window
    transfer is the identity, every rollback/conversion delivery joins a
    value already below its target, and classification walks emit
    nothing, so dropping the color is bit-identical in both verdicts and
    classifications.  ``taint_free`` — windows with accesses, none of
    them taint-reachable: still retained (their rollback pollution and
    speculative classification entries are observable), but counted as
    the headroom a classification-drift-tolerant mode could claim.
    """
    prunable: set[int] = set()
    taint_free: set[int] = set()
    relevant: set[int] = set()
    for scenario in vcfg.scenarios:
        sites = _window_site_index(scenario, table)
        if not sites:
            prunable.add(scenario.color)
        elif not any(
            taint.is_tainted_site(block, index) for block, index in sites
        ):
            taint_free.add(scenario.color)
        else:
            relevant.add(scenario.color)
    return frozenset(prunable), frozenset(taint_free), frozenset(relevant)


def prunable_scenario_colors(vcfg, table, taint: TaintResult) -> frozenset[int]:
    """Colors the multicolor engine may skip without changing any verdict
    or classification (see :func:`classify_scenarios`)."""
    prunable, _, _ = classify_scenarios(vcfg, table, taint)
    return prunable


def tainted_branch_blocks(program, taint: TaintResult | None = None) -> frozenset[str]:
    """Branch blocks whose speculative windows can reach a tainted access
    — the candidates worth scoring first during fence placement.

    A branch is taint-relevant when any access site reachable from either
    successor (conservatively ignoring depth bounds, so the answer does
    not depend on the speculation config) is taint-reachable.
    """
    if taint is None:
        taint = analyze_taint(program)
    cfg = program.cfg
    blocks_with_tainted_sites = {block for block, _ in taint.tainted_sites}
    relevant: set[str] = set()
    for branch in cfg.conditional_blocks():
        seen: set[str] = set()
        stack = list(cfg.successors(branch))
        found = False
        while stack and not found:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in blocks_with_tainted_sites:
                found = True
                break
            stack.extend(cfg.successors(name))
        if found:
            relevant.add(branch)
    return frozenset(relevant)
