"""Driver for the speculative must-hit cache analysis (Algorithm 2/3).

The heavy lifting lives in
:class:`repro.analysis.multicolor.SpeculativeCacheAnalysis`; this module
provides the one-call entry point used by the applications, examples and
benchmarks, mirroring :func:`repro.analysis.baseline.analyze_baseline`.
"""

from __future__ import annotations

from repro.analysis.multicolor import SpeculativeCacheAnalysis
from repro.analysis.result import CacheAnalysisResult
from repro.cache.config import CacheConfig
from repro.frontend import CompiledProgram
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy


def analyze_speculative(
    program: CompiledProgram,
    cache_config: CacheConfig | None = None,
    speculation: SpeculationConfig | None = None,
    merge_strategy: MergeStrategy | None = None,
    depth_miss: int | None = None,
    depth_hit: int | None = None,
    dynamic_depth_bounding: bool | None = None,
    use_shadow_state: bool | None = None,
    scenario_shards: int = 1,
    shard_threads: bool = False,
    shard_backend: str | None = None,
    prune_scenarios: bool = False,
) -> CacheAnalysisResult:
    """Run the speculation-sound must-hit analysis on ``program``.

    Either pass a full :class:`SpeculationConfig`, or override individual
    knobs (merge strategy, ``bm``/``bh`` depths, dynamic bounding, shadow
    state); unspecified knobs keep the paper's defaults.

    ``scenario_shards >= 2`` selects the scenario-sharded scheduler
    (groups of colors solved against an outer normal-state fixpoint
    loop); ``shard_backend`` picks where the shard fixpoints execute —
    ``"serial"``, ``"threads"``, or ``"processes"`` (bit-identical by
    construction; see the backend section of
    :mod:`repro.analysis.multicolor`).  None defers to the legacy
    ``shard_threads`` flag, then ``REPRO_SHARD_BACKEND``, then serial.

    ``prune_scenarios`` runs the secret-taint pre-analysis and skips the
    speculation scenarios it proves irrelevant (access-free windows) —
    verdicts and classifications are bit-identical to the unpruned run;
    only iteration counts and wall-clock change.
    """
    config = speculation or SpeculationConfig.paper_default()
    if merge_strategy is not None:
        config = config.with_strategy(merge_strategy)
    if depth_miss is not None or depth_hit is not None:
        config = config.with_depths(
            depth_miss if depth_miss is not None else config.depth_miss,
            depth_hit if depth_hit is not None else config.depth_hit,
        )
    if dynamic_depth_bounding is not None or use_shadow_state is not None:
        config = SpeculationConfig(
            depth_miss=config.depth_miss,
            depth_hit=config.depth_hit,
            merge_strategy=config.merge_strategy,
            dynamic_depth_bounding=(
                config.dynamic_depth_bounding
                if dynamic_depth_bounding is None
                else dynamic_depth_bounding
            ),
            use_shadow_state=(
                config.use_shadow_state if use_shadow_state is None else use_shadow_state
            ),
        )
    engine = SpeculativeCacheAnalysis(
        program,
        cache_config=cache_config,
        speculation=config,
        scenario_shards=scenario_shards,
        shard_threads=shard_threads,
        shard_backend=shard_backend,
        prune_scenarios=prune_scenarios,
    )
    return engine.run()
