"""Result types shared by the baseline and speculative cache analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cache.config import CacheConfig
from repro.ir.instructions import MemoryRef
from repro.ir.memory import AccessKind
from repro.speculation.config import SpeculationConfig


@dataclass(frozen=True)
class AccessClassification:
    """The analysis verdict for one static memory-access site.

    ``speculative`` marks classifications of accesses *inside a
    speculative window* (they model what a mispredicted excursion does to
    the cache; their misses are the paper's "#SpMiss", which are masked by
    the pipeline and not directly observable).  ``secret_dependent`` is
    set for secret-indexed accesses whose hit/miss outcome depends on
    which element the secret selects — the side-channel condition.
    """

    block: str
    instruction_index: int
    ref: MemoryRef
    kind: AccessKind
    must_hit: bool
    speculative: bool = False
    scenario_color: int | None = None
    secret_indexed: bool = False
    secret_dependent: bool = False

    @property
    def site(self) -> tuple[str, int]:
        return (self.block, self.instruction_index)


@dataclass
class CacheAnalysisResult:
    """Everything an analysis run produces.

    ``analysis_time`` is the wall-clock cost of the fixpoint computation
    that produced these states.  When the result is replayed from an
    engine's result cache, ``from_cache`` is set and ``analysis_time``
    still reports the original computation — the lookup itself is
    near-free and not an "analysis time".

    ``shard_backend_used`` and ``provenance`` are observational
    (``compare=False``): they record *how* the verdict was produced —
    which shard backend executed a sharded run, and the replayable
    :class:`~repro.obs.provenance.ProvenanceStamp` the engine attaches —
    and never participate in equality, result keys, or fingerprints.
    """

    program_name: str
    cache_config: CacheConfig
    speculation: SpeculationConfig | None
    entry_states: dict[str, Any] = field(default_factory=dict)
    classifications: list[AccessClassification] = field(default_factory=list)
    iterations: int = 0
    widenings: int = 0
    analysis_time: float = 0.0
    num_speculative_branches: int = 0
    num_virtual_edges: int = 0
    num_virtual_edges_active: int = 0
    from_cache: bool = False
    shard_backend_used: str | None = field(default=None, compare=False)
    provenance: Any = field(default=None, compare=False)

    def __setstate__(self, state):
        # Artifacts pickled before the telemetry fields existed must stay
        # readable (and `dataclasses.replace`-able) without a store format
        # bump: default the missing observational fields.
        self.__dict__.update(state)
        self.__dict__.setdefault("shard_backend_used", None)
        self.__dict__.setdefault("provenance", None)

    # ------------------------------------------------------------------
    # Normal-execution counts
    # ------------------------------------------------------------------
    def normal_classifications(self) -> list[AccessClassification]:
        return [c for c in self.classifications if not c.speculative]

    def speculative_classifications(self) -> list[AccessClassification]:
        return [c for c in self.classifications if c.speculative]

    @property
    def miss_count(self) -> int:
        """Number of access sites that cannot be proven to always hit
        (the paper's "#Miss" column)."""
        return sum(1 for c in self.normal_classifications() if not c.must_hit)

    @property
    def hit_count(self) -> int:
        return sum(1 for c in self.normal_classifications() if c.must_hit)

    @property
    def access_count(self) -> int:
        return len(self.normal_classifications())

    @property
    def speculative_miss_count(self) -> int:
        """Distinct sites that may miss during a speculative excursion
        (the paper's "#SpMiss")."""
        sites = {
            c.site for c in self.speculative_classifications() if not c.must_hit
        }
        return len(sites)

    # ------------------------------------------------------------------
    # Side-channel related queries
    # ------------------------------------------------------------------
    def secret_indexed_classifications(self) -> list[AccessClassification]:
        return [c for c in self.normal_classifications() if c.secret_indexed]

    def secret_dependent_classifications(self) -> list[AccessClassification]:
        return [c for c in self.normal_classifications() if c.secret_dependent]

    @property
    def leak_site_count(self) -> int:
        """Number of secret-dependent access sites (what the mitigation
        synthesiser drives to zero)."""
        return len(self.secret_dependent_classifications())

    @property
    def leak_detected(self) -> bool:
        """True when at least one secret-indexed access has a cache outcome
        that depends on the secret value."""
        return bool(self.secret_dependent_classifications())

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def must_hit_sites(self) -> set[tuple[str, int]]:
        return {c.site for c in self.normal_classifications() if c.must_hit}

    def miss_sites(self) -> set[tuple[str, int]]:
        return {c.site for c in self.normal_classifications() if not c.must_hit}

    @property
    def is_speculative(self) -> bool:
        return self.speculation is not None and self.speculation.depth_miss > 0

    def summary(self) -> str:
        mode = "speculative" if self.is_speculative else "non-speculative"
        lines = [
            f"{mode} cache analysis of {self.program_name!r}",
            f"  accesses: {self.access_count}  must-hit: {self.hit_count}  "
            f"possible misses: {self.miss_count}",
        ]
        if self.is_speculative:
            lines.append(
                f"  speculative misses: {self.speculative_miss_count}  "
                f"speculative branches: {self.num_speculative_branches}  "
                f"virtual edges: {self.num_virtual_edges_active}/{self.num_virtual_edges}"
            )
        cached = " (cached)" if self.from_cache else ""
        lines.append(
            f"  iterations: {self.iterations}  widenings: {self.widenings}  "
            f"time: {self.analysis_time:.3f}s{cached}"
        )
        if self.secret_indexed_classifications():
            verdict = "LEAK DETECTED" if self.leak_detected else "no leak found"
            lines.append(f"  side channel: {verdict}")
        return "\n".join(lines)
