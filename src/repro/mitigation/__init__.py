"""Countermeasure synthesis: automatic speculation-fence placement.

This package closes the detect → repair → re-verify loop on top of the
side-channel application: given a program whose speculative analysis
reports secret-dependent access sites (:class:`~repro.apps.sidechannel.
LeakSite`), it synthesises a set of ``fence;`` insertions whose patched
program *provably* — by re-running the analysis through the
:class:`~repro.engine.engine.AnalysisEngine` — reports zero leak sites.

Layers:

* :mod:`repro.mitigation.patch` — source-level fence points and AST
  patching / re-emission;
* :mod:`repro.mitigation.placement` — candidate generation: the
  fence-every-branch baseline, the speculative branches that survive
  compilation, and dominator-guided hoist points that cover several
  speculation windows with one fence;
* :mod:`repro.mitigation.synthesis` — the greedy minimiser plus the
  verification loop and the :class:`MitigationResult` report.
"""

from repro.mitigation.patch import (
    FencePoint,
    apply_fence_points,
    count_fence_statements,
    enumerate_fence_points,
    patched_source,
)
from repro.mitigation.placement import (
    FENCE_LATENCY_CYCLES,
    count_ir_fences,
    hoist_points,
    surviving_branch_points,
)
from repro.mitigation.synthesis import (
    MitigationError,
    MitigationResult,
    PlacementOutcome,
    mitigation_key,
    synthesize_mitigation,
)

__all__ = [
    "FENCE_LATENCY_CYCLES",
    "FencePoint",
    "MitigationError",
    "MitigationResult",
    "PlacementOutcome",
    "apply_fence_points",
    "count_fence_statements",
    "count_ir_fences",
    "enumerate_fence_points",
    "hoist_points",
    "mitigation_key",
    "patched_source",
    "surviving_branch_points",
    "synthesize_mitigation",
]
