"""The detect → repair → re-verify loop.

:func:`synthesize_mitigation` takes one speculative
:class:`~repro.engine.request.AnalysisRequest`, detects its leak sites,
and produces a :class:`MitigationResult` holding two placements:

* the **fence-every-branch baseline** (no analysis, every source branch
  arm fenced), and
* the **optimized placement**: a greedy minimiser over analysis-guided
  candidates (surviving-branch arms plus dominator-guided hoist points),
  which each round evaluates every remaining candidate by actually
  re-analysing the patched program through the engine — so "removes N
  leak sites" is a proof, not a heuristic — and keeps the candidate
  removing the most leaks at the lowest WCET-cycle overhead.

Every evaluation is an ordinary engine request: repeated synthesis of
the same program is served from the result caches (including the tier-2
store when one is attached), and the daemon memoises whole
``MitigationResult`` values under :func:`mitigation_key`.

When the engine runs with incremental re-analysis enabled
(``REPRO_INCREMENTAL=1`` / ``AnalysisEngine(incremental=True)``), the
loop instead analyses the unpatched program *once*, retains its fixpoint
snapshot, and scores every candidate as a warm-started re-analysis of an
IR-patched program (:func:`~repro.mitigation.patch.apply_fence_points_ir`)
— skipping the front end and the unperturbed part of the fixpoint per
candidate.  The verdicts are identical; only wall-clock changes.  The
final verification gate is unchanged: cache-free recompilation and
analysis of the selected placement's patched *source*.

The function *refuses to return an unverified placement*: the selected
placement's patched source is re-analysed one final time through the
engine, and anything but zero leak sites raises :class:`MitigationError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.apps.sidechannel import LeakSite
from repro.engine.engine import AnalysisEngine, default_engine
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.errors import ReproError
from repro.ir.printer import program_to_source
from repro.lang.parser import parse_program
from repro.mitigation.patch import (
    FencePoint,
    apply_fence_points,
    apply_fence_points_ir,
    count_fence_statements,
    enumerate_fence_points,
)
from repro.mitigation.placement import (
    count_ir_fences,
    hoist_points,
    placement_cycles,
    surviving_branch_points,
)
from repro.obs import publish_progress, span

#: Synthesis gives up after this many greedy rounds (each round adds one
#: fence point); programs needing more are declared unmitigable by the
#: optimizer and fall back to the baseline placement.
DEFAULT_MAX_ROUNDS = 8


class MitigationError(ReproError):
    """No verified fence placement exists (or verification failed)."""


@dataclass(frozen=True)
class PlacementOutcome:
    """One evaluated fence placement, with its re-analysis verdict."""

    strategy: str
    points: tuple[FencePoint, ...]
    source_fences: int
    ir_fences: int
    leak_sites_after: int
    verified: bool
    wcet_cycles: int
    wcet_overhead_cycles: int
    patched_source: str

    def to_wire(self) -> dict:
        return {
            "strategy": self.strategy,
            "points": [
                {"kind": point.kind, "line": point.line} for point in self.points
            ],
            "source_fences": self.source_fences,
            "ir_fences": self.ir_fences,
            "leak_sites_after": self.leak_sites_after,
            "verified": self.verified,
            "wcet_cycles": self.wcet_cycles,
            "wcet_overhead_cycles": self.wcet_overhead_cycles,
            "patched_source": self.patched_source,
        }


@dataclass
class MitigationResult:
    """Outcome of one synthesis run.

    ``chosen`` names the placement a caller should apply: ``"optimized"``
    when the minimiser verified, ``"baseline"`` when only
    fence-every-branch did, ``"none"`` when the program was already
    leak-free (both placements are then absent).  On incremental runs
    where the optimizer verified, ``baseline`` is None — the yardstick
    placement is only evaluated when needed as the fallback.
    """

    name: str
    leak_sites_before: int
    secret_sites: int
    leak_sites: list[LeakSite] = field(default_factory=list)
    baseline: PlacementOutcome | None = None
    optimized: PlacementOutcome | None = None
    chosen: str = "none"
    unpatched_wcet_cycles: int = 0
    analyses_run: int = 0
    synthesis_time: float = 0.0
    from_cache: bool = False
    #: Whether candidates were scored through the incremental path
    #: (IR-level patching + warm-started fixpoints).  When True and the
    #: optimizer verified, ``baseline`` is None: the fence-every-branch
    #: yardstick is only evaluated as the fallback placement.
    incremental: bool = False
    #: Wall-clock spent evaluating candidate placements (the part the
    #: incremental path accelerates; the rest of ``synthesis_time`` is
    #: the unpatched analysis and the final cache-free verification).
    scoring_time: float = 0.0

    @property
    def already_safe(self) -> bool:
        return self.leak_sites_before == 0

    def selected(self) -> PlacementOutcome | None:
        if self.chosen == "optimized":
            return self.optimized
        if self.chosen == "baseline":
            return self.baseline
        return None

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "leak_sites_before": self.leak_sites_before,
            "secret_sites": self.secret_sites,
            "leak_sites": [
                {
                    "block": site.block,
                    "instruction_index": site.instruction_index,
                    "symbol": site.symbol,
                    "line": site.line,
                }
                for site in self.leak_sites
            ],
            "baseline": None if self.baseline is None else self.baseline.to_wire(),
            "optimized": None if self.optimized is None else self.optimized.to_wire(),
            "chosen": self.chosen,
            "unpatched_wcet_cycles": self.unpatched_wcet_cycles,
            "analyses_run": self.analyses_run,
            "synthesis_time": self.synthesis_time,
            "from_cache": self.from_cache,
            "incremental": self.incremental,
            "scoring_time": self.scoring_time,
        }


def mitigation_key(request: AnalysisRequest, optimize: bool = True) -> str:
    """Store key (64-hex) for a memoised synthesis of ``request``.

    The request is normalised to the speculative kind first, exactly as
    :func:`synthesize_mitigation` will run it — a BASELINE-kind request's
    own result key ignores the speculation config, which would collide
    syntheses that analyse differently.
    """
    if request.kind is not AnalysisKind.SPECULATIVE:
        request = replace(request, kind=AnalysisKind.SPECULATIVE)
    material = f"mitigation|v1|{request.result_key()}|optimize={bool(optimize)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def synthesize_mitigation(
    request: AnalysisRequest,
    engine: AnalysisEngine | None = None,
    optimize: bool = True,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> MitigationResult:
    """Synthesise and verify a fence placement for ``request``.

    ``request`` is normalised to the speculative analysis kind (leaks are
    a speculative phenomenon; the baseline analysis cannot see them).
    With ``optimize=False`` only the fence-every-branch placement is
    evaluated.  Raises :class:`MitigationError` when leaks remain under
    every placement, so a returned result always carries a placement
    whose patched program re-analysed to zero leak sites.
    """
    eng = engine or default_engine()
    if request.kind is not AnalysisKind.SPECULATIVE:
        request = replace(request, kind=AnalysisKind.SPECULATIVE)
    label = request.label or request.entry or "<program>"

    # The public `synthesis_time` is derived from the span's duration:
    # the span always times itself, sinks or not.
    with span("mitigate", program=label, optimize=optimize) as mitigate_span:
        result = _synthesize(request, eng, optimize, max_rounds, label, mitigate_span)
    result.synthesis_time = mitigate_span.duration
    return result


def _synthesize(
    request: AnalysisRequest,
    eng: AnalysisEngine,
    optimize: bool,
    max_rounds: int,
    label: str,
    mitigate_span,
) -> MitigationResult:
    # The incremental path: retain a snapshot of the unpatched analysis
    # and score every candidate as a warm-started re-analysis of an
    # IR-patched program, skipping the front end and the unperturbed part
    # of the fixpoint per candidate.  Verdict-identical to the cold path;
    # the final _verify gate stays cache-free source recompilation.
    incremental = eng.incremental_enabled and request.scenario_shards == 1
    if incremental:
        unpatched = eng.ensure_snapshot(request)
        base_key = request.result_key()
    else:
        unpatched = eng.run(request)
        base_key = None
    leaks = unpatched.secret_dependent_classifications()
    program = eng.compile(request)
    program_ast = parse_program(request.source)
    cache_config = request.resolved_cache_config
    original_fences = count_fence_statements(program_ast)
    unpatched_cycles = placement_cycles(
        unpatched.hit_count,
        unpatched.miss_count,
        cache_config,
        count_ir_fences(program),
    )

    result = MitigationResult(
        name=label,
        leak_sites_before=len(leaks),
        secret_sites=len(unpatched.secret_indexed_classifications()),
        leak_sites=[LeakSite.from_classification(c) for c in leaks],
        unpatched_wcet_cycles=unpatched_cycles,
        analyses_run=1,
        incremental=incremental,
    )
    mitigate_span.set(leak_sites_before=len(leaks))
    publish_progress("mitigate", program=label, leak_sites_before=len(leaks))
    if not leaks:
        return result

    # Scored candidates whose snapshots were retained, for warm-start
    # chaining: the greedy loop's round-N placements extend round-(N-1)'s
    # accepted set, so the scored subset sharing the most points is a far
    # closer warm-start base than the unpatched program (its diff is just
    # the fresh group, not every fence placed so far).
    chained: dict[frozenset, str] = {}

    def nearest_base(points: tuple[FencePoint, ...]) -> str | None:
        point_set = frozenset(points)
        best: tuple[int, str] | None = None
        for scored, key in chained.items():
            if scored and scored < point_set and (best is None or len(scored) > best[0]):
                best = (len(scored), key)
        return best[1] if best is not None else base_key

    def evaluate(points: tuple[FencePoint, ...], strategy: str) -> PlacementOutcome:
        with span(
            "mitigate.candidate", strategy=strategy, fence_points=len(points)
        ) as candidate_span:
            patched_ast = apply_fence_points(program_ast, points)
            source = program_to_source(patched_ast)
            patched_request = replace(
                request,
                source=source,
                label=f"{label}+fences",
                warm_from=nearest_base(points) if incremental else base_key,
            )
            analysed = None
            patched_program = None
            if incremental:
                # Patch at the IR level and score through the quarantined
                # warm path: no front end, no result-cache writes (the IR
                # twin is verdict-identical but not line-faithful).  Points
                # with no IR image — arms of fully-unrolled loops, as in
                # the fence-every-branch baseline — take the source path.
                patched_program = apply_fence_points_ir(program, points, source)
                if patched_program is not None:
                    analysed = eng.run_ephemeral(
                        patched_request, patched_program, retain=True
                    )
                    chained[frozenset(points)] = patched_request.result_key()
            if analysed is None:
                analysed = eng.run(patched_request)
                patched_program = eng.compile(patched_request)
            result.analyses_run += 1
            ir_fences = count_ir_fences(patched_program)
            cycles = placement_cycles(
                analysed.hit_count, analysed.miss_count, cache_config, ir_fences
            )
            candidate_span.set(
                leak_sites_after=analysed.leak_site_count,
                verified=analysed.leak_site_count == 0,
            )
            publish_progress(
                "mitigate.candidate",
                strategy=strategy,
                fence_points=len(points),
                leak_sites_after=analysed.leak_site_count,
                verified=analysed.leak_site_count == 0,
            )
        result.scoring_time += candidate_span.duration
        return PlacementOutcome(
            strategy=strategy,
            points=tuple(points),
            source_fences=count_fence_statements(patched_ast) - original_fences,
            ir_fences=ir_fences,
            leak_sites_after=analysed.leak_site_count,
            verified=analysed.leak_site_count == 0,
            wcet_cycles=cycles,
            wcet_overhead_cycles=cycles - unpatched_cycles,
            patched_source=source,
        )

    if not incremental:
        result.baseline = evaluate(
            tuple(enumerate_fence_points(program_ast)), "baseline"
        )
    if optimize:
        result.optimized = _greedy_minimise(
            program, request, evaluate, len(leaks), max_rounds
        )
    if incremental and (result.optimized is None or not result.optimized.verified):
        # The fence-every-branch yardstick is only needed as the fallback
        # placement; when the optimizer verified, skipping it keeps the
        # interactive loop at one fixed-cost analysis (the unpatched one).
        result.baseline = evaluate(
            tuple(enumerate_fence_points(program_ast)), "baseline"
        )

    if result.optimized is not None and result.optimized.verified:
        result.chosen = "optimized"
    elif result.baseline is not None and result.baseline.verified:
        result.chosen = "baseline"
    else:
        remaining = (
            result.baseline.leak_sites_after if result.baseline is not None else len(leaks)
        )
        raise MitigationError(
            f"no fence placement closes the {len(leaks)} leak site(s) of "
            f"{label!r}: even fence-every-branch leaves "
            f"{remaining} (the leak is not a "
            "speculation artefact)"
        )

    _verify(result, request, eng, label)
    mitigate_span.set(chosen=result.chosen, analyses_run=result.analyses_run)
    return result


def _candidate_groups(program, request: AnalysisRequest) -> list[tuple[FencePoint, ...]]:
    """Candidate placements for one greedy step, cheapest shapes first:

    1. dominator-guided hoist points (one fence truncating the windows of
       several scenarios at once);
    2. single branch arms (one fence killing one scenario);
    3. whole branches (both arms — needed when both of a branch's
       scenarios pollute, as a lone arm fence then removes nothing).

    Within each family, candidates touching taint-relevant speculative
    windows come first (one taint solve shared by both families), so the
    greedy rounds spend their early evaluations where a fence can
    actually close a leak.
    """
    from repro.analysis.taint import tainted_branch_blocks

    tainted = tainted_branch_blocks(program)
    groups: list[tuple[FencePoint, ...]] = [
        (point,)
        for point in hoist_points(
            program, request.resolved_speculation, tainted_branches=tainted
        )
    ]
    arms = surviving_branch_points(program, tainted_branches=tainted)
    groups += [(point,) for point in arms if (point,) not in groups]
    by_line: dict[int, list[FencePoint]] = {}
    for point in arms:
        by_line.setdefault(point.line, []).append(point)
    groups += [tuple(points) for points in by_line.values() if len(points) > 1]
    return groups


def _greedy_minimise(
    program,
    request: AnalysisRequest,
    evaluate,
    leaks_before: int,
    max_rounds: int,
) -> PlacementOutcome | None:
    """Greedy set-cover over analysis-guided candidate groups.

    Each round evaluates every remaining candidate group appended to the
    placement so far and keeps the one removing the most leak sites;
    WCET-cycle overhead breaks ties, fewer source fences break the rest.
    Rounds in which no group removes a leak stop the search (returning
    the best-so-far lets the caller fall back to the baseline).
    """
    groups = _candidate_groups(program, request)
    placed: list[FencePoint] = []
    best_outcome: PlacementOutcome | None = None
    remaining = leaks_before
    for _ in range(max_rounds):
        round_best: tuple[tuple, tuple[FencePoint, ...], PlacementOutcome] | None = None
        for group in groups:
            fresh = tuple(point for point in group if point not in placed)
            if not fresh:
                continue
            outcome = evaluate(tuple(placed) + fresh, "optimized")
            score = (
                -(remaining - outcome.leak_sites_after),
                outcome.wcet_overhead_cycles,
                outcome.source_fences,
            )
            if round_best is None or score < round_best[0]:
                round_best = (score, fresh, outcome)
        if round_best is None or round_best[0][0] >= 0:
            return best_outcome  # no group removes a leak site
        _, chosen, outcome = round_best
        placed.extend(chosen)
        remaining = outcome.leak_sites_after
        best_outcome = outcome
        if outcome.verified:
            return outcome
    return best_outcome


def _verify(
    result: MitigationResult,
    request: AnalysisRequest,
    engine: AnalysisEngine,
    label: str,
) -> None:
    """The final gate: recompute the side-channel analysis of the selected
    placement's patched source *cache-free* and refuse to return anything
    that still leaks.

    The greedy loop's own evaluations went through ``engine`` and sit in
    its caches; replaying the same request would be a tautological check.
    :func:`execute_request` is the engine's cache-free core, so this is an
    independent recomputation of the verdict the result promises.
    """
    from repro.engine.engine import execute_request

    selected = result.selected()
    assert selected is not None
    verification = execute_request(
        replace(request, source=selected.patched_source, label=f"{label}+fences")
    )
    result.analyses_run += 1
    if verification.leak_site_count:
        raise MitigationError(
            f"verification failed for {label!r}: the {selected.strategy} "
            "placement still reports leak sites"
        )
