"""Candidate fence placements for the mitigation synthesiser.

Three candidate families, all expressed as source-level
:class:`~repro.mitigation.patch.FencePoint` values:

* the **fence-every-branch baseline** — every arm of every source
  conditional (:func:`~repro.mitigation.patch.enumerate_fence_points`);
  no analysis needed, conservative and expensive, the Table-comparison
  yardstick (what ``lfence``-after-every-branch hardening does);
* **surviving-branch points** — arms of only those branches that still
  exist as conditional branches in the *compiled* program (fully
  unrolled loops disappear, so fencing them is pure overhead the
  baseline pays and the optimizer skips);
* **dominator-guided hoist points** — blocks shared by several
  speculation windows, hoisted as high as the dominator tree allows:
  one fence placed there truncates every window flowing through the
  block, covering several leak-causing scenarios (and hence leak sites)
  at once.

The WCET-cycle scoring used to rank otherwise-equal placements lives
here too: a placement's cost is its analysis-derived cycle bound (via
:func:`repro.apps.wcet.estimated_cycles`) plus a per-fence pipeline
penalty for every fence instruction in the compiled program.
"""

from __future__ import annotations

from repro.apps.wcet import estimated_cycles
from repro.cache.config import CacheConfig
from repro.frontend import CompiledProgram
from repro.ir.cfg import CFG
from repro.ir.dominators import compute_dominators
from repro.ir.instructions import CondBranch, Fence
from repro.mitigation.patch import FencePoint
from repro.speculation.config import SpeculationConfig
from repro.speculation.vcfg import build_vcfg

#: Pipeline cost charged per fence *instruction* in the compiled program
#: (every execution of a fence drains in-flight work; 10 cycles is the
#: usual order of magnitude quoted for LFENCE).
FENCE_LATENCY_CYCLES = 10


def count_ir_fences(program: CompiledProgram) -> int:
    """Fence instructions in the compiled entry CFG (post unroll/inline:
    a single source fence inside an unrolled loop counts once per copy,
    which is exactly what it costs at run time)."""
    cfg = program.cfg
    return sum(
        1
        for name in cfg.reachable_blocks()
        for instruction in cfg.block(name).instructions
        if isinstance(instruction, Fence)
    )


def placement_cycles(
    hit_count: int, miss_count: int, cache_config: CacheConfig, ir_fences: int
) -> int:
    """WCET-cycle score of an analysed placement (lower is better)."""
    return (
        estimated_cycles(hit_count, miss_count, cache_config)
        + ir_fences * FENCE_LATENCY_CYCLES
    )


def _resolve_tainted_branches(program: CompiledProgram, tainted_branches):
    """The taint-relevant branch set for candidate ranking: the passed-in
    set when the caller already solved taint, else a fresh solve.  Pass
    ``frozenset()`` to disable ranking outright."""
    if tainted_branches is not None:
        return frozenset(tainted_branches)
    from repro.analysis.taint import tainted_branch_blocks

    return tainted_branch_blocks(program)


def surviving_branch_points(
    program: CompiledProgram, tainted_branches=None
) -> list[FencePoint]:
    """Arm points of branches that survive compilation as conditional
    branches.

    Deterministic order, taint-relevant branches first: a branch whose
    speculative windows can reach a taint-reachable access (see
    :func:`repro.analysis.taint.tainted_branch_blocks`) is where a fence
    can actually close a leak, so the greedy synthesiser scores those
    candidates before the rest.  This is a pure *ordering* refinement —
    the candidate set is unchanged, and within each taint class the
    historical (line, taken-before-fallthrough) order is preserved.
    ``tainted_branches`` accepts a precomputed set so one taint solve can
    serve every candidate family.
    """
    cfg = program.cfg
    tainted = _resolve_tainted_branches(program, tainted_branches)
    points: set[FencePoint] = set()
    tainted_lines: set[int] = set()
    for name in cfg.conditional_blocks():
        terminator = cfg.block(name).terminator
        assert isinstance(terminator, CondBranch)
        if terminator.true_target == terminator.false_target or terminator.line <= 0:
            continue
        points.add(FencePoint("taken", terminator.line))
        points.add(FencePoint("fallthrough", terminator.line))
        if name in tainted:
            tainted_lines.add(terminator.line)
    return sorted(
        points,
        key=lambda p: (p.line not in tainted_lines, p.line, p.kind != "taken"),
    )


def hoist_points(
    program: CompiledProgram,
    speculation: SpeculationConfig | None = None,
    tainted_branches=None,
) -> list[FencePoint]:
    """Dominator-guided hoist candidates: source points inside blocks that
    several speculation windows share.

    For every block covered by at least two scenarios' (long) windows,
    walk up the dominator tree to the highest block with the same window
    coverage — the hoisted position covers the same scenarios but sits
    earlier, truncating more of each window — and map it to a ``before``
    point at the line of its first line-carrying instruction.  Candidates
    covering more scenarios come first.

    ``speculation`` must be the *same resolved config the evaluating
    analysis runs under* (``request.resolved_speculation``): the windows
    candidates are placed against depend on the speculation depth and
    merge strategy, and a mismatch silently produces candidates for a
    different analysis than the one scoring them.  The None default
    (paper config) exists for standalone exploration only; the vcfg comes
    from the shared content-fingerprint memo, so this costs nothing when
    the synthesiser has already analysed the program under that config.
    """
    cfg = program.cfg
    tainted = _resolve_tainted_branches(program, tainted_branches)
    vcfg = build_vcfg(cfg, speculation or SpeculationConfig.paper_default())
    coverage: dict[str, set[int]] = {}
    tainted_cover: dict[str, bool] = {}
    for scenario in vcfg.scenarios:
        relevant = scenario.branch_block in tainted
        for block in scenario.window_miss.allowed:
            coverage.setdefault(block, set()).add(scenario.color)
            tainted_cover[block] = tainted_cover.get(block, False) or relevant
    shared = {block for block, colors in coverage.items() if len(colors) >= 2}
    if not shared:
        return []
    dominators = compute_dominators(cfg)

    def hoisted(block: str) -> str:
        # The highest dominator of ``block`` that is itself shared and
        # covers at least the same scenarios (sound: a fence there still
        # truncates every window the original placement truncated).
        best = block
        for candidate in sorted(dominators.get(block, ()) - {block}):
            if (
                candidate in shared
                and coverage[candidate] >= coverage[block]
                and candidate in dominators.get(best, set())
            ):
                best = candidate
        return best

    # Taint-relevant hoists first (a window that can reach a tainted
    # access is where truncation can close a leak), then widest coverage,
    # then source order — the historical key, now one rank down.
    ranked: list[tuple[bool, int, int, FencePoint]] = []
    seen: set[FencePoint] = set()
    for block in shared:
        target = hoisted(block)
        line = _first_line(cfg, target)
        if line is None:
            continue
        point = FencePoint("before", line)
        if point in seen:
            continue
        seen.add(point)
        ranked.append(
            (not tainted_cover.get(target, False), -len(coverage[target]), line, point)
        )
    ranked.sort()
    return [point for _, _, _, point in ranked]


def _first_line(cfg: CFG, block: str) -> int | None:
    for instruction in cfg.block(block).instructions:
        if instruction.line > 0:
            return instruction.line
    terminator = cfg.block(block).terminator
    if terminator is not None and terminator.line > 0:
        return terminator.line
    return None
