"""Source-level fence points and AST patching.

A :class:`FencePoint` names one place in the *source* where a ``fence;``
statement can be inserted, identified by the line of an existing
statement (lines survive unrolling, inlining and lowering, so IR-level
facts — scenario windows, leak sites — map back to source points).

Three kinds of point exist:

``taken``
    First statement of the true side of the conditional at ``line`` (an
    ``if``'s then-branch, a loop's body).  Kills every speculation
    scenario that mispredicts the branch as taken.
``fallthrough``
    First statement of the false side: an ``if``'s else-branch, or —
    when there is none, and for loops — immediately after the construct
    (the start of the branch's false target / the loop's exit).  Kills
    every mispredicted-not-taken scenario.
``before``
    Immediately before the first statement carrying ``line``.  Used for
    dominator-guided hoisting: a single fence inside a block shared by
    several speculation windows truncates all of them at once.

Patching is pure: :func:`apply_fence_points` deep-copies the AST, and
:func:`patched_source` re-emits compilable MiniC via
:func:`repro.ir.printer.program_to_source`, which is what the engine
re-analyses.  Inserted fences carry line 0, so they can never satisfy a
later point lookup themselves.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterable

from repro.ir.printer import program_to_source
from repro.lang import ast

_POINT_KINDS = ("taken", "fallthrough", "before")


@dataclass(frozen=True, order=True)
class FencePoint:
    """One source-level fence insertion point."""

    kind: str
    line: int

    def __post_init__(self) -> None:
        if self.kind not in _POINT_KINDS:
            raise ValueError(f"unknown fence point kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "taken":
            return f"taken side of the branch at line {self.line}"
        if self.kind == "fallthrough":
            return f"fall-through side of the branch at line {self.line}"
        return f"before the statement at line {self.line}"


def _is_branching(stmt: ast.Stmt) -> bool:
    """Statements that lower to a conditional branch (speculation sources)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return True
    return isinstance(stmt, ast.For) and stmt.cond is not None


def enumerate_fence_points(program: ast.Program) -> list[FencePoint]:
    """Every branch-arm point of every conditional construct, in source
    order — the fence-every-branch baseline's placement."""
    points: list[FencePoint] = []
    seen: set[FencePoint] = set()
    for function in program.functions:
        for stmt in ast.walk_statements(function.body):
            if not _is_branching(stmt):
                continue
            for kind in ("taken", "fallthrough"):
                point = FencePoint(kind, stmt.line)
                if point not in seen:
                    seen.add(point)
                    points.append(point)
    return points


def count_fence_statements(program: ast.Program) -> int:
    """Number of ``fence;`` statements in the translation unit."""
    return sum(
        1
        for function in program.functions
        for stmt in ast.walk_statements(function.body)
        if isinstance(stmt, ast.Fence)
    )


def _fence() -> ast.Fence:
    return ast.Fence(line=0, column=0)


def apply_fence_points(
    program: ast.Program, points: Iterable[FencePoint]
) -> ast.Program:
    """Return a deep copy of ``program`` with fences inserted at ``points``.

    ``taken``/``fallthrough`` points apply to *every* conditional at
    their line (one source line holds at most one construct in practice);
    a ``before`` point applies once, at the first statement in walk order
    carrying its line.
    """
    patched = copy.deepcopy(program)
    points = list(points)  # the Iterable is consumed three times below
    taken_lines = {p.line for p in points if p.kind == "taken"}
    fall_lines = {p.line for p in points if p.kind == "fallthrough"}
    before_pending = {p.line for p in points if p.kind == "before"}
    for function in patched.functions:
        function.body = _rewrite_block(
            function.body, taken_lines, fall_lines, before_pending
        )
    return patched


def patched_source(program: ast.Program, points: Iterable[FencePoint]) -> str:
    """Emit the MiniC source of ``program`` patched with ``points``."""
    return program_to_source(apply_fence_points(program, points))


def _rewrite_block(
    block: ast.Block,
    taken_lines: set[int],
    fall_lines: set[int],
    before_pending: set[int],
) -> ast.Block:
    statements: list[ast.Stmt] = []
    for stmt in block.statements:
        if stmt.line in before_pending and not isinstance(stmt, ast.Fence):
            before_pending.discard(stmt.line)
            statements.append(_fence())
        fence_after = False
        if isinstance(stmt, ast.Block):
            stmt = _rewrite_block(stmt, taken_lines, fall_lines, before_pending)
        elif isinstance(stmt, ast.If):
            stmt.then_body = _rewrite_block(
                stmt.then_body, taken_lines, fall_lines, before_pending
            )
            if stmt.else_body is not None:
                stmt.else_body = _rewrite_block(
                    stmt.else_body, taken_lines, fall_lines, before_pending
                )
            if stmt.line in taken_lines:
                stmt.then_body.statements.insert(0, _fence())
            if stmt.line in fall_lines:
                if stmt.else_body is not None:
                    stmt.else_body.statements.insert(0, _fence())
                else:
                    # The branch's false target is the code after the if.
                    fence_after = True
        elif isinstance(stmt, (ast.While, ast.For)):
            stmt.body = _rewrite_block(
                stmt.body, taken_lines, fall_lines, before_pending
            )
            if _is_branching(stmt):
                if stmt.line in taken_lines:
                    stmt.body.statements.insert(0, _fence())
                if stmt.line in fall_lines:
                    # The false target of the loop branch is the loop exit.
                    fence_after = True
        statements.append(stmt)
        if fence_after:
            statements.append(_fence())
    return ast.Block(statements=statements, line=block.line, column=block.column)
