"""Source-level fence points and AST patching.

A :class:`FencePoint` names one place in the *source* where a ``fence;``
statement can be inserted, identified by the line of an existing
statement (lines survive unrolling, inlining and lowering, so IR-level
facts — scenario windows, leak sites — map back to source points).

Three kinds of point exist:

``taken``
    First statement of the true side of the conditional at ``line`` (an
    ``if``'s then-branch, a loop's body).  Kills every speculation
    scenario that mispredicts the branch as taken.
``fallthrough``
    First statement of the false side: an ``if``'s else-branch, or —
    when there is none, and for loops — immediately after the construct
    (the start of the branch's false target / the loop's exit).  Kills
    every mispredicted-not-taken scenario.
``before``
    Immediately before the first statement carrying ``line``.  Used for
    dominator-guided hoisting: a single fence inside a block shared by
    several speculation windows truncates all of them at once.

Patching is pure: :func:`apply_fence_points` rebuilds only the spine of
blocks down to each insertion (sharing untouched subtrees), and
:func:`patched_source` re-emits compilable MiniC via
:func:`repro.ir.printer.program_to_source`, which is what the engine
re-analyses.  Inserted fences carry line 0, so they can never satisfy a
later point lookup themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.ir.printer import program_to_source
from repro.lang import ast

_POINT_KINDS = ("taken", "fallthrough", "before")


@dataclass(frozen=True, order=True)
class FencePoint:
    """One source-level fence insertion point."""

    kind: str
    line: int

    def __post_init__(self) -> None:
        if self.kind not in _POINT_KINDS:
            raise ValueError(f"unknown fence point kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "taken":
            return f"taken side of the branch at line {self.line}"
        if self.kind == "fallthrough":
            return f"fall-through side of the branch at line {self.line}"
        return f"before the statement at line {self.line}"


def _is_branching(stmt: ast.Stmt) -> bool:
    """Statements that lower to a conditional branch (speculation sources)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return True
    return isinstance(stmt, ast.For) and stmt.cond is not None


def enumerate_fence_points(program: ast.Program) -> list[FencePoint]:
    """Every branch-arm point of every conditional construct, in source
    order — the fence-every-branch baseline's placement."""
    points: list[FencePoint] = []
    seen: set[FencePoint] = set()
    for function in program.functions:
        for stmt in ast.walk_statements(function.body):
            if not _is_branching(stmt):
                continue
            for kind in ("taken", "fallthrough"):
                point = FencePoint(kind, stmt.line)
                if point not in seen:
                    seen.add(point)
                    points.append(point)
    return points


def count_fence_statements(program: ast.Program) -> int:
    """Number of ``fence;`` statements in the translation unit."""
    return sum(
        1
        for function in program.functions
        for stmt in ast.walk_statements(function.body)
        if isinstance(stmt, ast.Fence)
    )


def _fence() -> ast.Fence:
    return ast.Fence(line=0, column=0)


def apply_fence_points(
    program: ast.Program, points: Iterable[FencePoint]
) -> ast.Program:
    """Return ``program`` with fences inserted at ``points``.

    ``taken``/``fallthrough`` points apply to *every* conditional at
    their line (one source line holds at most one construct in practice);
    a ``before`` point applies once, at the first statement in walk order
    carrying its line.

    Pure: the input program is never mutated.  The result shares every
    untouched subtree (declarations, expressions, statements without an
    inserted fence) with the input — the synthesis loop patches the same
    AST hundreds of times, and a full deep copy per candidate costs more
    than scoring some candidates.
    """
    points = list(points)  # the Iterable is consumed three times below
    taken_lines = {p.line for p in points if p.kind == "taken"}
    fall_lines = {p.line for p in points if p.kind == "fallthrough"}
    before_pending = {p.line for p in points if p.kind == "before"}
    return replace(
        program,
        functions=[
            replace(
                function,
                body=_rewrite_block(
                    function.body, taken_lines, fall_lines, before_pending
                ),
            )
            for function in program.functions
        ],
    )


def patched_source(program: ast.Program, points: Iterable[FencePoint]) -> str:
    """Emit the MiniC source of ``program`` patched with ``points``."""
    return program_to_source(apply_fence_points(program, points))


def apply_fence_points_ir(program, points: Iterable[FencePoint], source: str):
    """IR-level twin of :func:`apply_fence_points` over a *compiled* program.

    Returns a new :class:`~repro.frontend.CompiledProgram` whose entry CFG
    carries the fences ``points`` describe, sharing the layout, info and
    untouched blocks with ``program`` — skipping the parse→unroll→lower
    pipeline entirely, which is what makes incremental candidate scoring
    in the mitigation loop cheap.  ``source`` is the patched source text
    the program should claim (what :func:`patched_source` emits), kept so
    downstream consumers see a self-consistent program.

    The mapping is exact for the shapes the lowering pipeline produces:
    every conditional's arms, join and exit blocks are dedicated fresh
    blocks, so a ``taken``/``fallthrough`` fence at index 0 of the
    branch's true/false target is precisely where the source-level patch
    lands after recompilation, duplicated per unrolled copy exactly as a
    source fence inside the construct would be.  ``before`` points fence
    each maximal run of instructions carrying the point's line (one run
    per surviving statement copy).  Returns None when a point cannot be
    mapped — e.g. an arm of a fully-unrolled loop, whose branch no longer
    exists in the IR — in which case the caller must take the source
    path.

    Note the emitted program is *not* line-faithful: inserted fences carry
    line 0 and downstream statements keep their original lines, whereas
    recompiling the patched source shifts them.  Verdict-level outputs
    (leak counts, hit/miss totals, states) are identical; per-site line
    numbers are not, so results of IR-patched runs must never be cached
    under the patched request's key.
    """
    from dataclasses import replace as dataclass_replace

    from repro.ir.basicblock import BasicBlock
    from repro.ir.cfg import CFG, block_fingerprint, block_line_signature
    from repro.ir.instructions import CondBranch, Fence

    cfg = program.cfg
    points = list(points)
    arm_lines = {
        "taken": {p.line for p in points if p.kind == "taken"},
        "fallthrough": {p.line for p in points if p.kind == "fallthrough"},
    }
    before_lines = {p.line for p in points if p.kind == "before"}

    fence_first: set[str] = set()
    matched = {"taken": set(), "fallthrough": set()}
    for name in cfg.conditional_blocks():
        terminator = cfg.block(name).terminator
        assert isinstance(terminator, CondBranch)
        if terminator.line in arm_lines["taken"]:
            fence_first.add(terminator.true_target)
            matched["taken"].add(terminator.line)
        if terminator.line in arm_lines["fallthrough"]:
            fence_first.add(terminator.false_target)
            matched["fallthrough"].add(terminator.line)
    if matched["taken"] != arm_lines["taken"]:
        return None
    if matched["fallthrough"] != arm_lines["fallthrough"]:
        return None

    matched_before: set[int] = set()
    new_blocks: dict[str, BasicBlock] = {}
    touched: set[str] = set()
    for name, block in cfg.blocks.items():
        instructions = list(block.instructions)
        if before_lines:
            insert_at: list[int] = []
            previous_line: int | None = None
            for index, instruction in enumerate(instructions):
                if (
                    instruction.line in before_lines
                    and previous_line != instruction.line
                ):
                    insert_at.append(index)
                    matched_before.add(instruction.line)
                previous_line = instruction.line
            terminator = block.terminator
            if (
                terminator is not None
                and terminator.line in before_lines
                and previous_line != terminator.line
            ):
                insert_at.append(len(instructions))
                matched_before.add(terminator.line)
            for index in reversed(insert_at):
                instructions.insert(index, Fence(line=0))
                touched.add(name)
        if name in fence_first:
            instructions.insert(0, Fence(line=0))
            touched.add(name)
        new_blocks[name] = BasicBlock(
            name=name, instructions=instructions, terminator=block.terminator
        )
    if matched_before != before_lines:
        return None

    new_cfg = CFG(
        name=cfg.name, entry=cfg.entry, blocks=new_blocks, params=list(cfg.params)
    )
    # Delta-derive the edited graph's content caches from the predecessor's
    # (computed once and attached, so a synthesis loop scoring many
    # candidates against one program fingerprints the whole graph once):
    # only the blocks that actually received fences are re-hashed.
    base_fps = cfg.block_fingerprints()
    base_sigs = cfg.block_line_signatures()
    cfg.attach_content_caches(base_fps, base_sigs)
    new_fps = dict(base_fps)
    new_sigs = dict(base_sigs)
    for name in touched:
        new_fps[name] = block_fingerprint(new_blocks[name])
        new_sigs[name] = block_line_signature(new_blocks[name])
    new_cfg.attach_content_caches(new_fps, new_sigs)
    return dataclass_replace(
        program,
        source=source,
        cfg=new_cfg,
        cfgs={**program.cfgs, cfg.name: new_cfg},
    )


def _prepend_fence(block: ast.Block) -> ast.Block:
    return replace(block, statements=[_fence(), *block.statements])


def _rewrite_block(
    block: ast.Block,
    taken_lines: set[int],
    fall_lines: set[int],
    before_pending: set[int],
) -> ast.Block:
    statements: list[ast.Stmt] = []
    for stmt in block.statements:
        if stmt.line in before_pending and not isinstance(stmt, ast.Fence):
            before_pending.discard(stmt.line)
            statements.append(_fence())
        fence_after = False
        if isinstance(stmt, ast.Block):
            stmt = _rewrite_block(stmt, taken_lines, fall_lines, before_pending)
        elif isinstance(stmt, ast.If):
            then_body = _rewrite_block(
                stmt.then_body, taken_lines, fall_lines, before_pending
            )
            else_body = (
                None
                if stmt.else_body is None
                else _rewrite_block(
                    stmt.else_body, taken_lines, fall_lines, before_pending
                )
            )
            if stmt.line in taken_lines:
                then_body = _prepend_fence(then_body)
            if stmt.line in fall_lines:
                if else_body is not None:
                    else_body = _prepend_fence(else_body)
                else:
                    # The branch's false target is the code after the if.
                    fence_after = True
            stmt = replace(stmt, then_body=then_body, else_body=else_body)
        elif isinstance(stmt, (ast.While, ast.For)):
            body = _rewrite_block(
                stmt.body, taken_lines, fall_lines, before_pending
            )
            if _is_branching(stmt):
                if stmt.line in taken_lines:
                    body = _prepend_fence(body)
                if stmt.line in fall_lines:
                    # The false target of the loop branch is the loop exit.
                    fence_after = True
            stmt = replace(stmt, body=body)
        statements.append(stmt)
        if fence_after:
            statements.append(_fence())
    return replace(block, statements=statements)
