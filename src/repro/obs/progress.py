"""Streaming progress: live, observational events from running analyses.

Spans (:mod:`repro.obs.tracing`) answer *what happened* after the fact;
progress events answer *what is happening now*.  A long-running solve —
a sparse fixpoint over thousands of scenarios, a sharded round schedule,
a mitigation search scoring candidates — publishes small JSON-friendly
events through the thread-local :class:`ProgressReporter`, and the
service layer streams them to clients over the daemon's ``watch`` RPC.

Like every facility in :mod:`repro.obs`, progress is **observational by
contract**: reporters are written to, never read from, by instrumented
code, so publishing can never perturb result keys, fixpoint schedules,
or Table-7 verdicts (pinned by the telemetry-on/off differential tests
in ``tests/test_obs.py``).  When no reporter is installed the publish
path is a single thread-local read — cheap enough to leave calls inline,
though hot loops still throttle (the sparse kernel publishes pop counts
every :data:`POP_PUBLISH_INTERVAL` pops, not per pop).

Three reporter shapes cover the plumbing:

* :class:`EventLog` — a bounded, sequence-numbered, watchable log with
  blocking reads.  The scheduler gives every job one; the ``watch`` RPC
  tails it.
* :class:`CollectingReporter` — accumulates events in memory; worker
  processes install one per round and relay the batch back through
  their existing reply channel (mirroring span collect mode).
* A multiplexer is trivial to build from :class:`ProgressReporter`
  (see ``_BatchProgress`` in :mod:`repro.service.scheduler`).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Mapping
from contextlib import contextmanager

#: Sparse-kernel pop throttle: publish a ``fixpoint.pops`` event at most
#: once per this many worklist pops.  Chosen so even the largest Table-2
#: runs emit a handful of events, and small runs emit none from the pop
#: path (they still get round/phase events).
POP_PUBLISH_INTERVAL = 4096

#: Per-job event-log bound.  Old events are dropped (watchers see a seq
#: gap); sized for hours of throttled progress, not unbounded firehoses.
DEFAULT_LOG_CAPACITY = 2048

#: Keys stamped by :meth:`EventLog.append`; publisher-supplied fields
#: with these names are overwritten, never trusted.
RESERVED_KEYS = ("event", "seq", "t", "ts")


class ProgressReporter:
    """Interface: something that accepts progress events.

    ``phase`` is a dotted path naming what is running (``fixpoint``,
    ``fixpoint.round``, ``mitigate.candidate``); ``fields`` must be
    JSON-serialisable scalars or small lists.
    """

    #: True for every real reporter; the null reporter flips it so hot
    #: loops can skip field construction entirely when nobody listens.
    active = True

    def publish(self, phase: str, **fields) -> None:
        raise NotImplementedError


class _NullReporter(ProgressReporter):
    """The fast path when no reporter is installed."""

    active = False

    def publish(self, phase: str, **fields) -> None:
        pass


NULL_REPORTER = _NullReporter()


class CollectingReporter(ProgressReporter):
    """Accumulates events for relay through a reply channel.

    Worker processes install one around each sharded round and ship
    :attr:`events` back with the round's replies; the master republishes
    them into its own current reporter via :func:`republish`.  Events
    carry the worker's pid so relayed progress is attributable.
    """

    def __init__(self):
        self.events: list[dict] = []
        self._pid = os.getpid()

    def publish(self, phase: str, **fields) -> None:
        event = dict(fields)
        event["phase"] = phase
        event.setdefault("pid", self._pid)
        self.events.append(event)

    def drain(self) -> list[dict]:
        events, self.events = self.events, []
        return events


class CallbackReporter(ProgressReporter):
    """Adapts a ``callback(phase, fields)`` into a reporter."""

    def __init__(self, callback: Callable[[str, dict], None]):
        self._callback = callback

    def publish(self, phase: str, **fields) -> None:
        self._callback(phase, fields)


class EventLog:
    """A bounded, watchable, sequence-numbered event log.

    Every append stamps a monotonically increasing ``seq``, a monotonic
    timestamp ``t`` (for durations) and a wall-clock ``ts`` (for
    humans), then wakes blocked readers.  :meth:`wait_since` is the
    primitive the daemon's ``watch`` RPC is built on: block until events
    newer than a cursor exist, or time out (the heartbeat path).
    """

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY):
        self._events: deque[dict] = deque(maxlen=capacity)
        self._last_seq = 0
        self._cond = threading.Condition()

    def append(self, event: str, **fields) -> dict:
        entry = dict(fields)
        with self._cond:
            self._last_seq += 1
            entry["event"] = event
            entry["seq"] = self._last_seq
            entry["t"] = time.monotonic()
            entry["ts"] = time.time()
            self._events.append(entry)
            self._cond.notify_all()
        return entry

    @property
    def last_seq(self) -> int:
        with self._cond:
            return self._last_seq

    def snapshot(self) -> list[dict]:
        with self._cond:
            return [dict(entry) for entry in self._events]

    def since(self, seq: int) -> list[dict]:
        """Events with ``seq`` strictly greater than the cursor."""
        with self._cond:
            return [dict(entry) for entry in self._events if entry["seq"] > seq]

    def wait_since(self, seq: int, timeout: float) -> list[dict]:
        """Block until events newer than ``seq`` exist or ``timeout``
        elapses; returns the fresh events (empty list on timeout)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._last_seq <= seq:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    break
            return [dict(entry) for entry in self._events if entry["seq"] > seq]


class LogReporter(ProgressReporter):
    """Publishes progress events into an :class:`EventLog` as
    ``event="progress"`` entries (alongside lifecycle events)."""

    def __init__(self, log: EventLog):
        self.log = log

    def publish(self, phase: str, **fields) -> None:
        self.log.append("progress", phase=phase, **fields)


# ----------------------------------------------------------------------
# Thread-local installation
# ----------------------------------------------------------------------
_state = threading.local()


def current_reporter() -> ProgressReporter:
    """The reporter installed on this thread (the null reporter if none)."""
    return getattr(_state, "reporter", NULL_REPORTER)


@contextmanager
def reporting(reporter: ProgressReporter | None) -> Iterator[ProgressReporter]:
    """Install ``reporter`` as this thread's progress sink.

    ``None`` leaves the current reporter in place (so call sites can
    unconditionally wrap).  Restores the previous reporter on exit —
    scopes nest.
    """
    if reporter is None:
        yield current_reporter()
        return
    previous = getattr(_state, "reporter", None)
    _state.reporter = reporter
    try:
        yield reporter
    finally:
        if previous is None:
            del _state.reporter
        else:
            _state.reporter = previous


def publish_progress(phase: str, **fields) -> None:
    """Publish an event to this thread's reporter (no-op when none)."""
    reporter = getattr(_state, "reporter", None)
    if reporter is not None:
        reporter.publish(phase, **fields)


def republish(events: Iterable[Mapping]) -> None:
    """Re-emit relayed events (e.g. from a worker process) into this
    thread's reporter.  Timestamps are re-stamped by the receiving sink;
    the worker's identity survives in the ``pid`` field."""
    reporter = getattr(_state, "reporter", None)
    if reporter is None:
        return
    for event in events:
        fields = dict(event)
        phase = fields.pop("phase", "worker")
        reporter.publish(phase, **fields)
