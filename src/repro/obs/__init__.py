"""Unified telemetry: metrics, tracing spans, and run provenance.

This package is the system's self-knowledge layer.  It is deliberately
**dependency-free within the code base** — it imports nothing from the
rest of :mod:`repro`, so every other layer (the worklist kernel, the
engine, the process pools, the service) can instrument itself without
import cycles.

Four facilities live here:

* :mod:`repro.obs.metrics` — a process-wide **metrics registry** of
  counters, gauges and fixed-bucket histograms.  The ad-hoc stats
  dataclasses (``EngineStats``, ``SchedulerStats``, store and pool
  counters) stay as the per-instance sources of truth; the registry is
  where cross-cutting counters that have no natural owner (fixpoint
  pops, dirty-slot re-transfers, codec bytes, pool dispatches) land,
  and :func:`repro.obs.metrics.MetricsRegistry.snapshot` is the one
  JSON-friendly view of all of them.
* :mod:`repro.obs.tracing` — **structured tracing**: nestable spans with
  monotonic timings and attributes, a thread-safe JSON-lines exporter
  (activated by ``REPRO_TRACE=<path>`` or ``--trace``), an in-memory
  ring buffer the daemon serves over the ``trace`` RPC, and a *collect*
  mode worker processes use to relay their spans back through their
  existing reply channels instead of racing on the output file.
* :mod:`repro.obs.progress` — **streaming progress**: live events from
  running analyses (fixpoint rounds, pops, shard completions, mitigation
  candidates) published through a thread-local reporter, collected into
  per-job watchable event logs by the scheduler and streamed to clients
  over the daemon's ``watch`` RPC.
* :mod:`repro.obs.provenance` — **provenance stamps**: a replayable
  record (source hash, full request configuration, engine version,
  backend used) attached to every analysis result and stored artifact.

Telemetry is observational by contract: spans and metrics never
participate in result keys, result equality, or the deterministic
schedule, and the whole layer is a no-op fast path when disabled —
pinned by differential tests in ``tests/test_obs.py``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    metrics,
    render_prometheus,
)
from repro.obs.progress import (
    CallbackReporter,
    CollectingReporter,
    EventLog,
    LogReporter,
    ProgressReporter,
    current_reporter,
    publish_progress,
    reporting,
    republish,
)
from repro.obs.provenance import ProvenanceStamp, stamp_for_request
from repro.obs.tracing import (
    Span,
    SpanBuffer,
    Tracer,
    current_span,
    span,
    tracer,
)

__all__ = [
    "CallbackReporter",
    "CollectingReporter",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LogReporter",
    "MetricsRegistry",
    "ProgressReporter",
    "ProvenanceStamp",
    "Span",
    "SpanBuffer",
    "Tracer",
    "current_reporter",
    "current_span",
    "histogram_quantile",
    "metrics",
    "publish_progress",
    "render_prometheus",
    "reporting",
    "republish",
    "span",
    "stamp_for_request",
    "tracer",
]
