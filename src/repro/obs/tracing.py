"""Structured tracing: nestable spans with a JSON-lines exporter.

A :class:`Span` records one timed phase of a computation — ``frontend``,
``vcfg``, ``fixpoint``, ``fixpoint.round``, ``scheduler.dispatch`` — with
monotonic timing and free-form attributes.  Spans nest through a
thread-local context stack, so the engine, the analyses and the service
compose into one tree without passing handles around.

The :class:`Tracer` is the process-wide factory and export pipeline:

* **disabled fast path** — with no sinks attached, :meth:`Tracer.span`
  returns a :class:`_DisabledSpan` that only measures its own duration
  (two ``perf_counter`` calls, no locks, no context stack, no attribute
  storage).  Instrumented code can therefore keep deriving its public
  timing fields (``analysis_time``, ``synthesis_time``) from the span it
  opened, at effectively zero cost when tracing is off;
* **JSONL export** — ``REPRO_TRACE=<path>`` (re-checked on every span
  creation, so tests and embedders can flip it at runtime) or an
  explicit :meth:`Tracer.add_jsonl` attaches a :class:`JsonlSink`:
  one JSON object per completed span, written under a lock as a single
  ``write`` call so concurrent threads never interleave partial lines;
* **ring buffer** — the daemon attaches a :class:`SpanBuffer` and serves
  recent span trees over its ``trace`` RPC;
* **collect mode** — worker processes must not race the master for the
  output file, so their entry points run under :meth:`Tracer.collecting`,
  which captures finished spans as dicts; the worker ships them back on
  its existing reply channel and the master grafts them into its own
  tree with :meth:`Tracer.emit_foreign`.

Tracing is observational by contract: spans never feed back into the
analyses, so identical requests produce bit-identical results with
tracing on or off (pinned by ``tests/test_obs.py``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Iterable, Mapping

#: Ring-buffer capacity of the daemon's in-memory span store.
DEFAULT_BUFFER_SPANS = 8192


class _DisabledSpan:
    """The no-sink fast path: measures duration, stores nothing else."""

    __slots__ = ("_started", "duration")

    def __init__(self):
        self._started = 0.0
        self.duration = 0.0

    def __enter__(self) -> "_DisabledSpan":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._started
        return False

    def set(self, **attrs) -> "_DisabledSpan":
        return self


class Span:
    """One timed, attributed phase; export happens on ``__exit__``."""

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "attrs",
        "started_at",
        "duration",
        "_started",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.trace_id: str = self.span_id
        self.parent_id: str | None = None
        self.started_at = 0.0
        self.duration = 0.0
        self._started = 0.0
        self._tracer = tracer

    def set(self, **attrs) -> "Span":
        """Attach attributes (JSON-friendly values) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.started_at = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._started
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        self._tracer._export(self.to_dict())
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "ts": self.started_at,
            "duration": self.duration,
            "pid": os.getpid(),
            "attrs": self.attrs,
        }


class JsonlSink:
    """Append-only JSON-lines exporter (one object per span).

    The file is opened lazily on first export (so merely configuring a
    path costs nothing) and every span is written as one ``write`` call
    under a lock — concurrent threads cannot interleave partial lines.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._handle = None

    def export(self, span: Mapping[str, Any]) -> None:
        line = json.dumps(span, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                finally:
                    self._handle = None


class SpanBuffer:
    """A bounded in-memory sink; the daemon's ``trace`` RPC reads it."""

    def __init__(self, maxlen: int = DEFAULT_BUFFER_SPANS):
        self._spans: deque[dict] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def export(self, span: Mapping[str, Any]) -> None:
        with self._lock:
            self._spans.append(dict(span))

    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> list[dict]:
        """Every buffered span of one trace, in completion order."""
        with self._lock:
            return [span for span in self._spans if span.get("trace_id") == trace_id]

    def trace_for_job(self, job_id: str) -> list[dict]:
        """The span tree of the dispatch that executed ``job_id``.

        Matches spans carrying the job id directly (``job_id`` attribute)
        or as a member of a batch dispatch (``job_ids`` attribute), then
        returns the whole trace those spans belong to.
        """
        with self._lock:
            trace_ids = {
                span["trace_id"]
                for span in self._spans
                if span.get("attrs", {}).get("job_id") == job_id
                or job_id in span.get("attrs", {}).get("job_ids", ())
            }
            return [
                span for span in self._spans if span.get("trace_id") in trace_ids
            ]


class _CollectSink:
    """Sink used by :meth:`Tracer.collecting`: buffers span dicts so a
    worker process can relay them instead of writing files."""

    def __init__(self):
        self.spans: list[dict] = []

    def export(self, span: Mapping[str, Any]) -> None:
        self.spans.append(dict(span))


class Tracer:
    """Process-wide span factory, context stack, and export pipeline."""

    def __init__(self):
        self._sinks: list = []
        self._sinks_lock = threading.Lock()
        self._local = threading.local()
        self._seq = itertools.count(1)
        self._env_path: str | None = None
        self._env_sink: JsonlSink | None = None
        self._collect: _CollectSink | None = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_sink(self, sink) -> None:
        with self._sinks_lock:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        with self._sinks_lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def add_jsonl(self, path: str | os.PathLike) -> JsonlSink:
        sink = JsonlSink(path)
        self.add_sink(sink)
        return sink

    def _sync_env(self) -> None:
        """Mirror the ``REPRO_TRACE`` environment variable into a JSONL
        sink (attached when set, detached when cleared or re-pointed)."""
        path = os.environ.get("REPRO_TRACE") or None
        if path == self._env_path:
            return
        with self._sinks_lock:
            if self._env_sink is not None:
                try:
                    self._sinks.remove(self._env_sink)
                except ValueError:
                    pass
                self._env_sink.close()
                self._env_sink = None
            self._env_path = path
            if path is not None:
                self._env_sink = JsonlSink(path)
                self._sinks.append(self._env_sink)

    @property
    def enabled(self) -> bool:
        """True when at least one sink (or a collector) will see spans.
        Call sites with per-iteration attribute construction guard on
        this; plain ``span(...)`` calls need not."""
        self._sync_env()
        return bool(self._sinks) or self._collect is not None

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> "Span | _DisabledSpan":
        """Open a span (use as a context manager).  Returns the
        duration-only :class:`_DisabledSpan` when tracing is disabled."""
        if not self.enabled:
            return _DisabledSpan()
        return Span(self, name, attrs)

    def child_span(self, name: str, parent, **attrs) -> "Span | _DisabledSpan":
        """Open a span as an explicit child of ``parent`` — for work
        dispatched to pool threads, whose own context stacks are empty.
        On the dispatching thread this is equivalent to :meth:`span`
        (the context stack takes precedence when non-empty)."""
        opened = self.span(name, **attrs)
        if isinstance(opened, Span) and isinstance(parent, Span):
            opened.parent_id = parent.span_id
            opened.trace_id = parent.trace_id
        return opened

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._seq):x}"

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            span.parent_id = stack[-1].span_id
            span.trace_id = stack[-1].trace_id
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # defensive: unwound out of order
            stack.remove(span)

    def _export(self, span_dict: dict) -> None:
        collect = self._collect
        if collect is not None:
            collect.export(span_dict)
            return
        with self._sinks_lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink.export(span_dict)
            except OSError:
                pass  # a full disk must never fail an analysis

    # ------------------------------------------------------------------
    # Worker relay
    # ------------------------------------------------------------------
    class _Collecting:
        def __init__(self, tracer: "Tracer"):
            self._tracer = tracer
            self._previous: _CollectSink | None = None
            self.sink = _CollectSink()

        @property
        def spans(self) -> list[dict]:
            return self.sink.spans

        def __enter__(self):
            self._previous = self._tracer._collect
            self._tracer._collect = self.sink
            return self

        def __exit__(self, *exc_info) -> bool:
            self._tracer._collect = self._previous
            return False

    def collecting(self) -> "Tracer._Collecting":
        """Capture spans as dicts instead of exporting them — the worker
        half of cross-process relay.  While active, file/buffer sinks are
        bypassed entirely, so forked workers never touch the master's
        trace file.  Collection is also *active* in the :attr:`enabled`
        sense: spans opened inside are real spans."""
        return Tracer._Collecting(self)

    def emit_foreign(self, span_dicts: Iterable[Mapping[str, Any]]) -> None:
        """Graft spans relayed from a worker into the current context:
        roots of the relayed batch become children of the current span,
        and every relayed span joins the current trace."""
        span_dicts = [dict(span) for span in span_dicts]
        if not span_dicts:
            return
        parent = self.current()
        local_ids = {span.get("span_id") for span in span_dicts}
        for span in span_dicts:
            if parent is not None:
                span["trace_id"] = parent.trace_id
                if span.get("parent_id") not in local_ids:
                    span["parent_id"] = parent.span_id
            self._export(span)


_tracer = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def span(name: str, **attrs):
    """Open a span on the process-wide tracer."""
    return _tracer.span(name, **attrs)


def current_span() -> Span | None:
    """The innermost active span of this thread (None when untraced)."""
    return _tracer.current()
