"""Provenance stamps: the replayable record of how a verdict was made.

A :class:`ProvenanceStamp` is attached to every engine-executed
:class:`~repro.analysis.result.CacheAnalysisResult` (and therefore to
every artifact the persistent store writes): the source content hash,
the *resolved* cache geometry and speculation configuration, the engine
version, the backend that executed the run, and the full request in
wire shape.  That is sufficient to replay the verdict bit-for-bit —
:meth:`ProvenanceStamp.replay_request` rebuilds the exact
``AnalysisRequest``, and re-running it must produce a result with the
same semantic fingerprint (pinned by ``tests/test_obs.py``).

The stamp is observational: it lives in a ``compare=False`` field, is
excluded from result fingerprints, and never participates in cache
keys.  Stamping itself imports nothing from the rest of the package
(the request is read duck-typed); only the cold replay path defers to
:mod:`repro.service.wire` for request reconstruction.
"""

from __future__ import annotations

import enum
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Mapping


def _jsonable(value: Any) -> Any:
    """Render a config dataclass field as a JSON-friendly value."""
    if isinstance(value, enum.Enum):
        return value.value
    return value


def _config_dict(config: Any) -> dict | None:
    """A config dataclass as a plain dict (None stays None)."""
    if config is None:
        return None
    fields = getattr(config, "__dataclass_fields__", None)
    if fields is None:  # pragma: no cover - configs are dataclasses
        return dict(vars(config))
    return {name: _jsonable(getattr(config, name)) for name in fields}


def _request_wire(request: Any) -> dict:
    """The request in the service wire shape.

    This mirrors :func:`repro.service.wire.request_to_wire` field for
    field (so :func:`repro.service.wire.request_from_wire` can rebuild
    the request) without importing the service layer from the stamping
    hot path; the round-trip is pinned by ``tests/test_obs.py``.
    """
    return {
        "source": request.source,
        "kind": request.kind.value,
        "entry": request.entry,
        "line_size": request.line_size,
        "cache_config": _config_dict(request.cache_config),
        "speculation": _config_dict(request.speculation),
        "use_shadow_state": request.use_shadow_state,
        "unroll": request.unroll,
        "inline": request.inline,
        "max_unroll_iterations": request.max_unroll_iterations,
        "scenario_shards": request.scenario_shards,
        "shard_backend": request.shard_backend,
        "label": request.label,
    }


@dataclass(frozen=True)
class ProvenanceStamp:
    """Everything needed to reproduce one verdict bit-for-bit."""

    engine_version: str
    source_sha256: str
    compile_key: str
    result_key: str
    kind: str
    #: Shard backend that actually executed the run (``"serial"`` /
    #: ``"threads"`` / ``"processes"``), or None for unsharded runs.
    backend: str | None
    scenario_shards: int
    #: The *resolved* configurations (defaults applied), so the stamp is
    #: meaningful even when the request left them as None.
    cache_config: dict = field(repr=False)
    speculation: dict | None = field(repr=False)
    #: The full request in wire shape — the replay payload.
    request: dict = field(repr=False)
    created_at: float = 0.0

    def to_wire(self) -> dict:
        """JSON-friendly dict form (the stored/wire representation)."""
        return {
            "engine_version": self.engine_version,
            "source_sha256": self.source_sha256,
            "compile_key": self.compile_key,
            "result_key": self.result_key,
            "kind": self.kind,
            "backend": self.backend,
            "scenario_shards": self.scenario_shards,
            "cache_config": self.cache_config,
            "speculation": self.speculation,
            "request": self.request,
            "created_at": self.created_at,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "ProvenanceStamp":
        return cls(
            engine_version=str(data["engine_version"]),
            source_sha256=str(data["source_sha256"]),
            compile_key=str(data["compile_key"]),
            result_key=str(data["result_key"]),
            kind=str(data["kind"]),
            backend=data.get("backend"),
            scenario_shards=int(data.get("scenario_shards", 1)),
            cache_config=dict(data["cache_config"]),
            speculation=(
                None if data.get("speculation") is None else dict(data["speculation"])
            ),
            request=dict(data["request"]),
            created_at=float(data.get("created_at", 0.0)),
        )

    def replay_request(self):
        """Rebuild the exact :class:`AnalysisRequest` this stamp records.

        Resolving the rebuilt request through any engine must reproduce
        the same compile/result keys and the same semantic fingerprint.
        (Cold tooling path; defers to the service wire codec.)
        """
        from repro.service.wire import request_from_wire

        return request_from_wire(self.request)


def stamp_for_request(request: Any, backend: str | None = None) -> ProvenanceStamp:
    """Stamp one request at execution time.

    ``backend`` is the shard backend the run actually used (None for
    unsharded runs).  The request is read duck-typed so this stays
    importable from the engine layer without cycles.
    """
    from repro import __version__  # deferred: repro.__init__ imports widely

    return ProvenanceStamp(
        engine_version=__version__,
        source_sha256=hashlib.sha256(request.source.encode("utf-8")).hexdigest(),
        compile_key=request.compile_key(),
        result_key=request.result_key(),
        kind=request.kind.value,
        backend=backend,
        scenario_shards=request.scenario_shards,
        cache_config=_config_dict(request.resolved_cache_config) or {},
        speculation=(
            _config_dict(request.resolved_speculation)
            if request.kind.value == "speculative"
            else None
        ),
        request=_request_wire(request),
        created_at=time.time(),
    )
