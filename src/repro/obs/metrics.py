"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` (reachable via
:func:`metrics`) unifies the counters that previously lived only in
scattered per-instance dataclasses or nowhere at all.  Instruments are
created on first use and are thread-safe; names are dotted paths
(``fixpoint.pops``, ``pool.dispatches``, ``codec.bytes_shipped``), and
:meth:`MetricsRegistry.snapshot` renders everything as one JSON-friendly
dict for the daemon's ``stats`` RPC and ``repro stats --json``.

Instruments never feed back into analysis decisions — they are written,
never read, by the instrumented code — so their presence cannot perturb
result keys or the deterministic schedule.  The hot-path discipline is
to accumulate into local variables inside a fixpoint and publish once
per solve (see :mod:`repro.analysis.multicolor`), keeping the per-pop
cost at zero even when telemetry is active.
"""

from __future__ import annotations

import bisect
import threading
from typing import Mapping, Sequence

#: Default histogram bucket edges, in seconds: spans analysis phases from
#: sub-millisecond transfers to multi-minute service jobs.
DEFAULT_TIME_EDGES = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A settable point-in-time value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket-edge histogram with count/sum/min/max accounting.

    ``edges`` are the *upper* bounds of the finite buckets; observations
    above the last edge land in the implicit overflow bucket.  Edges are
    fixed at creation so concurrent observers never disagree about the
    bucket layout, and snapshots are mergeable across processes.
    """

    __slots__ = ("name", "edges", "_buckets", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_TIME_EDGES):
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be strictly increasing: {edges!r}")
        self.name = name
        self.edges = tuple(float(edge) for edge in edges)
        self._buckets = [0] * (len(self.edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate (see
        :func:`histogram_quantile`); ``None`` when empty."""
        return histogram_quantile(self.to_dict(), q)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "type": "histogram",
                "edges": list(self.edges),
                "buckets": list(self._buckets),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """A named collection of instruments, created on first use.

    Re-requesting a name returns the same instrument; requesting an
    existing name as a different instrument type raises, so two call
    sites can never silently split one logical metric.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_TIME_EDGES
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, edges))

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one JSON-friendly ``{name: payload}`` dict,
        sorted by name for stable output."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: instrument.to_dict() for name, instrument in sorted(instruments)}

    def absorb(self, snapshot: Mapping[str, Mapping]) -> None:
        """Merge a foreign :meth:`snapshot` (e.g. relayed from a worker
        process) into this registry: counters add, gauges overwrite,
        histograms merge bucket-wise (edges must match)."""
        for name, payload in snapshot.items():
            kind = payload.get("type")
            if kind == "counter":
                self.counter(name).inc(int(payload["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(payload["value"]))
            elif kind == "histogram":
                histogram = self.histogram(name, tuple(payload["edges"]))
                if list(histogram.edges) != [float(e) for e in payload["edges"]]:
                    continue  # incompatible layout; drop rather than corrupt
                with histogram._lock:
                    for index, count in enumerate(payload["buckets"]):
                        histogram._buckets[index] += int(count)
                    histogram._count += int(payload["count"])
                    histogram._sum += float(payload["sum"])
                    for value in (payload.get("min"), payload.get("max")):
                        if value is None:
                            continue
                        value = float(value)
                        if histogram._min is None or value < histogram._min:
                            histogram._min = value
                        if histogram._max is None or value > histogram._max:
                            histogram._max = value

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()


def histogram_quantile(payload: Mapping, q: float) -> float | None:
    """Bucket-interpolated quantile from a histogram snapshot payload.

    Works on the JSON dict produced by :meth:`Histogram.to_dict` (and
    therefore on anything the ``stats``/``metrics`` RPCs return), so the
    CLI can compute p50/p99 from a remote daemon without reconstructing
    instruments.  Linear interpolation within the bucket holding the
    requested rank, tightened by the recorded ``min``/``max`` for the
    first and overflow buckets; ``None`` when the histogram is empty.
    """
    count = int(payload.get("count") or 0)
    if count <= 0:
        return None
    q = min(max(float(q), 0.0), 1.0)
    edges = [float(edge) for edge in payload["edges"]]
    buckets = [int(value) for value in payload["buckets"]]
    minimum = payload.get("min")
    maximum = payload.get("max")
    rank = q * count
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            if index == 0:
                lower = minimum if minimum is not None else 0.0
                upper = edges[0]
            elif index == len(edges):
                lower = edges[-1]
                upper = maximum if maximum is not None else edges[-1]
            else:
                lower = edges[index - 1]
                upper = edges[index]
            lower = min(float(lower), float(upper))
            if maximum is not None:
                upper = min(float(upper), float(maximum))
            if minimum is not None:
                lower = max(lower, float(minimum))
            if upper <= lower or bucket_count == 0:
                return float(upper)
            fraction = (rank - cumulative) / bucket_count
            return lower + (upper - lower) * fraction
        cumulative += bucket_count
    return float(maximum) if maximum is not None else edges[-1]


def _prometheus_name(name: str) -> str:
    """Dotted metric path -> legal Prometheus metric name."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _prometheus_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: Mapping[str, Mapping]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text
    exposition format (version 0.0.4).

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le=...}`` series ending in ``+Inf`` plus
    ``_sum`` and ``_count``.  Output is sorted by metric name so two
    scrapes of the same snapshot are byte-identical.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload.get("type")
        base = _prometheus_name(name)
        if kind == "counter":
            lines.append(f"# HELP {base}_total {name}")
            lines.append(f"# TYPE {base}_total counter")
            lines.append(f"{base}_total {_prometheus_value(payload['value'])}")
        elif kind == "gauge":
            lines.append(f"# HELP {base} {name}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_prometheus_value(payload['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {base} {name}")
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for edge, bucket in zip(payload["edges"], payload["buckets"]):
                cumulative += int(bucket)
                lines.append(
                    f'{base}_bucket{{le="{_prometheus_value(edge)}"}} {cumulative}'
                )
            count = int(payload["count"])
            lines.append(f'{base}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{base}_sum {_prometheus_value(payload['sum'])}")
            lines.append(f"{base}_count {count}")
    return "\n".join(lines) + "\n" if lines else ""


_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide registry."""
    return _registry
