"""High-level driver: MiniC source text to an analysable program.

This is the entry point most users and all examples use: it runs the
lexer, parser, type checker, loop unrolling, lowering, inlining and
memory-layout construction, and returns everything the analyses need in a
single :class:`CompiledProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.ir.cfg import CFG
from repro.ir.inline import inline_calls
from repro.ir.lowering import lower_program
from repro.ir.memory import MemoryLayout
from repro.ir.unroll import UnrollStats, unroll_fixed_loops
from repro.ir.verify import assert_valid_ir, debug_verify_enabled
from repro.lang.parser import parse_program
from repro.lang.typecheck import ProgramInfo, check_program
from repro.obs import span


@dataclass
class CompiledProgram:
    """Everything produced by the front end for one MiniC program.

    The front-end options (``unroll``, ``inline``,
    ``max_unroll_iterations``) are recorded so that a compile of this
    program can be reproduced exactly — the engine's request layer keys
    its caches on them.
    """

    source: str
    info: ProgramInfo
    cfgs: dict[str, CFG]
    cfg: CFG
    layout: MemoryLayout
    unroll_stats: UnrollStats
    unroll: bool = True
    inline: bool = True
    max_unroll_iterations: int = 4096

    @property
    def entry_function(self) -> str:
        return self.cfg.name

    def content_fingerprint(self) -> str:
        """Content hash of the analysed entry CFG (see ``CFG.content_fingerprint``)."""
        return self.cfg.content_fingerprint()

    def layout_fingerprint(self) -> str:
        """Content hash of the memory layout the analysis states embed.

        Abstract states reference ``MemoryBlock(symbol, index)`` values and
        set placement hashes symbol names, so retained states are only
        reusable against a program whose layout matches exactly.
        """
        import hashlib

        payload = (
            self.layout.line_size,
            tuple(
                (name, obj.num_blocks)
                for name, obj in sorted(self.layout.objects.items())
            ),
        )
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def compile_source(
    source: str,
    entry: str | None = None,
    line_size: int = 64,
    unroll: bool = True,
    inline: bool = True,
    max_unroll_iterations: int = 4096,
) -> CompiledProgram:
    """Compile MiniC ``source`` down to a single analysable CFG.

    Parameters
    ----------
    source:
        MiniC source text.
    entry:
        Name of the analysis entry function.  Defaults to ``main`` when
        present, otherwise to the single function in the program.
    line_size:
        Cache line size in bytes, used to carve objects into memory blocks.
    unroll:
        Fully unroll fixed-trip-count loops (paper Section 6.3).
    inline:
        Inline calls to user-defined functions into the entry function.
    """
    with span("frontend", bytes=len(source)) as frontend_span:
        with span("parse"):
            program = parse_program(source)
        with span("unroll") as unroll_span:
            if unroll:
                program, unroll_stats = unroll_fixed_loops(
                    program, max_iterations=max_unroll_iterations
                )
            else:
                unroll_stats = UnrollStats()
            unroll_span.set(loops=unroll_stats.loops_unrolled)
        with span("lower"):
            info = check_program(program)
            cfgs = lower_program(info)
        if not cfgs:
            raise ReproError("program defines no functions")
        entry_name = _pick_entry(entry, cfgs)
        with span("inline"):
            if inline:
                entry_cfg = inline_calls(cfgs, entry_name, info)
            else:
                entry_cfg = cfgs[entry_name]
        layout = MemoryLayout.from_program(info, line_size=line_size)
        frontend_span.set(entry=entry_name, blocks=len(entry_cfg.blocks))
    compiled = CompiledProgram(
        source=source,
        info=info,
        cfgs=cfgs,
        cfg=entry_cfg,
        layout=layout,
        unroll_stats=unroll_stats,
        unroll=unroll,
        inline=inline,
        max_unroll_iterations=max_unroll_iterations,
    )
    if debug_verify_enabled():
        # Debug-mode gate (REPRO_DEBUG_VERIFY): every compiled program is
        # linted before any analysis can consume it, so pipeline bugs fail
        # here with structured findings instead of corrupting a fixpoint.
        with span("verify"):
            assert_valid_ir(compiled)
    return compiled


def _pick_entry(entry: str | None, cfgs: dict[str, CFG]) -> str:
    if entry is not None:
        if entry not in cfgs:
            raise ReproError(f"entry function {entry!r} not found")
        return entry
    if "main" in cfgs:
        return "main"
    if len(cfgs) == 1:
        return next(iter(cfgs))
    raise ReproError(
        "program has multiple functions and no 'main'; pass entry= explicitly"
    )
