"""The unified analysis engine.

This package is the scaling seam of the reproduction: every analysis in
the code base — the generic forward solver, the lifted multi-color
engine, the WCET and side-channel applications, and the table
generators — schedules and executes through it.

* :mod:`repro.engine.worklist` — the shared priority-worklist fixpoint
  kernel (heap-ordered reverse-postorder scheduling, widening policy,
  divergence guard);
* :mod:`repro.engine.request` — declarative, hashable, picklable
  analysis requests;
* :mod:`repro.engine.cache` — LRU caches with hit/miss accounting;
* :mod:`repro.engine.engine` — the :class:`AnalysisEngine` service layer
  resolving requests through a content-hash compile cache and a result
  cache;
* :mod:`repro.engine.batch` — parallel batch execution with
  deterministic result ordering.
"""

from repro.engine.worklist import (
    DEFAULT_WIDENING_DELAY,
    PriorityWorklist,
    WideningPolicy,
    run_fixpoint,
)
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.request import AnalysisKind, AnalysisRequest, program_request
from repro.engine.engine import (
    AnalysisEngine,
    EngineStats,
    compile_request,
    default_engine,
    execute_request,
)
from repro.engine.batch import default_max_workers, run_batch

__all__ = [
    "AnalysisEngine",
    "AnalysisKind",
    "AnalysisRequest",
    "CacheStats",
    "DEFAULT_WIDENING_DELAY",
    "EngineStats",
    "LRUCache",
    "PriorityWorklist",
    "WideningPolicy",
    "compile_request",
    "default_engine",
    "default_max_workers",
    "execute_request",
    "program_request",
    "run_batch",
]
