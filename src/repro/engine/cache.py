"""LRU caches backing the AnalysisEngine service layer.

Two instances sit in front of every analysis request: a *compile cache*
keyed by a content hash of the MiniC source plus the front-end options,
and a *result cache* keyed by the full analysis request.  Under the
repeated-request traffic shape the engine is built for, a hit in the
result cache skips the front end and the fixpoint entirely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses, evictions=self.evictions)

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate, {self.evictions} evictions)"
        )


class LRUCache:
    """A thread-safe least-recently-used mapping with hit accounting.

    ``maxsize <= 0`` disables caching entirely (every lookup misses),
    which keeps call sites free of conditionals.
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute) -> Any:
        """Return the cached value for ``key``, computing and storing it
        on a miss.  The computation runs outside the lock (analyses are
        long; concurrent misses on the same key simply compute twice)."""
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value)
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
