"""Parallel batch execution for the AnalysisEngine.

A batch is a list of :class:`AnalysisRequest` values resolved in request
order, so batch submission is a drop-in replacement for a sequential
loop:

* sequentially (the default), each request goes through
  :meth:`AnalysisEngine.run` — duplicates and repeats are answered by
  the engine's result cache;
* with ``max_workers > 1``, requests missing the result cache are
  deduplicated, chunked into work units that each compile their source
  once, and fanned out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (analyses are pure
  CPU-bound Python, so processes are the only route to real parallelism
  under the GIL), then stored back into the engine's caches.  Large
  single-source groups are split across workers, so many configurations
  of one program still parallelise (at the cost of one extra front-end
  run per split chunk, inside the workers).

Results are bit-identical either way: :func:`execute_request` is
deterministic and side-effect free.  Cache statistics are kept
consistent with the sequential path: one result-cache lookup per
distinct request plus one hit per in-batch duplicate, and one logical
compile miss per distinct source.  If the platform refuses to give us a
process pool (sandboxes without semaphores, restricted containers), the
batch silently degrades to in-process execution.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.engine.engine import AnalysisEngine, _copy_result, compile_request, execute_request
from repro.engine.pool import (
    _POOL_COLLECT_FAILURES,
    _POOL_SETUP_FAILURES,
    PersistentWorkerPool,
    WorkerPoolError,
    default_max_workers,
    discard_shared_pool,
    shared_process_pool,
)
from repro.engine.request import AnalysisRequest
from repro.obs import tracer

__all__ = [
    "PersistentWorkerPool",
    "WorkerPoolError",
    "default_max_workers",
    "discard_shared_pool",
    "run_batch",
    "shared_process_pool",
]


def run_batch(
    engine: AnalysisEngine,
    requests: Iterable[AnalysisRequest],
    max_workers: int | None = None,
) -> list:
    """Resolve ``requests`` through ``engine``; see the module docstring."""
    requests = list(requests)
    if max_workers is None:
        max_workers = default_max_workers()

    if max_workers and max_workers > 1 and len(requests) > 1:
        results, used_pool = _run_deduplicated(engine, requests, max_workers)
        engine._note_batch(parallel=used_pool, requests=len(requests))
        return results

    engine._note_batch(parallel=False)
    return [engine.run(request) for request in requests]


def _run_deduplicated(
    engine: AnalysisEngine, requests: list[AnalysisRequest], max_workers: int
) -> tuple[list, bool]:
    """Deduplicate the batch, fan the distinct misses out over a process
    pool (falling back to in-process execution when the pool is
    unavailable or not worth spinning up), and reassemble results in
    request order.  Returns ``(results, used_pool)``."""
    results: list = [None] * len(requests)
    pending: dict[str, list[int]] = {}  # result_key -> indices of duplicates
    for index, request in enumerate(requests):
        key = request.result_key()
        if key in pending:
            # In-batch duplicate of a request already known to miss; its
            # cache hit is recorded when it is served below.
            pending[key].append(index)
            continue
        cached = engine._cached_result(request)
        if cached is not None:
            results[index] = cached
        else:
            pending[key] = [index]

    todo = [(indices[0], requests[indices[0]]) for indices in pending.values()]
    # Group by compile key so workers compile each source once, then split
    # oversized groups so a single source with many configurations still
    # spreads across workers.
    groups: dict[str, list[tuple[int, AnalysisRequest]]] = {}
    for index, request in todo:
        groups.setdefault(request.compile_key(), []).append((index, request))
    units = _work_units(list(groups.values()), max_workers, len(todo))

    fresh: dict[int, object] | None = None
    if len(units) > 1:
        fresh = _execute_on_pool(units, max_workers)
    used_pool = fresh is not None
    if fresh is None:
        fresh = {}
        for index, request in todo:
            fresh[index] = execute_request(request, program=engine.compile(request))

    duplicate_hits = sum(len(indices) - 1 for indices in pending.values())
    if used_pool:
        # Mirror the sequential path's accounting for work the pool did:
        # one logical compile per distinct source, a reuse per further
        # request of that source.
        engine._note_parallel_work(
            compiles=len(groups),
            compile_reuses=len(todo) - len(groups),
            duplicate_hits=duplicate_hits,
        )
    else:
        # engine.compile() above recorded real compile stats already.
        engine._note_parallel_work(compiles=0, compile_reuses=0, duplicate_hits=duplicate_hits)

    # Duplicates are served straight from the fresh results (never from a
    # second cache lookup — the result cache may be disabled or may have
    # evicted the entry), and every caller gets an independent copy so
    # mutations cannot corrupt the cached instance.
    for index, request in todo:
        engine._store_result(request, fresh[index])
    for indices in pending.values():
        first = fresh[indices[0]]
        for index in indices:
            results[index] = _copy_result(first)
    return results, used_pool


def _work_units(
    groups: list[list[tuple[int, AnalysisRequest]]], max_workers: int, total: int
) -> list[list[tuple[int, AnalysisRequest]]]:
    """Split compile-key groups into pool work units of roughly
    ``total / max_workers`` requests, so parallelism is not capped at the
    number of distinct sources.  Every unit stays within one compile key
    (its worker compiles exactly one source)."""
    chunk = max(1, math.ceil(total / max_workers))
    units: list[list[tuple[int, AnalysisRequest]]] = []
    for group in groups:
        for start in range(0, len(group), chunk):
            units.append(group[start : start + chunk])
    return units


def _execute_on_pool(
    units: list[list[tuple[int, AnalysisRequest]]], max_workers: int
) -> dict[int, object] | None:
    """Run each work unit as one task on the shared executor; None means
    no pool is available (fall back to in-process execution).  Analysis
    errors raised inside a worker propagate unchanged."""
    pool = shared_process_pool(min(max_workers, len(units)))
    if pool is None:
        return None
    fresh: dict[int, object] = {}
    want_spans = tracer().enabled
    try:
        futures = [
            (
                unit,
                pool.submit(
                    _execute_unit, [request for _, request in unit], want_spans
                ),
            )
            for unit in units
        ]
        for unit, future in futures:
            payload = future.result()
            tracer().emit_foreign(payload["spans"])
            for (index, _), result in zip(unit, payload["results"]):
                fresh[index] = result
    except _POOL_COLLECT_FAILURES:
        # The pool broke mid-flight; retire it so the next batch starts
        # from a healthy executor, and run this one in process.
        discard_shared_pool()
        return None
    return fresh


def _execute_unit(requests: list[AnalysisRequest], want_spans: bool = False) -> dict:
    """Worker entry point: all requests in a unit share one compile_key,
    so the source is compiled once and reused across analysis kinds.

    The whole unit runs in the tracer's collect mode — a forked worker
    must never write to the master's trace file (its fork-inherited sinks
    may even share the open file descriptor).  The collected spans are
    relayed in the reply when the master asked for them; it re-emits them
    into its own tree.
    """
    with tracer().collecting() as collected:
        program = compile_request(requests[0])
        results = [execute_request(request, program=program) for request in requests]
    return {"results": results, "spans": collected.spans if want_spans else []}
