"""Shared priority-worklist fixpoint kernel (Algorithm 1's scheduler).

Both fixpoint computations in the code base — the generic forward solver
(:mod:`repro.ai.solver`) and the lifted multi-color engine
(:mod:`repro.analysis.multicolor`) — iterate the same way: pop the
pending block earliest in reverse postorder, apply a transfer, join the
outputs into the targets, widen at loop headers after a visit threshold,
and re-enqueue whatever changed.  This module is the single
implementation of that schedule.

* :class:`PriorityWorklist` — a heap-ordered, duplicate-free queue keyed
  by a block-priority map (typically reverse-postorder positions).  It
  replaces the ``min(worklist, ...)`` + ``remove`` scan the ad-hoc loops
  used, which costs O(n) per pop and O(n²) over a run with a wide
  frontier; the heap costs O(log n) per operation.
* :class:`WideningPolicy` — where and when to widen, plus the
  lattice-based accounting of whether a widening actually changed the
  joined state (object identity is *not* a reliable signal: a ``widen``
  that returns an equal-but-distinct element must not be counted).
* :func:`run_fixpoint` — the pop/step/re-enqueue driver with the
  divergence guard.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import AnalysisError

#: Priority assigned to blocks absent from the order map; anything larger
#: than every legal reverse-postorder position works.
UNKNOWN_PRIORITY = 1 << 30

#: Default number of visits to a widening point before widening kicks in.
DEFAULT_WIDENING_DELAY = 3


class PriorityWorklist:
    """A duplicate-free min-heap of block names ordered by a priority map.

    ``order`` maps block names to their scheduling priority — lower pops
    first.  Passing the reverse-postorder positions of a CFG yields the
    classical fast-converging iteration order.  Ties (only possible for
    blocks missing from ``order``) break deterministically by name.
    """

    __slots__ = ("_order", "_heap", "_queued")

    def __init__(self, order: Mapping[str, int], initial: Iterable[str] = ()):
        self._order = order
        self._heap: list[tuple[int, str]] = []
        self._queued: set[str] = set()
        for name in initial:
            self.push(name)

    def push(self, name: str) -> bool:
        """Enqueue ``name``; return False if it was already pending."""
        if name in self._queued:
            return False
        self._queued.add(name)
        heapq.heappush(self._heap, (self._order.get(name, UNKNOWN_PRIORITY), name))
        return True

    def extend(self, names: Iterable[str]) -> None:
        for name in names:
            self.push(name)

    def pop(self) -> str:
        """Remove and return the pending block with the lowest priority."""
        if not self._heap:
            raise IndexError("pop from an empty worklist")
        _, name = heapq.heappop(self._heap)
        self._queued.discard(name)
        return name

    def __contains__(self, name: str) -> bool:
        return name in self._queued

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class WideningPolicy:
    """Where (``points``) and when (``delay`` visits) widening applies.

    ``widenings`` counts applications that actually coarsened the joined
    state.  The check is lattice-based: a proper ``widen`` result is
    always above the join, so it changed the state iff it is *not* below
    the join — comparing object identity would miscount whenever a domain
    returns an equal-but-distinct element.
    """

    points: frozenset[str] | set[str] = field(default_factory=set)
    delay: int = DEFAULT_WIDENING_DELAY
    widenings: int = 0

    def apply(self, target: str, visits: int, previous, joined):
        """Widen ``joined`` against ``previous`` at ``target`` if due.

        Returns the (possibly widened) state to store.
        """
        if target not in self.points or visits < self.delay:
            return joined
        widened = joined.widen(previous)
        if not widened.leq(joined):
            self.widenings += 1
        return widened


def run_fixpoint(
    worklist: PriorityWorklist,
    step: Callable[[str], Iterable[str]],
    *,
    max_visits: int,
    description: str = "fixpoint",
) -> int:
    """Drain ``worklist`` to a fixpoint and return the number of pops.

    ``step(name)`` processes one block and returns the blocks whose
    abstract state changed (they are re-enqueued).  ``step`` may also
    enqueue blocks directly through the worklist it closes over — the
    multi-color engine does this when a speculative window grows.
    Exceeding ``max_visits`` raises :class:`AnalysisError`: the lattice
    and schedule guarantee termination, so divergence means a broken
    transfer function or partial order.
    """
    visits = 0
    while worklist:
        name = worklist.pop()
        visits += 1
        if visits > max_visits:
            raise AnalysisError(
                f"{description} did not converge within {max_visits} block visits"
            )
        worklist.extend(step(name))
    return visits
