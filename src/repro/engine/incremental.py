"""Retained analysis snapshots: the substrate of incremental re-analysis.

An :class:`AnalysisSnapshot` captures everything a later run needs to
warm-start the sparse speculative fixpoint against an *edited* program:

* the per-block content fingerprints and successor lists of the analysed
  CFG (what :func:`repro.ir.cfg.diff_cfgs` maps the edit onto);
* the final fixpoint states — the per-block normal states and every
  speculative slot — codec-compressed via :mod:`repro.cache.codec`
  (the same symbol-interned varint format the shard wire and the tier-2
  store use, far denser than retaining the live object graph);
* the vcfg skeleton (frozen scenarios) and the depth chooser's final
  per-color decisions;
* the run's classifications plus per-block *line* signatures, so
  classification of untouched blocks can be reused verbatim when the
  edit did not shift their source lines.

Snapshots live in a bounded :class:`SnapshotStore` LRU inside the
:class:`~repro.engine.engine.AnalysisEngine`, keyed by the producing
request's ``result_key()`` — the same lineage handle an edited request
passes back as its ``warm_from=``.  They are an in-process acceleration
structure only: never pickled, never persisted, and safe to drop at any
time (a missing or incompatible snapshot just means a cold run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.codec import decode_state_map, encode_state_map
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.frontend import CompiledProgram
from repro.obs import span, stamp_for_request

#: Default capacity of the engine's snapshot LRU.  Snapshots are a few
#: KB each for the paper's kernels (codec-compressed states dominate);
#: the store is bounded regardless so a long-lived daemon cannot grow
#: without limit.
DEFAULT_SNAPSHOT_CACHE_SIZE = 64

#: Separator used to flatten ``(block, slot)`` composite keys into the
#: single string key space of :func:`repro.cache.codec.encode_state_map`.
#: Block names and slot kinds come from the lowering pipeline's
#: identifier alphabet and can never contain a unit separator.
_KEY_SEP = "\x1f"


@dataclass(frozen=True)
class AnalysisSnapshot:
    """One retained speculative fixpoint, ready to seed a warm re-run."""

    #: ``result_key()`` of the request that produced this snapshot — the
    #: lineage handle edited requests pass back via ``warm_from=``.
    result_key: str
    #: ``compile_key()`` of the producing request (observability only).
    compile_key: str
    #: Entry function name of the analysed program.
    entry: str
    #: Memory-layout fingerprint the retained states embed (states name
    #: symbols and memory blocks; a different layout makes them garbage).
    layout_fingerprint: str
    #: The resolved configs of the producing run.  A warm start is only
    #: sound against a request resolving to the *same* analysis.
    cache_config: object
    speculation: object
    #: Per-block content fingerprints of the analysed CFG.
    block_fingerprints: dict[str, str]
    #: Per-block source-line signatures (classification reuse gate).
    block_line_signatures: dict[str, str]
    #: Successor lists of the analysed CFG (diff closure needs to know
    #: where removed/rewritten blocks used to deliver).
    old_successors: dict[str, tuple[str, ...]]
    #: The vcfg skeleton: frozen scenarios of the producing run.
    scenarios: tuple
    #: Final depth-chooser decisions: ``{color: active depth}``, locked colors.
    chooser_active_depths: dict[int, int]
    chooser_locked: frozenset[int]
    #: Codec blobs: the normal-state map and the flattened slot map.
    normal_blob: bytes
    slots_blob: bytes
    #: Widening count of the producing run.  Retained states are only the
    #: exact least fixpoint — the thing warm exactness rests on — when the
    #: producing run never widened.
    widenings: int
    #: Secret annotations of the analysed program.  Fixpoint states do not
    #: depend on them, but retained classifications do — and they are not
    #: part of the layout fingerprint, so they gate compatibility here.
    secret_symbols: frozenset[str] = frozenset()
    #: The producing run's classifications (for per-block reuse).
    classifications: tuple = ()

    @property
    def nbytes(self) -> int:
        """Approximate retained size (the codec blobs dominate)."""
        return len(self.normal_blob) + len(self.slots_blob)


def _flatten_slots(speculative: dict[str, dict]) -> dict[str, object]:
    flat: dict[str, object] = {}
    for block, slots in speculative.items():
        for slot, state in slots.items():
            parts = [block, slot[0], str(slot[1])]
            parts.extend(str(extra) for extra in slot[2:])
            flat[_KEY_SEP.join(parts)] = state
    return flat


def _unflatten_slots(flat: dict[str, object]) -> dict[str, dict]:
    speculative: dict[str, dict] = {}
    for key, state in flat.items():
        block, kind, color, *extra = key.split(_KEY_SEP)
        slot = (kind, int(color), *extra)
        speculative.setdefault(block, {})[slot] = state
    return speculative


def snapshot_from_analysis(
    request: AnalysisRequest,
    program: CompiledProgram,
    analysis,
    result,
    compact: bool = True,
) -> AnalysisSnapshot:
    """Build a snapshot from a completed sparse speculative solve.

    ``analysis`` is the :class:`~repro.analysis.multicolor.SpeculativeCacheAnalysis`
    instance that just ran (its ``last_fixpoint`` holds the full state
    maps the result object does not carry); ``result`` the
    :class:`~repro.analysis.result.CacheAnalysisResult` it produced.
    Warm runs may be snapshotted too: their states are bit-identical to
    the cold fixpoint by construction.

    ``compact=False`` skips the codec pass: the live state maps are
    attached directly as the pre-decoded warm data (they are immutable to
    the solver) and the blobs stay empty.  The mitigation loop retains a
    chaining snapshot per scored candidate this way — paying an encode it
    would decode milliseconds later, per candidate, would cost more than
    the chained warm start saves.  The trade is memory footprint:
    non-compact snapshots pin the live object graph until evicted, which
    is fine for an interactive loop's transient chain and wrong for a
    long-lived daemon's baseline store.
    """
    fixpoint = analysis.last_fixpoint
    if fixpoint is None:
        raise ValueError("analysis has no retained fixpoint to snapshot")
    cfg = program.cfg
    depths, locked = analysis.chooser.export_state()
    if compact:
        with span("snapshot.encode", program=cfg.name) as encode_span:
            normal_blob = encode_state_map(fixpoint.normal)
            slots_blob = encode_state_map(_flatten_slots(fixpoint.speculative))
            encode_span.set(bytes=len(normal_blob) + len(slots_blob))
    else:
        normal_blob = b""
        slots_blob = b""
    fingerprints = cfg.block_fingerprints()
    line_signatures = cfg.block_line_signatures()
    # Prime the program's content caches: the mitigation loop derives every
    # candidate's fingerprints from these by delta, and later warm runs
    # against the same resident program skip the full canonicalisation pass.
    cfg.attach_content_caches(fingerprints, line_signatures)
    snapshot = AnalysisSnapshot(
        result_key=request.result_key(),
        compile_key=request.compile_key(),
        entry=cfg.name,
        layout_fingerprint=program.layout_fingerprint(),
        cache_config=request.resolved_cache_config,
        speculation=request.resolved_speculation,
        block_fingerprints=fingerprints,
        block_line_signatures=line_signatures,
        old_successors={name: tuple(cfg.successors(name)) for name in cfg.blocks},
        scenarios=tuple(analysis.vcfg.scenarios),
        chooser_active_depths=depths,
        chooser_locked=locked,
        normal_blob=normal_blob,
        slots_blob=slots_blob,
        widenings=result.widenings,
        secret_symbols=frozenset(program.info.secret_symbols),
        classifications=tuple(result.classifications),
    )
    if not compact:
        from repro.analysis.multicolor import WarmStartData

        warm = WarmStartData(
            block_fingerprints=snapshot.block_fingerprints,
            old_successors=snapshot.old_successors,
            scenarios=snapshot.scenarios,
            normal=dict(fixpoint.normal),
            slots={name: dict(slots) for name, slots in fixpoint.speculative.items()},
            chooser_active_depths=snapshot.chooser_active_depths,
            chooser_locked=snapshot.chooser_locked,
            classifications=snapshot.classifications,
            block_line_signatures=snapshot.block_line_signatures,
        )
        object.__setattr__(snapshot, "_decoded_warm", warm)
    return snapshot


def warm_start_from_snapshot(snapshot: AnalysisSnapshot):
    """Decode a snapshot into the solver's :class:`WarmStartData`.

    The decoded value is memoised on the snapshot itself (and thus evicted
    with it): an interactive loop warm-starting many candidate edits from
    one baseline decodes the blobs once.  Sharing is safe because the
    solver treats states as immutable values — ``join``/``access`` return
    fresh states and seeded dict entries are only ever *replaced*.
    """
    from repro.analysis.multicolor import WarmStartData

    memo = getattr(snapshot, "_decoded_warm", None)
    if memo is not None:
        return memo

    with span("snapshot.decode", bytes=snapshot.nbytes):
        normal = decode_state_map(snapshot.normal_blob)
        slots = _unflatten_slots(decode_state_map(snapshot.slots_blob))
    warm = WarmStartData(
        block_fingerprints=snapshot.block_fingerprints,
        old_successors=snapshot.old_successors,
        scenarios=snapshot.scenarios,
        normal=normal,
        slots=slots,
        chooser_active_depths=snapshot.chooser_active_depths,
        chooser_locked=snapshot.chooser_locked,
        classifications=snapshot.classifications,
        block_line_signatures=snapshot.block_line_signatures,
    )
    object.__setattr__(snapshot, "_decoded_warm", warm)
    return warm


def snapshot_compatible(
    snapshot: AnalysisSnapshot, request: AnalysisRequest, program: CompiledProgram
) -> str | None:
    """None when ``snapshot`` may seed a warm run of ``request`` over
    ``program``; otherwise the rejection reason (a cold-fallback label).

    The checks mirror what warm exactness rests on: same resolved
    analysis configuration, same entry function, a memory layout whose
    symbols/blocks the retained states actually denote, and a producing
    run that never widened (widened states sit above the least fixpoint,
    and a warm drain would never pull seeded blocks back down).
    """
    if snapshot.widenings:
        return "baseline_widened"
    if snapshot.entry != program.cfg.name:
        return "entry_mismatch"
    if snapshot.layout_fingerprint != program.layout_fingerprint():
        return "layout_mismatch"
    if snapshot.secret_symbols != frozenset(program.info.secret_symbols):
        return "secret_symbols_mismatch"
    if snapshot.cache_config != request.resolved_cache_config:
        return "cache_config_mismatch"
    if snapshot.speculation != request.resolved_speculation:
        return "speculation_mismatch"
    return None


def snapshot_eligible(request: AnalysisRequest) -> bool:
    """May this request's run be snapshotted / warm-started at all?

    Only the canonical sparse speculative engine retains and consumes
    snapshots: the baseline analysis has no speculative slots to seed,
    and the scenario-sharded scheduler promises (and is result-keyed as)
    a different iteration structure.
    """
    return request.kind is AnalysisKind.SPECULATIVE and request.scenario_shards == 1


def execute_retaining(
    request: AnalysisRequest, program: CompiledProgram, warm_start=None
):
    """Run one speculative request keeping the solver instance around.

    The cache-free twin of :func:`repro.engine.engine.execute_request`
    for the speculative kind: identical result (same spans, same
    provenance stamping), but returns ``(result, analysis)`` so the
    caller can snapshot the final fixpoint states — which the plain
    result object deliberately does not carry.
    """
    from repro.analysis.multicolor import SpeculativeCacheAnalysis

    # Imported lazily: engine.py imports this module at load time, so the
    # reverse import must wait until call time.
    from repro.engine.engine import resolve_prune_scenarios

    with span(
        "analyze", kind=request.kind.value, label=request.label
    ) as analyze_span:
        analysis = SpeculativeCacheAnalysis(
            program,
            cache_config=request.cache_config,
            speculation=request.speculation,
            scenario_shards=request.scenario_shards,
            shard_backend=request.shard_backend,
            warm_start=warm_start,
            prune_scenarios=resolve_prune_scenarios(request),
        )
        result = analysis.run()
        result.provenance = stamp_for_request(
            request, backend=result.shard_backend_used
        )
        analyze_span.set(
            result_key=request.result_key(), iterations=result.iterations
        )
    return result, analysis


@dataclass
class IncrementalStats:
    """Aggregate incremental-reuse accounting for one engine instance."""

    enabled: bool = False
    warm_hits: int = 0
    cold_fallbacks: int = 0
    snapshots_stored: int = 0
    seeded_slots: int = 0
    invalidated_blocks: int = 0
    snapshots: CacheStats = field(default_factory=CacheStats)
    #: How many snapshots are currently retained.
    retained: int = 0

    @property
    def warm_rate(self) -> float:
        """Warm hits over warm-or-fallback attempts (0.0 when none)."""
        attempts = self.warm_hits + self.cold_fallbacks
        return self.warm_hits / attempts if attempts else 0.0

    def to_wire(self) -> dict:
        """JSON-shaped form for the service stats payload."""
        return {
            "enabled": self.enabled,
            "warm_hits": self.warm_hits,
            "cold_fallbacks": self.cold_fallbacks,
            "warm_rate": self.warm_rate,
            "snapshots_stored": self.snapshots_stored,
            "seeded_slots": self.seeded_slots,
            "invalidated_blocks": self.invalidated_blocks,
            "retained": self.retained,
            "snapshot_cache": vars(self.snapshots),
        }

    def __str__(self) -> str:
        return (
            f"incremental: {'on' if self.enabled else 'off'}, "
            f"{self.warm_hits} warm hits, {self.cold_fallbacks} cold fallbacks "
            f"({self.warm_rate:.0%} warm), {self.retained} snapshots retained"
        )


class SnapshotStore:
    """A bounded LRU of :class:`AnalysisSnapshot` values keyed by the
    producing request's ``result_key()``."""

    def __init__(self, maxsize: int = DEFAULT_SNAPSHOT_CACHE_SIZE):
        self._cache = LRUCache(maxsize=maxsize)

    def get(self, result_key: str) -> AnalysisSnapshot | None:
        return self._cache.get(result_key)

    def put(self, snapshot: AnalysisSnapshot) -> None:
        self._cache.put(snapshot.result_key, snapshot)

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, result_key: str) -> bool:
        return result_key in self._cache

    def clear(self) -> None:
        self._cache.clear()

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats.snapshot()
