"""Process-pool primitives shared by the batch executor and the sharded
analysis engine.

This module deliberately imports nothing from the rest of the package
except :mod:`repro.obs` (which itself imports nothing from ``repro``):
it sits below both :mod:`repro.engine.batch` (which fans analysis
batches out over the shared executor) and
:mod:`repro.analysis.multicolor` (whose process shard backend keeps
stateful :class:`PersistentWorkerPool` workers), so either can use it
without an import cycle.

Two kinds of pool live here:

* the **shared executor** — one process-wide
  :class:`~concurrent.futures.ProcessPoolExecutor`, created lazily and
  reused across calls so repeated batches and shard rounds do not pay
  fork+import startup each time;
* :class:`PersistentWorkerPool` — long-lived worker processes with
  *affinity* (callers address workers by index and workers keep state
  between requests), which a futures executor cannot provide.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.obs import metrics

#: Failures while *standing up* a pool (sandboxes without semaphores,
#: restricted containers) that demote callers to in-process execution.
_POOL_SETUP_FAILURES = (BrokenExecutor, OSError, RuntimeError)

#: Infrastructure failures while *collecting* results (a worker died
#: abruptly, the pool broke mid-flight).  Deliberately narrower than the
#: setup tuple: exceptions an analysis itself raises in a worker —
#: including RuntimeError subclasses like RecursionError — propagate to
#: the caller unchanged.
_POOL_COLLECT_FAILURES = (BrokenExecutor, OSError)


def default_max_workers() -> int | None:
    """Worker count from the ``REPRO_MAX_WORKERS`` environment variable
    (None — sequential — when unset or unparsable)."""
    raw = os.environ.get("REPRO_MAX_WORKERS")
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Shared process-pool executor
# ----------------------------------------------------------------------
# Batches are short relative to fork+import startup, so constructing a
# fresh ProcessPoolExecutor per call wastes most of the parallel win.
# One lazily-created executor is shared process-wide and grown (replaced)
# when a caller needs more workers than it has; it is discarded on
# collection failure (the next caller gets a fresh one) and at
# interpreter exit.
_shared_pool: ProcessPoolExecutor | None = None
_shared_pool_size = 0
_shared_pool_lock = threading.Lock()


def shared_process_pool(max_workers: int) -> ProcessPoolExecutor | None:
    """The process-wide executor, sized for at least ``max_workers``
    (None when the platform cannot stand up a process pool).

    The executor outlives individual calls; callers must never shut it
    down — report collection failures via :func:`discard_shared_pool`
    instead.
    """
    global _shared_pool, _shared_pool_size
    max_workers = max(1, max_workers)
    with _shared_pool_lock:
        if _shared_pool is not None and _shared_pool_size >= max_workers:
            return _shared_pool
        stale = _shared_pool
        _shared_pool = None
        _shared_pool_size = 0
        if stale is not None:
            stale.shutdown(wait=False, cancel_futures=True)
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except _POOL_SETUP_FAILURES:
            return None
        _shared_pool = pool
        _shared_pool_size = max_workers
        metrics().counter("pool.executors_started").inc()
        metrics().gauge("pool.executor_size").set(max_workers)
        return pool


def discard_shared_pool() -> None:
    """Drop the shared executor (broken pool, or interpreter exit); the
    next :func:`shared_process_pool` call builds a fresh one."""
    global _shared_pool, _shared_pool_size
    with _shared_pool_lock:
        stale = _shared_pool
        _shared_pool = None
        _shared_pool_size = 0
    if stale is not None:
        stale.shutdown(wait=False, cancel_futures=True)


atexit.register(discard_shared_pool)


# ----------------------------------------------------------------------
# Persistent workers with affinity
# ----------------------------------------------------------------------
class WorkerPoolError(RuntimeError):
    """A :class:`PersistentWorkerPool` infrastructure failure: workers
    could not start, a worker died, or a worker's handler raised (the
    remote traceback is included in the message).  Callers are expected
    to fall back to in-process execution — which, for deterministic
    handlers, also reproduces any genuine handler bug with a local
    traceback."""


#: Sentinel asking a persistent worker to exit its loop.
_WORKER_STOP = "__repro_worker_stop__"


def _persistent_worker_main(conn, handler_factory, init_args) -> None:
    """Entry point of one persistent worker process: build the stateful
    handler once, then answer request messages until told to stop."""
    try:
        handler = handler_factory(*init_args)
    except BaseException:
        try:
            conn.send(("init-error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
        return
    try:
        conn.send(("ready", None))
        while True:
            message = conn.recv()
            if message == _WORKER_STOP:
                return
            try:
                conn.send(("ok", handler(message)))
            except BaseException:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, OSError):
        return  # master went away; nothing left to answer


class PersistentWorkerPool:
    """Long-lived worker processes with *affinity*: each worker keeps the
    state its handler accumulates across requests, and callers address
    workers by index.  This is what :class:`ProcessPoolExecutor` cannot
    provide — its tasks land on arbitrary workers — and what the sharded
    fixpoint needs: shard state stays resident in its worker and only
    small deltas cross the pipe each round.

    ``handler_factory(*init_args)`` runs once inside each worker and
    returns a callable ``handler(message) -> reply``; both the factory
    and the per-worker init args must be picklable.  All failures —
    setup, a dead worker, a handler exception — surface as
    :class:`WorkerPoolError`.
    """

    def __init__(
        self,
        handler_factory: Callable[..., Callable[[Any], Any]],
        per_worker_args: Sequence[tuple],
        name: str = "repro-worker",
    ):
        if not per_worker_args:
            raise ValueError("a worker pool needs at least one worker")
        context = multiprocessing.get_context()
        self._procs: list = []
        self._conns: list = []
        try:
            for index, init_args in enumerate(per_worker_args):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_persistent_worker_main,
                    args=(child_conn, handler_factory, tuple(init_args)),
                    name=f"{name}-{index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            for index in range(len(self._procs)):
                kind, payload = self._recv(index)
                if kind != "ready":
                    raise WorkerPoolError(
                        f"worker {index} failed to initialise:\n{payload}"
                    )
        except WorkerPoolError:
            metrics().counter("pool.worker_failures").inc()
            self.close()
            raise
        except _POOL_SETUP_FAILURES as error:
            metrics().counter("pool.worker_failures").inc()
            self.close()
            raise WorkerPoolError(f"could not start worker processes: {error}") from error
        metrics().counter("pool.workers_started").inc(len(self._procs))

    @property
    def num_workers(self) -> int:
        return len(self._procs)

    def submit(self, worker: int, message: Any) -> None:
        """Send one request to ``worker`` without waiting for the reply."""
        try:
            self._conns[worker].send(message)
        except (OSError, ValueError) as error:
            metrics().counter("pool.worker_failures").inc()
            raise WorkerPoolError(f"worker {worker} is gone: {error}") from error
        metrics().counter("pool.dispatches").inc()

    def result(self, worker: int) -> Any:
        """Collect ``worker``'s next reply (blocking)."""
        kind, payload = self._recv(worker)
        if kind == "ok":
            metrics().counter("pool.replies").inc()
            return payload
        metrics().counter("pool.worker_failures").inc()
        raise WorkerPoolError(f"worker {worker} raised:\n{payload}")

    def request_all(self, messages: Sequence[Any]) -> list:
        """Fan one message out to each worker, then collect every reply
        in worker order (``messages[i]`` goes to worker ``i``)."""
        if len(messages) != self.num_workers:
            raise ValueError(
                f"got {len(messages)} messages for {self.num_workers} workers"
            )
        for worker, message in enumerate(messages):
            self.submit(worker, message)
        return [self.result(worker) for worker in range(self.num_workers)]

    def _recv(self, worker: int):
        try:
            return self._conns[worker].recv()
        except (EOFError, OSError) as error:
            raise WorkerPoolError(f"worker {worker} died") from error

    def close(self) -> None:
        """Stop every worker (idempotent; tolerates dead workers)."""
        for conn in self._conns:
            try:
                conn.send(_WORKER_STOP)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
