"""Declarative analysis requests.

An :class:`AnalysisRequest` captures everything needed to reproduce one
analysis run — the MiniC source, the front-end options, the cache
geometry, and the analysis kind and knobs — as an immutable, hashable,
picklable value.  That makes requests usable as cache keys, process-pool
work items, and (eventually) wire-format job descriptions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

from repro.cache.config import CacheConfig
from repro.speculation.config import SpeculationConfig


class AnalysisKind(str, Enum):
    """Which analysis a request runs."""

    BASELINE = "baseline"  # Algorithm 1, non-speculative must-hit
    SPECULATIVE = "speculative"  # Algorithms 2/3, speculation-sound


#: Valid values of the sharded engine's ``shard_backend`` execution axis
#: (the canonical definition; the engine and the wire validate against
#: it).  None on a request means "resolve at execution time": the
#: ``REPRO_SHARD_BACKEND`` environment variable, then ``"serial"``.
SHARD_BACKENDS = ("serial", "threads", "processes")


@dataclass(frozen=True)
class AnalysisRequest:
    """One declarative unit of analysis work.

    ``use_shadow_state`` only affects :data:`AnalysisKind.BASELINE` runs;
    the speculative analysis reads the flag from its
    :class:`SpeculationConfig`.  ``label`` is carried through for
    reporting and never affects caching.

    ``scenario_shards`` selects the speculative engine's scheduler: 1 (the
    default) is the canonical sparse fixpoint, >= 2 partitions the
    speculation scenarios into that many shards solved around an outer
    normal-state fixpoint loop (see
    :mod:`repro.analysis.multicolor`).  It only affects
    :data:`AnalysisKind.SPECULATIVE` runs, and participates in the result
    key: the sharded scheduler computes the exact (unwidened) fixpoint,
    whose iteration counts — and, on widening-active programs,
    classifications — legitimately differ from the canonical engine's.

    ``shard_backend`` picks *where* a sharded run executes —
    ``"serial"``, ``"threads"`` or ``"processes"``; None defers to the
    ``REPRO_SHARD_BACKEND`` environment variable, then ``"serial"``.
    All backends are bit-identical (states, iteration counts,
    classifications), so like ``label`` it is an execution hint: it never
    affects equality, the result key, or the persistent store — existing
    keys stay warm whatever backend computed them.
    """

    source: str
    kind: AnalysisKind = AnalysisKind.SPECULATIVE
    entry: str | None = None
    line_size: int = 64
    cache_config: CacheConfig | None = None
    speculation: SpeculationConfig | None = None
    use_shadow_state: bool = True
    unroll: bool = True
    inline: bool = True
    max_unroll_iterations: int = 4096
    scenario_shards: int = 1
    #: Run the secret-taint pre-analysis and drop speculation scenarios
    #: whose windows are provably access-free (see
    #: :mod:`repro.analysis.taint`).  Classifications and verdicts are
    #: bit-identical to the unpruned run, but reported iteration counts
    #: are not — so like ``scenario_shards`` the knob participates in the
    #: result key (only when on, keeping historical keys warm).
    prune_scenarios: bool = False
    shard_backend: str | None = field(default=None, compare=False)
    label: str | None = field(default=None, compare=False)
    #: ``result_key()`` of a prior request whose retained snapshot should
    #: warm-start this one (incremental re-analysis; see
    #: :mod:`repro.engine.incremental`).  Purely an execution hint, like
    #: ``shard_backend``: warm results are bit-identical to cold ones, so
    #: the lineage handle never affects equality or the result key, and a
    #: missing/evicted/incompatible snapshot silently means a cold run.
    warm_from: str | None = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls, source: str, **kwargs) -> "AnalysisRequest":
        return cls(source=source, kind=AnalysisKind.BASELINE, **kwargs)

    @classmethod
    def speculative(cls, source: str, **kwargs) -> "AnalysisRequest":
        return cls(source=source, kind=AnalysisKind.SPECULATIVE, **kwargs)

    @classmethod
    def for_program(cls, program, kind: AnalysisKind, **kwargs) -> "AnalysisRequest":
        """Build a request matching an already-compiled program.

        The request records the program's source, entry function, line
        size and front-end options, so resolving it through the engine
        reproduces the same compile; callers holding the program can pass
        it along to skip even that (see :meth:`AnalysisEngine.run`).
        """
        return cls(
            source=program.source,
            kind=kind,
            entry=program.entry_function,
            line_size=program.layout.line_size,
            unroll=program.unroll,
            inline=program.inline,
            max_unroll_iterations=program.max_unroll_iterations,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Normalised views (None means "the paper's default")
    # ------------------------------------------------------------------
    @property
    def resolved_cache_config(self) -> CacheConfig:
        return self.cache_config or CacheConfig.paper_default()

    @property
    def resolved_speculation(self) -> SpeculationConfig:
        return self.speculation or SpeculationConfig.paper_default()

    # ------------------------------------------------------------------
    # Cache keys
    # ------------------------------------------------------------------
    def compile_key(self) -> str:
        """Content-hash key identifying the front-end work of this request.

        Memoised on the (frozen) instance: the dispatch path looks keys up
        several times per request and must not re-hash the source each
        time.
        """
        key = self.__dict__.get("_compile_key")
        if key is None:
            key = _digest(
                "compile",
                self.source,
                self.entry,
                self.line_size,
                self.unroll,
                self.inline,
                self.max_unroll_iterations,
            )
            object.__setattr__(self, "_compile_key", key)
        return key

    def result_key(self) -> str:
        """Content-hash key identifying the full analysis run (memoised)."""
        key = self.__dict__.get("_result_key")
        if key is None:
            # The cache config is digested via its full dataclass repr, so
            # the key separates every geometry/policy axis (num_lines,
            # associativity, replacement policy, latencies): two requests
            # differing only in geometry can never alias in the LRU tier
            # or in the persistent store.
            parts: list[object] = [
                self.compile_key(), self.kind.value, self.resolved_cache_config
            ]
            if self.kind is AnalysisKind.BASELINE:
                parts.append(self.use_shadow_state)
            else:
                parts.append(self.resolved_speculation)
                # Only sharded runs extend the key: default requests keep
                # their historical keys, so persistent stores written
                # before the knob existed stay warm.  The exact shard
                # count is part of the key even though sharded
                # *classifications* are shard-count invariant, because the
                # reported iteration counts are not — and `repro submit
                # --verify` fingerprints (which include iterations) must
                # match a direct execution of the same request.
                if self.scenario_shards >= 2:
                    parts.append(("scenario_shards", self.scenario_shards))
                # Same reasoning for pruning: classifications are
                # identical, iteration counts are not, and fingerprints
                # include iterations.
                if self.prune_scenarios:
                    parts.append(("prune_scenarios", True))
            key = _digest("result", *parts)
            object.__setattr__(self, "_result_key", key)
        return key

    def describe(self) -> str:
        name = self.label or self.entry or "<anonymous>"
        return f"{self.kind.value} analysis of {name!r}"


def program_request(
    program,
    cache_config=None,
    speculation=None,
    speculative: bool = True,
    label: str | None = None,
) -> AnalysisRequest:
    """The request for one analysis of an already-compiled program.

    Shared by the WCET and side-channel applications so both build
    identical cache keys for the same work.
    """
    return AnalysisRequest.for_program(
        program,
        kind=AnalysisKind.SPECULATIVE if speculative else AnalysisKind.BASELINE,
        cache_config=cache_config,
        speculation=speculation if speculative else None,
        label=label or program.cfg.name,
    )


def _digest(*parts: object) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()
