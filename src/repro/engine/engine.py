"""The AnalysisEngine service layer.

One engine instance owns two LRU caches — compiled programs keyed by a
content hash of the source and front-end options, and analysis results
keyed by the full request — and resolves declarative
:class:`~repro.engine.request.AnalysisRequest` values through them.  All
applications (:mod:`repro.apps.wcet`, :mod:`repro.apps.sidechannel`) and
the table generators (:mod:`repro.bench.tables`) submit their work here,
so a batch that re-analyses the same program under several
configurations compiles it once, and repeated requests skip the front
end and the fixpoint entirely.

:func:`execute_request` is the cache-free core — a pure module-level
function so process-pool workers (see :mod:`repro.engine.batch`) can run
it by reference.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace
from typing import Any

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.incremental import (
    DEFAULT_SNAPSHOT_CACHE_SIZE,
    IncrementalStats,
    SnapshotStore,
    execute_retaining,
    snapshot_compatible,
    snapshot_eligible,
    snapshot_from_analysis,
    warm_start_from_snapshot,
)
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.frontend import CompiledProgram, compile_source
from repro.obs import metrics, span, stamp_for_request

#: Default capacity of the compile cache (compiled CFGs are the largest
#: objects the engine retains).
DEFAULT_COMPILE_CACHE_SIZE = 256

#: Default capacity of the result cache.
DEFAULT_RESULT_CACHE_SIZE = 1024

#: Environment knob enabling incremental re-analysis when the engine is
#: constructed without an explicit ``incremental=`` argument.
INCREMENTAL_ENV = "REPRO_INCREMENTAL"

#: Environment knob forcing taint-driven scenario pruning on every
#: speculative run whose request does not set ``prune_scenarios`` itself.
#: Verdicts and classifications are knob-invariant (see
#: :mod:`repro.analysis.taint`), so flipping it process-wide is safe; it
#: exists so the whole test suite / a deployment can run pruned without
#: touching request construction.
PRUNE_SCENARIOS_ENV = "REPRO_PRUNE_SCENARIOS"


def resolve_prune_scenarios(request: AnalysisRequest) -> bool:
    """Execution-time pruning decision for one request: the request's own
    flag, else the ``REPRO_PRUNE_SCENARIOS`` environment knob."""
    if request.prune_scenarios:
        return True
    return os.environ.get(PRUNE_SCENARIOS_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def compile_request(request: AnalysisRequest) -> CompiledProgram:
    """Run the front end for ``request`` (no caching)."""
    return compile_source(
        request.source,
        entry=request.entry,
        line_size=request.line_size,
        unroll=request.unroll,
        inline=request.inline,
        max_unroll_iterations=request.max_unroll_iterations,
    )


def execute_request(
    request: AnalysisRequest, program: CompiledProgram | None = None
):
    """Compile (unless ``program`` is given) and analyse one request.

    This is deterministic and side-effect free, so sequential execution,
    cached replay and process-pool fan-out all produce bit-identical
    classifications for the same request.  (The attached provenance stamp
    carries a wall-clock timestamp, but it is observational —
    ``compare=False``, excluded from fingerprints — so determinism of the
    *verdict* is unaffected.)
    """
    # Imported lazily: the analyses' fixpoint loops import the worklist
    # kernel from this package, so a module-level import would be circular.
    from repro.analysis.baseline import analyze_baseline
    from repro.analysis.speculative import analyze_speculative

    with span(
        "analyze", kind=request.kind.value, label=request.label
    ) as analyze_span:
        if program is None:
            program = compile_request(request)
        if request.kind is AnalysisKind.BASELINE:
            result = analyze_baseline(
                program,
                cache_config=request.cache_config,
                use_shadow_state=request.use_shadow_state,
            )
        else:
            result = analyze_speculative(
                program,
                cache_config=request.cache_config,
                speculation=request.speculation,
                scenario_shards=request.scenario_shards,
                shard_backend=request.shard_backend,
                prune_scenarios=resolve_prune_scenarios(request),
            )
        result.provenance = stamp_for_request(
            request, backend=result.shard_backend_used
        )
        analyze_span.set(
            result_key=request.result_key(), iterations=result.iterations
        )
    return result


@dataclass
class EngineStats:
    """Aggregate accounting for one engine instance."""

    compile: CacheStats = field(default_factory=CacheStats)
    results: CacheStats = field(default_factory=CacheStats)
    requests: int = 0
    batches: int = 0
    parallel_batches: int = 0
    #: Tier-2 (on-disk result store) statistics; None when no store is
    #: attached.  Duck-typed so the engine stays below the service layer.
    store: Any = None
    #: Incremental re-analysis accounting (always present; ``enabled``
    #: records whether the engine resolves ``warm_from=`` handles).
    incremental: IncrementalStats = field(default_factory=IncrementalStats)

    def __str__(self) -> str:
        lines = [
            f"engine: {self.requests} requests, {self.batches} batches "
            f"({self.parallel_batches} parallel)",
            f"  compile cache: {self.compile}",
            f"  result cache:  {self.results}",
        ]
        if self.store is not None:
            lines.append(f"  result store:  {self.store}")
        if self.incremental.enabled or self.incremental.snapshots_stored:
            lines.append(f"  {self.incremental}")
        return "\n".join(lines)


class AnalysisEngine:
    """Resolve analysis requests through compile and result caches."""

    def __init__(
        self,
        compile_cache_size: int = DEFAULT_COMPILE_CACHE_SIZE,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_store: Any = None,
        incremental: bool | None = None,
        snapshot_cache_size: int = DEFAULT_SNAPSHOT_CACHE_SIZE,
    ):
        self._compile_cache = LRUCache(maxsize=compile_cache_size)
        self._result_cache = LRUCache(maxsize=result_cache_size)
        self._result_store = result_store
        self._requests = 0
        self._batches = 0
        self._parallel_batches = 0
        #: None defers to the REPRO_INCREMENTAL environment variable at
        #: each run (so a long-lived default engine follows the knob).
        self._incremental = incremental
        self._snapshots = SnapshotStore(maxsize=snapshot_cache_size)
        self._warm_hits = 0
        self._cold_fallbacks = 0
        self._snapshots_stored = 0
        self._seeded_slots = 0
        self._invalidated_blocks = 0

    @property
    def incremental_enabled(self) -> bool:
        """Whether runs retain snapshots and resolve ``warm_from=`` handles."""
        if self._incremental is not None:
            return self._incremental
        return os.environ.get(INCREMENTAL_ENV, "").strip().lower() in (
            "1",
            "true",
            "yes",
            "on",
        )

    # ------------------------------------------------------------------
    # Single-request API
    # ------------------------------------------------------------------
    def compile(self, request: AnalysisRequest) -> CompiledProgram:
        """Return the compiled program for ``request``, caching by the
        content hash of the source and front-end options."""
        return self._compile_cache.get_or_compute(
            request.compile_key(), lambda: compile_request(request)
        )

    def run(
        self, request: AnalysisRequest, program: CompiledProgram | None = None
    ):
        """Resolve one request to a :class:`CacheAnalysisResult`.

        ``program`` optionally supplies an already-compiled program for
        this request's source (it must match; callers that hold one avoid
        the compile-cache round trip).  The returned result is a copy —
        mutating it never corrupts the cache — and cache hits are marked
        ``from_cache`` (their ``analysis_time`` reports the original
        computation, not the lookup).
        """
        self._requests += 1
        with span("engine.run", kind=request.kind.value) as run_span:
            cached = self._lookup_result(request)
            if cached is not None:
                run_span.set(cache_hit=True)
                return _copy_result(cached, from_cache=True)
            if self.incremental_enabled and snapshot_eligible(request):
                result, warm = self._run_incremental(request, program)
                run_span.set(cache_hit=False, warm=warm)
                # Warm results are bit-identical to cold ones, but their
                # observational fields (iterations, analysis_time) are
                # not — and result fingerprints include iterations, so a
                # cached warm result could fail a later `submit --verify`
                # replay.  Only cold runs populate the result tiers.
                if not warm:
                    self._store_result(request, result)
                return _copy_result(result)
            result = execute_request(
                request, program=program or self.compile(request)
            )
            self._store_result(request, result)
            run_span.set(cache_hit=False)
        return _copy_result(result)

    def _resolve_warm_start(self, request: AnalysisRequest, program: CompiledProgram):
        """``(warm_start, fallback_reason)`` for one eligible request —
        warm_start is None (with the reason) when the warm_from snapshot is
        absent or incompatible, and ``(None, None)`` when the request has
        no warm_from handle at all."""
        if request.warm_from is None:
            return None, None
        snapshot = self._snapshots.get(request.warm_from)
        if snapshot is None:
            return None, "snapshot_missing"
        reason = snapshot_compatible(snapshot, request, program)
        if reason is not None:
            return None, reason
        return warm_start_from_snapshot(snapshot), None

    def _note_warm_outcome(
        self, request: AnalysisRequest, analysis, seeded: bool, fallback: str | None
    ) -> bool:
        """Account one warm attempt; returns whether the run was warm."""
        warm_info = analysis.warm_info or {}
        warm = bool(warm_info.get("used"))
        if seeded and not warm:
            # The solver itself declined the seed (widening-active
            # program, or a non-canonical scheduler slipped through).
            fallback = warm_info.get("fallback", "plan")
        if request.warm_from is None:
            return warm
        registry = metrics()
        if warm:
            self._warm_hits += 1
            self._seeded_slots += warm_info.get("seeded_slots", 0)
            self._invalidated_blocks += warm_info.get("invalidated_blocks", 0)
            registry.counter("incremental.warm_hits").inc()
            registry.counter("incremental.seeded_slots").inc(
                warm_info.get("seeded_slots", 0)
            )
            registry.counter("incremental.invalidated_blocks").inc(
                warm_info.get("invalidated_blocks", 0)
            )
            registry.counter("incremental.classifications_reused").inc(
                warm_info.get("classifications_reused", 0)
            )
        else:
            self._cold_fallbacks += 1
            registry.counter("incremental.cold_fallbacks").inc()
            registry.counter(f"incremental.fallback.{fallback}").inc()
        return warm

    def _run_incremental(
        self, request: AnalysisRequest, program: CompiledProgram | None
    ) -> tuple[Any, bool]:
        """Execute one snapshot-eligible request, warm-starting from its
        ``warm_from`` snapshot when possible and retaining a snapshot of
        the run either way.  Returns ``(result, ran_warm)``."""
        program = program or self.compile(request)
        warm_start, fallback = self._resolve_warm_start(request, program)
        result, analysis = execute_retaining(request, program, warm_start=warm_start)
        warm = self._note_warm_outcome(
            request, analysis, warm_start is not None, fallback
        )
        # compact=False: in the interactive edit loop the very next
        # request warm-starts from this snapshot, so a codec encode here
        # costs more per edit than the warm solve saves on small kernels.
        # The LRU store bounds how many live state graphs stay pinned.
        self._snapshots.put(
            snapshot_from_analysis(request, program, analysis, result, compact=False)
        )
        self._snapshots_stored += 1
        return result, warm

    def run_ephemeral(
        self,
        request: AnalysisRequest,
        program: CompiledProgram,
        retain: bool = False,
    ):
        """Resolve one snapshot-eligible request against an externally
        patched program, bypassing the result-cache tiers.

        The mitigation loop scores fence candidates through here:
        ``program`` is an IR-patched twin of what ``request.source``
        compiles to — verdict-identical, but its inserted fences carry
        line 0 while recompiling the source would shift later statements'
        lines.  Such *results* must never be stored under the request's
        keys, where a later genuine run would replay them; warm-starting
        from ``request.warm_from`` still applies, and content-keyed reuse
        (vcfg windows, per-block states) is line-insensitive by design, so
        the speedup survives the quarantine.

        ``retain=True`` additionally stores a *snapshot* of the run, so a
        later candidate can chain its warm start off this one (the greedy
        synthesiser's round-N placements extend round-(N-1)'s, and the
        nearest scored relative has the smallest diff).  Unlike the result
        quarantine this is sound: snapshot states are line-independent
        (bit-identical to a source-faithful recompile's), and the stored
        per-block line signatures are the IR twin's, so classification
        reuse — the one line-sensitive part — simply never triggers for a
        source-faithful descendant (signature mismatch forces recompute).
        """
        if not snapshot_eligible(request):
            raise ValueError(
                "ephemeral runs require a speculative, unsharded request "
                f"(got {request.describe()})"
            )
        self._requests += 1
        with span("engine.run", kind=request.kind.value, ephemeral=True) as run_span:
            warm_start, fallback = self._resolve_warm_start(request, program)
            result, analysis = execute_retaining(
                request, program, warm_start=warm_start
            )
            warm = self._note_warm_outcome(
                request, analysis, warm_start is not None, fallback
            )
            if retain:
                # compact=False: chaining snapshots skip the codec pass and
                # carry their live states pre-decoded — the next candidate
                # reads them back within milliseconds, and an encode per
                # scored candidate would cost more than chaining saves.
                self._snapshots.put(
                    snapshot_from_analysis(
                        request, program, analysis, result, compact=False
                    )
                )
                self._snapshots_stored += 1
            run_span.set(warm=warm)
        return result

    def ensure_snapshot(self, request: AnalysisRequest):
        """Resolve ``request`` guaranteeing a retained snapshot afterwards.

        Interactive loops call this on the *unpatched* program before
        scoring edits against it: a plain cached :meth:`run` hit replays
        the stored result without re-running the solver, which would
        leave nothing to warm-start from.  Returns the result (the cached
        copy when both the snapshot and the cached result already exist).
        """
        if not snapshot_eligible(request):
            raise ValueError(
                "snapshots require a speculative, unsharded request "
                f"(got {request.describe()})"
            )
        key = request.result_key()
        if key in self._snapshots:
            cached = self._lookup_result(request)
            if cached is not None:
                return _copy_result(cached, from_cache=True)
        self._requests += 1
        with span("engine.run", kind=request.kind.value, seed=True):
            program = self.compile(request)
            result, analysis = execute_retaining(request, program)
            self._store_result(request, result)
            self._snapshots.put(
                snapshot_from_analysis(request, program, analysis, result)
            )
            self._snapshots_stored += 1
        return _copy_result(result)

    def seed_program(self, request: AnalysisRequest, program: CompiledProgram) -> None:
        """Pre-populate the compile cache with an already-compiled program.

        ``program`` must be what :func:`compile_request` would produce for
        ``request`` — callers holding a compiled program use this so a
        subsequent batch over the same source skips the front end.
        """
        self._compile_cache.put(request.compile_key(), program)

    def run_batch(self, requests, max_workers: int | None = None) -> list:
        """Resolve many requests, optionally fanning out over a process
        pool; results come back in request order regardless of worker
        scheduling.  See :func:`repro.engine.batch.run_batch`."""
        from repro.engine.batch import run_batch

        return run_batch(self, requests, max_workers=max_workers)

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        store = self._result_store
        return EngineStats(
            compile=self._compile_cache.stats.snapshot(),
            results=self._result_cache.stats.snapshot(),
            requests=self._requests,
            batches=self._batches,
            parallel_batches=self._parallel_batches,
            store=store.stats.snapshot() if store is not None else None,
            incremental=IncrementalStats(
                enabled=self.incremental_enabled,
                warm_hits=self._warm_hits,
                cold_fallbacks=self._cold_fallbacks,
                snapshots_stored=self._snapshots_stored,
                seeded_slots=self._seeded_slots,
                invalidated_blocks=self._invalidated_blocks,
                snapshots=self._snapshots.stats,
                retained=len(self._snapshots),
            ),
        )

    def clear_caches(self) -> None:
        """Drop the in-memory tiers.  An attached result store is *not*
        cleared — surviving process restarts is its entire purpose."""
        self._compile_cache.clear()
        self._result_cache.clear()
        self._snapshots.clear()

    # ------------------------------------------------------------------
    # Second-tier (persistent) result store
    # ------------------------------------------------------------------
    @property
    def result_store(self) -> Any:
        return self._result_store

    def attach_result_store(self, store: Any) -> None:
        """Attach a persistent second cache tier behind the result LRU.

        ``store`` is duck-typed (``get(key)`` / ``put(key, value)`` /
        ``stats``) so the engine layer stays independent of
        :mod:`repro.service`; in practice it is a
        :class:`repro.service.store.ResultStore`.  Results found in the
        store are promoted into the LRU; fresh results are written
        through to both tiers.
        """
        self._result_store = store

    # ------------------------------------------------------------------
    # Internal hooks used by the batch executor
    # ------------------------------------------------------------------
    def _lookup_result(self, request: AnalysisRequest):
        """Two-tier result lookup: the in-memory LRU first, then the
        attached store (tier-2 hits are promoted into the LRU).  Returns
        the cached instance, not a copy; None on miss in both tiers."""
        key = request.result_key()
        cached = self._result_cache.get(key)
        if cached is not None:
            return cached
        if self._result_store is not None:
            stored = self._result_store.get(key)
            if stored is not None:
                self._result_cache.put(key, stored)
                return stored
        return None

    def _cached_result(self, request: AnalysisRequest):
        """Result lookup through both tiers (counts hits/misses); None on
        miss."""
        cached = self._lookup_result(request)
        return _copy_result(cached, from_cache=True) if cached is not None else None

    def _store_result(self, request: AnalysisRequest, result) -> None:
        key = request.result_key()
        self._result_cache.put(key, result)
        if self._result_store is not None:
            try:
                with span("store.write", key=key[:16]):
                    self._result_store.put(key, result)
            except OSError:
                # Tier 2 is best-effort: a full or read-only disk must
                # not fail a request whose result is already in hand.
                pass

    def _note_batch(self, parallel: bool, requests: int = 0) -> None:
        """``requests`` is passed by batch paths that bypass run() (which
        counts requests itself)."""
        self._batches += 1
        if parallel:
            self._parallel_batches += 1
        self._requests += requests

    def _note_parallel_work(
        self, compiles: int, compile_reuses: int, duplicate_hits: int
    ) -> None:
        """Mirror sequential accounting for work done outside run():
        logical compile misses/reuses performed by pool workers, and
        result-cache hits for in-batch duplicate requests."""
        self._compile_cache.stats.misses += compiles
        self._compile_cache.stats.hits += compile_reuses
        self._result_cache.stats.hits += duplicate_hits


def _copy_result(result, from_cache: bool = False):
    """Shallow-copy a result's mutable containers (their elements — abstract
    states, classifications — are immutable values), marking cache replays."""
    return replace(
        result,
        entry_states=dict(result.entry_states),
        classifications=list(result.classifications),
        from_cache=from_cache or result.from_cache,
    )


# ----------------------------------------------------------------------
# Process-wide default engine
# ----------------------------------------------------------------------
_default_engine: AnalysisEngine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> AnalysisEngine:
    """The process-wide engine shared by the applications and table
    generators when no explicit engine is passed."""
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = AnalysisEngine()
        return _default_engine
