"""The AnalysisEngine service layer.

One engine instance owns two LRU caches — compiled programs keyed by a
content hash of the source and front-end options, and analysis results
keyed by the full request — and resolves declarative
:class:`~repro.engine.request.AnalysisRequest` values through them.  All
applications (:mod:`repro.apps.wcet`, :mod:`repro.apps.sidechannel`) and
the table generators (:mod:`repro.bench.tables`) submit their work here,
so a batch that re-analyses the same program under several
configurations compiles it once, and repeated requests skip the front
end and the fixpoint entirely.

:func:`execute_request` is the cache-free core — a pure module-level
function so process-pool workers (see :mod:`repro.engine.batch`) can run
it by reference.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.frontend import CompiledProgram, compile_source
from repro.obs import span, stamp_for_request

#: Default capacity of the compile cache (compiled CFGs are the largest
#: objects the engine retains).
DEFAULT_COMPILE_CACHE_SIZE = 256

#: Default capacity of the result cache.
DEFAULT_RESULT_CACHE_SIZE = 1024


def compile_request(request: AnalysisRequest) -> CompiledProgram:
    """Run the front end for ``request`` (no caching)."""
    return compile_source(
        request.source,
        entry=request.entry,
        line_size=request.line_size,
        unroll=request.unroll,
        inline=request.inline,
        max_unroll_iterations=request.max_unroll_iterations,
    )


def execute_request(
    request: AnalysisRequest, program: CompiledProgram | None = None
):
    """Compile (unless ``program`` is given) and analyse one request.

    This is deterministic and side-effect free, so sequential execution,
    cached replay and process-pool fan-out all produce bit-identical
    classifications for the same request.  (The attached provenance stamp
    carries a wall-clock timestamp, but it is observational —
    ``compare=False``, excluded from fingerprints — so determinism of the
    *verdict* is unaffected.)
    """
    # Imported lazily: the analyses' fixpoint loops import the worklist
    # kernel from this package, so a module-level import would be circular.
    from repro.analysis.baseline import analyze_baseline
    from repro.analysis.speculative import analyze_speculative

    with span(
        "analyze", kind=request.kind.value, label=request.label
    ) as analyze_span:
        if program is None:
            program = compile_request(request)
        if request.kind is AnalysisKind.BASELINE:
            result = analyze_baseline(
                program,
                cache_config=request.cache_config,
                use_shadow_state=request.use_shadow_state,
            )
        else:
            result = analyze_speculative(
                program,
                cache_config=request.cache_config,
                speculation=request.speculation,
                scenario_shards=request.scenario_shards,
                shard_backend=request.shard_backend,
            )
        result.provenance = stamp_for_request(
            request, backend=result.shard_backend_used
        )
        analyze_span.set(
            result_key=request.result_key(), iterations=result.iterations
        )
    return result


@dataclass
class EngineStats:
    """Aggregate accounting for one engine instance."""

    compile: CacheStats = field(default_factory=CacheStats)
    results: CacheStats = field(default_factory=CacheStats)
    requests: int = 0
    batches: int = 0
    parallel_batches: int = 0
    #: Tier-2 (on-disk result store) statistics; None when no store is
    #: attached.  Duck-typed so the engine stays below the service layer.
    store: Any = None

    def __str__(self) -> str:
        lines = [
            f"engine: {self.requests} requests, {self.batches} batches "
            f"({self.parallel_batches} parallel)",
            f"  compile cache: {self.compile}",
            f"  result cache:  {self.results}",
        ]
        if self.store is not None:
            lines.append(f"  result store:  {self.store}")
        return "\n".join(lines)


class AnalysisEngine:
    """Resolve analysis requests through compile and result caches."""

    def __init__(
        self,
        compile_cache_size: int = DEFAULT_COMPILE_CACHE_SIZE,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_store: Any = None,
    ):
        self._compile_cache = LRUCache(maxsize=compile_cache_size)
        self._result_cache = LRUCache(maxsize=result_cache_size)
        self._result_store = result_store
        self._requests = 0
        self._batches = 0
        self._parallel_batches = 0

    # ------------------------------------------------------------------
    # Single-request API
    # ------------------------------------------------------------------
    def compile(self, request: AnalysisRequest) -> CompiledProgram:
        """Return the compiled program for ``request``, caching by the
        content hash of the source and front-end options."""
        return self._compile_cache.get_or_compute(
            request.compile_key(), lambda: compile_request(request)
        )

    def run(
        self, request: AnalysisRequest, program: CompiledProgram | None = None
    ):
        """Resolve one request to a :class:`CacheAnalysisResult`.

        ``program`` optionally supplies an already-compiled program for
        this request's source (it must match; callers that hold one avoid
        the compile-cache round trip).  The returned result is a copy —
        mutating it never corrupts the cache — and cache hits are marked
        ``from_cache`` (their ``analysis_time`` reports the original
        computation, not the lookup).
        """
        self._requests += 1
        with span("engine.run", kind=request.kind.value) as run_span:
            cached = self._lookup_result(request)
            if cached is not None:
                run_span.set(cache_hit=True)
                return _copy_result(cached, from_cache=True)
            result = execute_request(
                request, program=program or self.compile(request)
            )
            self._store_result(request, result)
            run_span.set(cache_hit=False)
        return _copy_result(result)

    def seed_program(self, request: AnalysisRequest, program: CompiledProgram) -> None:
        """Pre-populate the compile cache with an already-compiled program.

        ``program`` must be what :func:`compile_request` would produce for
        ``request`` — callers holding a compiled program use this so a
        subsequent batch over the same source skips the front end.
        """
        self._compile_cache.put(request.compile_key(), program)

    def run_batch(self, requests, max_workers: int | None = None) -> list:
        """Resolve many requests, optionally fanning out over a process
        pool; results come back in request order regardless of worker
        scheduling.  See :func:`repro.engine.batch.run_batch`."""
        from repro.engine.batch import run_batch

        return run_batch(self, requests, max_workers=max_workers)

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        store = self._result_store
        return EngineStats(
            compile=self._compile_cache.stats.snapshot(),
            results=self._result_cache.stats.snapshot(),
            requests=self._requests,
            batches=self._batches,
            parallel_batches=self._parallel_batches,
            store=store.stats.snapshot() if store is not None else None,
        )

    def clear_caches(self) -> None:
        """Drop the in-memory tiers.  An attached result store is *not*
        cleared — surviving process restarts is its entire purpose."""
        self._compile_cache.clear()
        self._result_cache.clear()

    # ------------------------------------------------------------------
    # Second-tier (persistent) result store
    # ------------------------------------------------------------------
    @property
    def result_store(self) -> Any:
        return self._result_store

    def attach_result_store(self, store: Any) -> None:
        """Attach a persistent second cache tier behind the result LRU.

        ``store`` is duck-typed (``get(key)`` / ``put(key, value)`` /
        ``stats``) so the engine layer stays independent of
        :mod:`repro.service`; in practice it is a
        :class:`repro.service.store.ResultStore`.  Results found in the
        store are promoted into the LRU; fresh results are written
        through to both tiers.
        """
        self._result_store = store

    # ------------------------------------------------------------------
    # Internal hooks used by the batch executor
    # ------------------------------------------------------------------
    def _lookup_result(self, request: AnalysisRequest):
        """Two-tier result lookup: the in-memory LRU first, then the
        attached store (tier-2 hits are promoted into the LRU).  Returns
        the cached instance, not a copy; None on miss in both tiers."""
        key = request.result_key()
        cached = self._result_cache.get(key)
        if cached is not None:
            return cached
        if self._result_store is not None:
            stored = self._result_store.get(key)
            if stored is not None:
                self._result_cache.put(key, stored)
                return stored
        return None

    def _cached_result(self, request: AnalysisRequest):
        """Result lookup through both tiers (counts hits/misses); None on
        miss."""
        cached = self._lookup_result(request)
        return _copy_result(cached, from_cache=True) if cached is not None else None

    def _store_result(self, request: AnalysisRequest, result) -> None:
        key = request.result_key()
        self._result_cache.put(key, result)
        if self._result_store is not None:
            try:
                with span("store.write", key=key[:16]):
                    self._result_store.put(key, result)
            except OSError:
                # Tier 2 is best-effort: a full or read-only disk must
                # not fail a request whose result is already in hand.
                pass

    def _note_batch(self, parallel: bool, requests: int = 0) -> None:
        """``requests`` is passed by batch paths that bypass run() (which
        counts requests itself)."""
        self._batches += 1
        if parallel:
            self._parallel_batches += 1
        self._requests += requests

    def _note_parallel_work(
        self, compiles: int, compile_reuses: int, duplicate_hits: int
    ) -> None:
        """Mirror sequential accounting for work done outside run():
        logical compile misses/reuses performed by pool workers, and
        result-cache hits for in-batch duplicate requests."""
        self._compile_cache.stats.misses += compiles
        self._compile_cache.stats.hits += compile_reuses
        self._result_cache.stats.hits += duplicate_hits


def _copy_result(result, from_cache: bool = False):
    """Shallow-copy a result's mutable containers (their elements — abstract
    states, classifications — are immutable values), marking cache replays."""
    return replace(
        result,
        entry_states=dict(result.entry_states),
        classifications=list(result.classifications),
        from_cache=from_cache or result.from_cache,
    )


# ----------------------------------------------------------------------
# Process-wide default engine
# ----------------------------------------------------------------------
_default_engine: AnalysisEngine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> AnalysisEngine:
    """The process-wide engine shared by the applications and table
    generators when no explicit engine is passed."""
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = AnalysisEngine()
        return _default_engine
