"""Common exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing front-end errors (bad MiniC source) from analysis
configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SourceError(ReproError):
    """An error attributable to the MiniC source program.

    Carries an optional source location so tools can point at the
    offending token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class LexerError(SourceError):
    """Raised when the lexer encounters an unrecognised character."""


class ParseError(SourceError):
    """Raised when the parser encounters an unexpected token."""


class TypeError_(SourceError):
    """Raised by the type checker (named with a trailing underscore to
    avoid shadowing the builtin)."""


class LoweringError(ReproError):
    """Raised when the AST-to-IR lowering encounters an unsupported form."""


class CFGError(ReproError):
    """Raised for malformed control-flow graphs."""


class VerificationError(ReproError):
    """Raised when the IR verifier finds lint-level defects and the caller
    asked for them to be fatal (debug-mode verification before analyses).

    ``findings`` carries the structured :class:`repro.ir.verify.LintFinding`
    values behind the rendered message.
    """

    def __init__(self, message: str, findings: tuple = ()):
        self.findings = tuple(findings)
        super().__init__(message)


class AnalysisError(ReproError):
    """Raised when an analysis is configured or driven incorrectly."""


class SimulationError(ReproError):
    """Raised by the concrete interpreter / speculative simulator."""


class ConfigError(ReproError):
    """Raised for invalid cache or speculation configuration values."""
