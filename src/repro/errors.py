"""Common exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing front-end errors (bad MiniC source) from analysis
configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SourceError(ReproError):
    """An error attributable to the MiniC source program.

    Carries an optional source location so tools can point at the
    offending token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class LexerError(SourceError):
    """Raised when the lexer encounters an unrecognised character."""


class ParseError(SourceError):
    """Raised when the parser encounters an unexpected token."""


class TypeError_(SourceError):
    """Raised by the type checker (named with a trailing underscore to
    avoid shadowing the builtin)."""


class LoweringError(ReproError):
    """Raised when the AST-to-IR lowering encounters an unsupported form."""


class CFGError(ReproError):
    """Raised for malformed control-flow graphs."""


class AnalysisError(ReproError):
    """Raised when an analysis is configured or driven incorrectly."""


class SimulationError(ReproError):
    """Raised by the concrete interpreter / speculative simulator."""


class ConfigError(ReproError):
    """Raised for invalid cache or speculation configuration values."""
