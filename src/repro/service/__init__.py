"""Analysis-as-a-service: persistence, scheduling, and the daemon.

This package turns the synchronous :class:`~repro.engine.engine.AnalysisEngine`
into a long-running service with durable caching:

* :mod:`repro.service.store` — a sharded, content-addressed on-disk
  result store (atomic writes, versioned headers, corruption-tolerant
  reads) that backs the engine's result LRU as a second cache tier;
* :mod:`repro.service.scheduler` — an async job scheduler with priority
  queues, in-flight request coalescing, and bounded concurrency over
  ``engine.run_batch``;
* :mod:`repro.service.wire` — the line-delimited-JSON wire encoding of
  requests and results, plus the semantic result fingerprint;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  socket daemon and its Python client;
* :mod:`repro.service.cli` — the ``repro`` command-line entry point
  (``serve`` / ``submit`` / ``wcet`` / ``sidechannel`` / ``mitigate`` /
  ``stats`` / ``top`` / ``trace``).

The service edge is fully observable: every job keeps a lifecycle +
progress event log (streamed by the daemon's ``watch`` RPC and the
``events`` op), the scheduler feeds per-priority queue-depth gauges and
queue-wait/execute/end-to-end latency histograms into the process-wide
metrics registry (exposed by the ``metrics`` RPC and ``repro stats
--prom`` in Prometheus text format), and jobs that breach a
configurable end-to-end threshold land in a bounded slow-job log.

Layering: ``engine`` knows nothing about this package (the store plugs
into it duck-typed); the applications under :mod:`repro.apps` work
unchanged against a local engine or, through the CLI, as thin service
clients.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import (
    Job,
    JobPriority,
    JobScheduler,
    JobState,
    SchedulerStats,
)
from repro.service.server import DEFAULT_PORT, ReproServer
from repro.service.store import STORE_FORMAT_VERSION, ResultStore, StoreStats
from repro.service.wire import (
    request_from_wire,
    request_to_wire,
    result_fingerprint,
    result_to_wire,
)

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobPriority",
    "JobScheduler",
    "JobState",
    "ReproServer",
    "ResultStore",
    "STORE_FORMAT_VERSION",
    "SchedulerStats",
    "ServiceClient",
    "ServiceError",
    "StoreStats",
    "request_from_wire",
    "request_to_wire",
    "result_fingerprint",
    "result_to_wire",
]
