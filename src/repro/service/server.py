"""The analysis daemon: a line-delimited-JSON socket server.

One :class:`ReproServer` owns an :class:`~repro.engine.engine.AnalysisEngine`
(optionally backed by an on-disk :class:`~repro.service.store.ResultStore`)
and a :class:`~repro.service.scheduler.JobScheduler`, and exposes them
over a TCP socket on localhost.  The protocol is deliberately minimal —
one JSON object per line in each direction — so any language with a
socket and a JSON parser is a client:

======== ============================================= =========================
op       request fields                                response fields
======== ============================================= =========================
ping     —                                             ``pong`` (server time)
submit   ``request`` (wire form), ``priority``         ``job_id``, ``coalesced``
status   ``job_id``                                    ``job`` (status dict)
result   ``job_id``, ``timeout`` (seconds, optional)   ``job``, ``result``
analyze  ``request``, ``priority``, ``timeout``        submit + wait in one call
mitigate ``request``, ``optimize``                     ``mitigation`` (wire form)
stats    —                                             engine/scheduler/store/metrics
metrics  —                                             ``metrics`` (registry snapshot)
events   ``job_id``                                    ``events`` (lifecycle log), ``job``
top      ``limit``                                     ``top`` (queue/worker/job view)
watch    ``job_id``, ``heartbeat``, ``timeout``        *streaming* (see below)
trace    ``job_id``                                    ``spans`` (completed span dicts)
shutdown —                                             acknowledgement
======== ============================================= =========================

``watch`` is the one streaming op: instead of a single response line the
server tails the job's event log, writing one ``{"ok": true, "event":
...}`` line per lifecycle/progress event, an ``{"ok": true,
"heartbeat": ...}`` line whenever ``heartbeat`` seconds pass without an
event (so clients can distinguish "quiet" from "dead"), and finally one
``{"ok": true, "done": true, "job": ...}`` line when the job reaches a
terminal state.  The connection stays usable for further requests
afterwards.

The server keeps a bounded in-memory :class:`~repro.obs.SpanBuffer`
attached to the process tracer, so the ``trace`` op can return the span
tree of any recently executed job (matched through the scheduler
dispatch span's ``job_ids`` attribute) without any trace file being
configured.

``mitigate`` runs the full detect → repair → re-verify synthesis of
:mod:`repro.mitigation` on the server's engine (so all intermediate
analyses hit the shared caches) and memoises whole results — in memory
and, when a store is attached, in the tier-2 store keyed by the
program + configuration hash (:func:`repro.mitigation.mitigation_key`).

Every response carries ``"ok": true`` or ``"ok": false`` plus
``"error"``; protocol errors never kill the connection, and a broken
connection never kills the daemon.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.engine.cache import LRUCache
from repro.engine.engine import AnalysisEngine
from repro.mitigation import mitigation_key, synthesize_mitigation
from repro.obs import SpanBuffer, metrics, tracer
from repro.service.scheduler import JobScheduler, JobState
from repro.service.store import ResultStore
from repro.service.wire import (
    WireError,
    request_from_wire,
    result_fingerprint,
    result_to_wire,
)

#: Default TCP port of the daemon (an unassigned registered port).
DEFAULT_PORT = 7351

#: Default bound on how long a blocking ``result``/``analyze`` call may
#: wait server-side before reporting a timeout to the client.
DEFAULT_RESULT_TIMEOUT = 300.0


class ReproServer:
    """Serve analysis requests over a localhost socket."""

    def __init__(
        self,
        engine: AnalysisEngine | None = None,
        store_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 2,
        batch_size: int = 8,
        slow_job_seconds: float | None = None,
        incremental: bool | None = None,
    ):
        # ``incremental=None`` defers to REPRO_INCREMENTAL per run, so a
        # daemon started without the flag still follows the environment.
        self.engine = (
            engine if engine is not None else AnalysisEngine(incremental=incremental)
        )
        if store_dir is not None and self.engine.result_store is None:
            self.engine.attach_result_store(ResultStore(store_dir))
        self.scheduler = JobScheduler(
            self.engine,
            max_workers=max_workers,
            batch_size=batch_size,
            slow_job_seconds=slow_job_seconds,
        )
        self._mitigations = LRUCache(maxsize=64)
        # Mitigation synthesis runs on the connection thread (it is a
        # multi-request *driver*, not a unit of scheduler work), so bound
        # and coalesce it explicitly: at most max_workers concurrent
        # syntheses, and one per key — duplicates wait, then hit the cache.
        self._mitigation_gate = threading.BoundedSemaphore(max(1, max_workers))
        self._mitigation_locks: dict[str, threading.Lock] = {}
        self._mitigation_locks_mutex = threading.Lock()
        # Completed spans of recent dispatches, served by the ``trace``
        # op.  The buffer is a plain tracer sink — attaching it also
        # *enables* tracing for this process, which is the point: a
        # daemon is observable by default.
        self.trace_buffer = SpanBuffer()
        tracer().add_sink(self.trace_buffer)
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []
        self._listener = socket.create_server((host, port), reuse_port=False)
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` is called (one thread
        per connection; analyses run on the scheduler's workers, so slow
        clients never block the queue)."""
        try:
            while not self._stopping.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                # Daemon threads, deliberately not retained: a long-lived
                # server handles unbounded short connections and must not
                # accumulate dead Thread objects.
                threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                ).start()
        finally:
            self._listener.close()
            self.scheduler.shutdown(wait=True, timeout=30.0)

    def start(self) -> "ReproServer":
        """Run :meth:`serve_forever` on a background thread (for tests
        and embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-server", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._stopping.set()
        tracer().remove_sink(self.trace_buffer)
        try:
            self._listener.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            reader = conn.makefile("rb")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                message: dict = {}
                try:
                    parsed = json.loads(line)
                    if not isinstance(parsed, dict):
                        raise WireError("protocol messages must be JSON objects")
                    message = parsed
                    if message.get("op") == "watch":
                        # The one streaming op: writes its own response
                        # lines (events, heartbeats, terminal line) and
                        # leaves the connection usable afterwards.
                        try:
                            self._stream_watch(message, conn)
                        except OSError:
                            return
                        continue
                    response = self._dispatch(message)
                except WireError as error:
                    response = {"ok": False, "error": str(error)}
                except json.JSONDecodeError as error:
                    response = {"ok": False, "error": f"malformed JSON: {error}"}
                except Exception as error:  # noqa: BLE001 — daemon must survive
                    response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
                try:
                    conn.sendall(json.dumps(response).encode("utf-8") + b"\n")
                except OSError:
                    return
                if message.get("op") == "shutdown" and response.get("ok"):
                    self.stop()
                    return

    @staticmethod
    def _send_line(conn: socket.socket, payload: dict) -> None:
        conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def _stream_watch(self, message: dict, conn: socket.socket) -> None:
        """The ``watch`` op: tail a job's event log over the wire.

        Streams every lifecycle/progress event as its own response line,
        emits a heartbeat line whenever ``heartbeat`` seconds pass
        without one, and closes the stream with a terminal ``done`` line
        (or an ``ok: false`` line on timeout / unknown job).  A
        coalesced job's own ``queued``/``coalesced`` events are sent
        first, then the primary's log is followed — execution events
        live there.
        """
        job = self.scheduler.job(str(message.get("job_id")))
        if job is None:
            self._send_line(
                conn,
                {"ok": False, "error": f"unknown job {message.get('job_id')!r}"},
            )
            return
        heartbeat = max(0.05, float(message.get("heartbeat") or 2.0))
        deadline = time.monotonic() + float(
            message.get("timeout") or DEFAULT_RESULT_TIMEOUT
        )
        source = job.primary or job
        if job.primary is not None:
            for event in job.events.snapshot():
                self._send_line(conn, {"ok": True, "event": event})
        cursor = 0
        while True:
            fresh = source.events.wait_since(cursor, timeout=heartbeat)
            for event in fresh:
                cursor = max(cursor, event["seq"])
                self._send_line(conn, {"ok": True, "event": event})
            if job.done and source.events.last_seq <= cursor:
                self._send_line(conn, {"ok": True, "done": True, "job": job.status()})
                return
            if not fresh:
                if time.monotonic() >= deadline:
                    self._send_line(
                        conn,
                        {
                            "ok": False,
                            "error": f"watch of job {job.id} timed out",
                            "job": job.status(),
                        },
                    )
                    return
                self._send_line(
                    conn, {"ok": True, "heartbeat": time.time(), "job_id": job.id}
                )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _dispatch(self, message: dict) -> dict:
        op = message.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None or not op or op.startswith("_"):
            return {"ok": False, "error": f"unknown op {op!r}"}
        return handler(message)

    def _op_ping(self, message: dict) -> dict:
        return {"ok": True, "pong": time.time()}

    def _op_submit(self, message: dict) -> dict:
        request = request_from_wire(message.get("request") or {})
        job = self.scheduler.submit(request, priority=message.get("priority"))
        return {"ok": True, "job_id": job.id, "coalesced": job.coalesced}

    def _op_status(self, message: dict) -> dict:
        job = self.scheduler.job(str(message.get("job_id")))
        if job is None:
            return {"ok": False, "error": f"unknown job {message.get('job_id')!r}"}
        return {"ok": True, "job": job.status()}

    def _op_result(self, message: dict) -> dict:
        job = self.scheduler.job(str(message.get("job_id")))
        if job is None:
            return {"ok": False, "error": f"unknown job {message.get('job_id')!r}"}
        return self._await_result(job, message)

    def _op_analyze(self, message: dict) -> dict:
        """Submit + blocking result in one round trip."""
        request = request_from_wire(message.get("request") or {})
        job = self.scheduler.submit(request, priority=message.get("priority"))
        response = self._await_result(job, message)
        response.setdefault("job_id", job.id)
        return response

    def _await_result(self, job, message: dict) -> dict:
        timeout = float(message.get("timeout") or DEFAULT_RESULT_TIMEOUT)
        if not job.wait(timeout=timeout):
            return {"ok": False, "error": f"job {job.id} still {job.state.value}",
                    "job": job.status()}
        if job.state is JobState.FAILED:
            return {"ok": False, "error": job.status()["error"], "job": job.status()}
        if job.state is JobState.CANCELLED:
            return {"ok": False, "error": f"job {job.id} was cancelled",
                    "job": job.status()}
        result = job.result()
        wire = result_to_wire(result)
        return {
            "ok": True,
            "job": job.status(),
            "result": wire,
            "fingerprint": result_fingerprint(wire),
        }

    def _op_mitigate(self, message: dict) -> dict:
        """Synthesise (or replay) a verified fence placement."""
        request = request_from_wire(message.get("request") or {})
        optimize = bool(message.get("optimize", True))
        key = mitigation_key(request, optimize)
        result = self._lookup_mitigation(key)
        from_cache = True
        if result is None:
            try:
                with self._mitigation_lock(key):
                    # Identical concurrent requests coalesce here: the first
                    # holder synthesises, the rest find its cached result.
                    result = self._lookup_mitigation(key)
                    if result is None:
                        from_cache = False
                        with self._mitigation_gate:
                            result = synthesize_mitigation(
                                request, engine=self.engine, optimize=optimize
                            )
                        self._mitigations.put(key, result)
                        if self.engine.result_store is not None:
                            try:
                                self.engine.result_store.put(key, result)
                            except OSError:
                                pass  # tier 2 is best-effort, as in the engine
            finally:
                # Drop the per-key lock so the dict stays bounded (late
                # waiters keep their reference and will hit the cache).
                with self._mitigation_locks_mutex:
                    self._mitigation_locks.pop(key, None)
        wire = result.to_wire()
        wire["from_cache"] = from_cache
        if from_cache:
            # The key deliberately excludes the label (identical programs
            # coalesce), so a replay must never leak the first requester's
            # label back as this result's name — even to label-less callers.
            wire["name"] = request.label or request.entry or "<program>"
        return {"ok": True, "mitigation": wire}

    def _lookup_mitigation(self, key: str):
        result = self._mitigations.get(key)
        if result is None and self.engine.result_store is not None:
            result = self.engine.result_store.get(key)
            if result is not None:
                self._mitigations.put(key, result)
        return result

    def _mitigation_lock(self, key: str) -> threading.Lock:
        with self._mitigation_locks_mutex:
            return self._mitigation_locks.setdefault(key, threading.Lock())

    def _op_stats(self, message: dict) -> dict:
        engine_stats = self.engine.stats
        payload = {
            "requests": engine_stats.requests,
            "batches": engine_stats.batches,
            "parallel_batches": engine_stats.parallel_batches,
            "compile_cache": vars(engine_stats.compile),
            "result_cache": vars(engine_stats.results),
            "result_store": (
                None if engine_stats.store is None else vars(engine_stats.store)
            ),
            "scheduler": vars(self.scheduler.stats),
            "incremental": engine_stats.incremental.to_wire(),
            "slow_jobs": self.scheduler.slow_jobs(),
            # Process-wide registry: pool.*, store.*, fixpoint.*, codec.*
            # counters from every subsystem that ran in this daemon.
            "metrics": metrics().snapshot(),
        }
        return {"ok": True, "stats": payload}

    def _op_metrics(self, message: dict) -> dict:
        """The full metrics-registry snapshot (for ``repro stats --prom``
        and scrapers; pure data — rendering happens client-side)."""
        return {"ok": True, "metrics": metrics().snapshot()}

    def _op_events(self, message: dict) -> dict:
        """A job's recorded lifecycle + progress events.  For a
        coalesced job: its own events followed by its primary's (each
        event carries ``job_id``, so the split is recoverable)."""
        job = self.scheduler.job(str(message.get("job_id")))
        if job is None:
            return {"ok": False, "error": f"unknown job {message.get('job_id')!r}"}
        events = job.events.snapshot()
        if job.primary is not None:
            events += job.primary.events.snapshot()
        return {"ok": True, "events": events, "job": job.status()}

    def _op_top(self, message: dict) -> dict:
        """One frame of the live queue/worker view (``repro top``)."""
        stats = self.scheduler.stats
        limit = int(message.get("limit") or 32)
        registry_snapshot = metrics().snapshot()
        return {
            "ok": True,
            "top": {
                "time": time.time(),
                "max_workers": self.scheduler.max_workers,
                "slow_job_seconds": self.scheduler.slow_job_seconds,
                "scheduler": vars(stats),
                "incremental": self.engine.stats.incremental.to_wire(),
                "slow_jobs": self.scheduler.slow_jobs(),
                "jobs": self.scheduler.recent_jobs(limit),
                # Only the scheduler's own latency/depth instruments:
                # the full registry is the ``metrics`` op's job.
                "metrics": {
                    name: payload
                    for name, payload in registry_snapshot.items()
                    if name.startswith("scheduler.")
                },
            },
        }

    def _op_trace(self, message: dict) -> dict:
        """Completed spans of the dispatch that executed ``job_id``."""
        job_id = str(message.get("job_id"))
        if self.scheduler.job(job_id) is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        return {"ok": True, "spans": self.trace_buffer.trace_for_job(job_id)}

    def _op_shutdown(self, message: dict) -> dict:
        return {"ok": True, "stopping": True}
