"""Python client for the analysis daemon.

A :class:`ServiceClient` holds one persistent connection to a
:class:`~repro.service.server.ReproServer` and wraps each protocol op in
a method.  The transport is one JSON object per line in each direction,
so every method is a single ``sendall`` + ``readline`` round trip; the
client is intentionally dependency-free (``socket`` + ``json``).

Typical use::

    with ServiceClient(port=7351) as client:
        job_id = client.submit(AnalysisRequest.speculative(source))
        report = client.result(job_id)          # blocks until done
        print(report["must_hits"], report["misses"])
"""

from __future__ import annotations

import json
import socket
import threading

from repro.engine.request import AnalysisRequest
from repro.service.server import DEFAULT_PORT, DEFAULT_RESULT_TIMEOUT
from repro.service.wire import request_to_wire


class ServiceError(RuntimeError):
    """An error reported by the daemon (``"ok": false``) or a transport
    failure."""


class ServiceClient:
    """One connection to a running analysis daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = DEFAULT_RESULT_TIMEOUT + 30.0,
    ):
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ServiceError(
                f"cannot reach analysis daemon at {host}:{port} "
                f"({error}); start one with 'repro serve'"
            ) from error
        self._reader = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._broken = False
        #: Job id of the most recent :meth:`analyze` round trip.
        self.last_job_id: str | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def call(self, op: str, **fields) -> dict:
        """One protocol round trip; returns the response payload or
        raises :class:`ServiceError`."""
        message = {"op": op, **fields}
        with self._lock:
            if self._broken:
                raise ServiceError(
                    "connection is desynchronized after an earlier transport "
                    "error; open a new ServiceClient"
                )
            try:
                self._sock.sendall(json.dumps(message).encode("utf-8") + b"\n")
                line = self._reader.readline()
            except OSError as error:
                # A timed-out or interrupted round trip leaves a response
                # in flight; any further use would read the wrong reply,
                # so poison the connection instead.
                self._broken = True
                self.close()
                raise ServiceError(f"connection to daemon lost: {error}") from error
        if not line:
            raise ServiceError("daemon closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceError(f"malformed response from daemon: {error}") from error
        if not isinstance(response, dict) or not response.get("ok"):
            detail = response.get("error") if isinstance(response, dict) else response
            raise ServiceError(str(detail or "daemon reported an unknown error"))
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol ops
    # ------------------------------------------------------------------
    def ping(self) -> float:
        return float(self.call("ping")["pong"])

    def submit(self, request: AnalysisRequest, priority: str | None = None) -> str:
        """Queue ``request``; returns the job id immediately."""
        response = self.call(
            "submit", request=request_to_wire(request), priority=priority
        )
        return response["job_id"]

    def status(self, job_id: str) -> dict:
        return self.call("status", job_id=job_id)["job"]

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until ``job_id`` finishes; returns the wire-form result."""
        return self.call("result", job_id=job_id, timeout=timeout)["result"]

    def analyze(
        self,
        request: AnalysisRequest,
        priority: str | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Submit + wait in one round trip; returns the wire-form result.

        The id of the job that served the call is kept in
        :attr:`last_job_id` (for ``repro trace``).
        """
        response = self.call(
            "analyze",
            request=request_to_wire(request),
            priority=priority,
            timeout=timeout,
        )
        self.last_job_id = response.get("job_id")
        return response["result"]

    def mitigate(self, request: AnalysisRequest, optimize: bool = True) -> dict:
        """Synthesise a verified fence placement for ``request`` on the
        daemon; returns the wire-form :class:`~repro.mitigation.
        MitigationResult` (replayed from the daemon's caches when the
        same program + configuration was mitigated before)."""
        response = self.call(
            "mitigate", request=request_to_wire(request), optimize=optimize
        )
        return response["mitigation"]

    def stats(self) -> dict:
        return self.call("stats")["stats"]

    def trace(self, job_id: str) -> list[dict]:
        """Completed spans of the dispatch that executed ``job_id``
        (empty when the daemon's span buffer has already recycled them)."""
        return self.call("trace", job_id=job_id)["spans"]

    def shutdown(self) -> None:
        self.call("shutdown")
