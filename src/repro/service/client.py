"""Python client for the analysis daemon.

A :class:`ServiceClient` holds one persistent connection to a
:class:`~repro.service.server.ReproServer` and wraps each protocol op in
a method.  The transport is one JSON object per line in each direction,
so every method is a single ``sendall`` + ``readline`` round trip; the
client is intentionally dependency-free (``socket`` + ``json``).

Typical use::

    with ServiceClient(port=7351) as client:
        job_id = client.submit(AnalysisRequest.speculative(source))
        report = client.result(job_id)          # blocks until done
        print(report["must_hits"], report["misses"])
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Callable

from repro.engine.request import AnalysisRequest
from repro.service.server import DEFAULT_PORT, DEFAULT_RESULT_TIMEOUT
from repro.service.wire import request_to_wire

#: Default bound on one connection attempt; a dead daemon fails fast
#: instead of hanging the client for the full result timeout.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Extra connection attempts after the first (3 attempts total), with
#: exponential backoff between them — rides out a daemon mid-restart.
DEFAULT_CONNECT_RETRIES = 2

#: Backoff before the first retry, doubling per attempt.
DEFAULT_CONNECT_BACKOFF = 0.25


class ServiceError(RuntimeError):
    """An error reported by the daemon (``"ok": false``) or a transport
    failure."""


class ServiceClient:
    """One connection to a running analysis daemon.

    ``timeout`` bounds each round trip once connected; ``connect_timeout``
    bounds each connection attempt (so a dead or unreachable daemon
    surfaces within seconds, never the full result timeout), with
    ``connect_retries`` extra attempts separated by exponential backoff
    starting at ``connect_backoff`` seconds.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = DEFAULT_RESULT_TIMEOUT + 30.0,
        connect_timeout: float | None = None,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
        connect_backoff: float = DEFAULT_CONNECT_BACKOFF,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        if connect_timeout is None:
            connect_timeout = min(timeout, DEFAULT_CONNECT_TIMEOUT)
        attempts = 1 + max(0, int(connect_retries))
        last_error: OSError | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(connect_backoff * (2 ** (attempt - 1)))
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=connect_timeout
                )
                break
            except OSError as error:
                last_error = error
        else:
            raise ServiceError(
                f"cannot reach analysis daemon at {host}:{port} after "
                f"{attempts} attempt(s) ({last_error}); start one with "
                f"'repro serve'"
            ) from last_error
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._broken = False
        #: Job id of the most recent :meth:`analyze` round trip.
        self.last_job_id: str | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def call(self, op: str, **fields) -> dict:
        """One protocol round trip; returns the response payload or
        raises :class:`ServiceError`."""
        message = {"op": op, **fields}
        with self._lock:
            if self._broken:
                raise ServiceError(
                    "connection is desynchronized after an earlier transport "
                    "error; open a new ServiceClient"
                )
            try:
                self._sock.sendall(json.dumps(message).encode("utf-8") + b"\n")
                line = self._reader.readline()
            except OSError as error:
                # A timed-out or interrupted round trip leaves a response
                # in flight; any further use would read the wrong reply,
                # so poison the connection instead.
                self._broken = True
                self.close()
                raise ServiceError(f"connection to daemon lost: {error}") from error
        if not line:
            raise ServiceError("daemon closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceError(f"malformed response from daemon: {error}") from error
        if not isinstance(response, dict) or not response.get("ok"):
            detail = response.get("error") if isinstance(response, dict) else response
            raise ServiceError(str(detail or "daemon reported an unknown error"))
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol ops
    # ------------------------------------------------------------------
    def ping(self) -> float:
        return float(self.call("ping")["pong"])

    def submit(self, request: AnalysisRequest, priority: str | None = None) -> str:
        """Queue ``request``; returns the job id immediately."""
        response = self.call(
            "submit", request=request_to_wire(request), priority=priority
        )
        return response["job_id"]

    def status(self, job_id: str) -> dict:
        return self.call("status", job_id=job_id)["job"]

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until ``job_id`` finishes; returns the wire-form result."""
        return self.call("result", job_id=job_id, timeout=timeout)["result"]

    def analyze(
        self,
        request: AnalysisRequest,
        priority: str | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Submit + wait in one round trip; returns the wire-form result.

        The id of the job that served the call is kept in
        :attr:`last_job_id` (for ``repro trace``).
        """
        response = self.call(
            "analyze",
            request=request_to_wire(request),
            priority=priority,
            timeout=timeout,
        )
        self.last_job_id = response.get("job_id")
        return response["result"]

    def mitigate(self, request: AnalysisRequest, optimize: bool = True) -> dict:
        """Synthesise a verified fence placement for ``request`` on the
        daemon; returns the wire-form :class:`~repro.mitigation.
        MitigationResult` (replayed from the daemon's caches when the
        same program + configuration was mitigated before)."""
        response = self.call(
            "mitigate", request=request_to_wire(request), optimize=optimize
        )
        return response["mitigation"]

    def stats(self) -> dict:
        return self.call("stats")["stats"]

    def metrics(self) -> dict:
        """The daemon's full metrics-registry snapshot
        (``{name: payload}``; render with
        :func:`repro.obs.render_prometheus` for scrapers)."""
        return self.call("metrics")["metrics"]

    def events(self, job_id: str) -> list[dict]:
        """A job's recorded lifecycle + progress events (a coalesced
        job's own events followed by its primary's)."""
        return self.call("events", job_id=job_id)["events"]

    def top(self, limit: int = 32) -> dict:
        """One frame of the daemon's live queue/worker view."""
        return self.call("top", limit=limit)["top"]

    def watch(
        self,
        job_id: str,
        on_event: Callable[[dict], None] | None = None,
        timeout: float | None = None,
        heartbeat: float = 2.0,
    ) -> dict:
        """Stream ``job_id``'s lifecycle + progress events until it
        reaches a terminal state; returns the final status dict.

        ``on_event`` is invoked once per streamed event (heartbeat lines
        are consumed silently — they only prove the daemon is alive).
        The socket timeout is tightened to a few heartbeat intervals for
        the duration of the stream, so a daemon that dies mid-watch
        surfaces as an error within seconds.
        """
        message = {
            "op": "watch",
            "job_id": job_id,
            "timeout": timeout,
            "heartbeat": heartbeat,
        }
        with self._lock:
            if self._broken:
                raise ServiceError(
                    "connection is desynchronized after an earlier transport "
                    "error; open a new ServiceClient"
                )
            previous_timeout = self._sock.gettimeout()
            completed = False
            try:
                self._sock.settimeout(max(heartbeat * 5, 10.0))
                self._sock.sendall(json.dumps(message).encode("utf-8") + b"\n")
                while True:
                    line = self._reader.readline()
                    if not line:
                        raise ServiceError("daemon closed the connection mid-watch")
                    try:
                        response = json.loads(line)
                    except json.JSONDecodeError as error:
                        raise ServiceError(
                            f"malformed response from daemon: {error}"
                        ) from error
                    if not isinstance(response, dict) or not response.get("ok"):
                        # A terminal error line: the stream is over and
                        # the connection stays in sync.
                        completed = True
                        detail = (
                            response.get("error")
                            if isinstance(response, dict)
                            else response
                        )
                        raise ServiceError(
                            str(detail or "daemon reported an unknown error")
                        )
                    if response.get("done"):
                        completed = True
                        return response["job"]
                    event = response.get("event")
                    if event is not None and on_event is not None:
                        on_event(event)
            except OSError as error:
                raise ServiceError(
                    f"connection to daemon lost mid-watch: {error}"
                ) from error
            finally:
                if not completed:
                    # Interrupted mid-stream (transport error, timeout,
                    # or an on_event exception): unread stream lines are
                    # still in flight, so poison the connection.
                    self._broken = True
                    self.close()
                elif not self._broken:
                    self._sock.settimeout(previous_timeout)

    def trace(self, job_id: str) -> list[dict]:
        """Completed spans of the dispatch that executed ``job_id``
        (empty when the daemon's span buffer has already recycled them)."""
        return self.call("trace", job_id=job_id)["spans"]

    def shutdown(self) -> None:
        self.call("shutdown")
