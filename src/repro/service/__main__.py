"""``python -m repro.service`` — the ``repro`` CLI without installation."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
