"""Asynchronous job scheduling in front of the analysis engine.

The scheduler turns the synchronous :class:`~repro.engine.engine.AnalysisEngine`
into a multi-client service: callers :meth:`~JobScheduler.submit` a
request and get back a :class:`Job` handle immediately; worker threads
drain a priority queue and resolve requests through the engine in small
batches (so the engine's deduplication and optional process-pool fan-out
still apply).  Three properties matter for serving traffic:

* **priority queues** — jobs carry a :class:`JobPriority`; higher
  priorities always dispatch first, FIFO within a priority;
* **in-flight coalescing** — while a request is queued or running, any
  identical submission (same
  :meth:`~repro.engine.request.AnalysisRequest.result_key`) shares the
  first job's future instead of queueing duplicate work; each caller
  still gets its own :class:`Job` handle with its own id;
* **bounded concurrency** — at most ``max_workers`` threads execute
  analyses; everything else waits in the queue, so a flood of
  submissions degrades latency, not memory or CPU fairness.

The engine's caches (and its optional on-disk result store) sit below
the scheduler, so repeat traffic is answered without touching a worker
at all beyond the queue round trip.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import os
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from enum import Enum, IntEnum

from repro.analysis.multicolor import resolve_shard_backend
from repro.engine.engine import AnalysisEngine
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.obs import EventLog, ProgressReporter, metrics, reporting, span

#: How many queued jobs one worker may claim per dispatch; batching lets
#: ``engine.run_batch`` deduplicate and share compiles within the claim.
DEFAULT_BATCH_SIZE = 8

#: Default slow-job threshold (seconds end-to-end); overridable per
#: scheduler (``slow_job_seconds=``) or via ``REPRO_SLOW_JOB_SECONDS``.
#: ``0`` disables the slow-job log.
DEFAULT_SLOW_JOB_SECONDS = 30.0

#: How many slow-job status snapshots the scheduler retains.
SLOW_JOB_LOG_SIZE = 64

_log = logging.getLogger(__name__)


class JobPriority(IntEnum):
    """Dispatch priority; lower value dispatches first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2

    @classmethod
    def parse(cls, value: "JobPriority | str | int | None") -> "JobPriority":
        if value is None:
            return cls.NORMAL
        if isinstance(value, JobPriority):
            return value
        if isinstance(value, str):
            return cls[value.upper()]
        return cls(value)


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class Job:
    """Handle for one submitted request.

    Coalesced jobs (identical in-flight requests) share the primary
    job's future and mirror its state, but keep their own id and
    submission timestamp so per-client accounting stays truthful.

    Every job owns an :class:`~repro.obs.EventLog` recording its
    lifecycle (``queued -> coalesced|dispatched -> running -> done |
    failed | cancelled``) plus any ``progress`` events the analysis
    publishes while it runs; the daemon's ``watch``/``events`` RPCs
    stream it.  A coalesced job's log holds only its own ``queued`` and
    ``coalesced`` entries — execution events live on the primary.
    """

    def __init__(
        self,
        job_id: str,
        request: AnalysisRequest,
        priority: JobPriority,
        primary: "Job | None" = None,
    ):
        self.id = job_id
        self.request = request
        self.priority = priority
        self.primary = primary
        #: How many later submissions coalesced onto this job's future.
        self.followers = 0
        self.future: Future = primary.future if primary is not None else Future()
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error: str | None = None
        self._state = JobState.QUEUED
        self.events = EventLog()
        #: Last progress phase the running analysis reported (dotted
        #: path, e.g. ``fixpoint.round``); None before any progress.
        self.phase: str | None = None

    def record(self, event: str, **fields) -> dict:
        """Append one lifecycle or progress event to this job's log."""
        if event == "progress" and "phase" in fields:
            self.phase = fields["phase"]
        return self.events.append(event, job_id=self.id, **fields)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def coalesced(self) -> bool:
        return self.primary is not None

    @property
    def state(self) -> JobState:
        if self.primary is not None:
            return self.primary.state
        return self._state

    @property
    def done(self) -> bool:
        return self.state.finished

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; True iff it did within
        ``timeout`` seconds."""
        try:
            self.future.exception(timeout=timeout)
        except (FutureTimeoutError, TimeoutError):
            return False
        except CancelledError:
            return True
        return True

    def result(self, timeout: float | None = None):
        """The analysis result (raises the job's error if it failed)."""
        return self.future.result(timeout=timeout)

    def status(self) -> dict:
        """A JSON-friendly snapshot of the job's progress."""
        source = self.primary or self
        now = time.monotonic()
        queued_for = (source.started_at or source.finished_at or now) - self.submitted_at
        running_for = None
        if source.started_at is not None:
            running_for = (source.finished_at or now) - source.started_at
        return {
            "job_id": self.id,
            "state": self.state.value,
            "phase": source.phase,
            "priority": self.priority.name.lower(),
            "label": self.request.describe(),
            "coalesced_into": self.primary.id if self.primary else None,
            "queued_seconds": round(max(queued_for, 0.0), 6),
            "running_seconds": round(running_for, 6) if running_for is not None else None,
            "error": source.error,
        }


@dataclass
class SchedulerStats:
    """Aggregate accounting for one scheduler instance."""

    submitted: int = 0
    coalesced: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    dispatched_batches: int = 0
    queued: int = 0
    running: int = 0
    #: Queued (non-coalesced) jobs that use the scenario-sharded engine.
    sharded_jobs: int = 0
    #: Dispatches claimed solo because the job fans out over shard worker
    #: processes (see :meth:`JobScheduler._fans_out`).
    fanout_dispatches: int = 0
    #: Jobs whose end-to-end latency exceeded the slow-job threshold.
    slow_jobs: int = 0
    #: Currently queued jobs by priority name (``{"high": 0, ...}``).
    queue_depth: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"scheduler: {self.submitted} submitted "
            f"({self.coalesced} coalesced), {self.completed} completed, "
            f"{self.failed} failed, {self.cancelled} cancelled; "
            f"{self.queued} queued, {self.running} running; "
            f"{self.sharded_jobs} sharded "
            f"({self.fanout_dispatches} fan-out dispatches)"
        )


class SchedulerShutdown(RuntimeError):
    """Raised for submissions to a scheduler that has been shut down."""


class _BatchProgress(ProgressReporter):
    """Multiplexes analysis progress onto every job in one dispatched
    batch.

    Batches execute through ``engine.run_batch``, which interleaves the
    member requests, so progress inside a batch is attributed to the
    whole claim — exactly like the batch span's ``job_ids`` attribute.
    Fan-out (process-sharded) jobs dispatch solo, so the jobs that emit
    the most progress get exact attribution.
    """

    def __init__(self, jobs: list[Job]):
        self._jobs = jobs

    def publish(self, phase: str, **fields) -> None:
        for job in self._jobs:
            job.record("progress", phase=phase, **fields)


class JobScheduler:
    """Priority-queue front end over one :class:`AnalysisEngine`."""

    def __init__(
        self,
        engine: AnalysisEngine | None = None,
        max_workers: int = 2,
        batch_size: int = DEFAULT_BATCH_SIZE,
        autostart: bool = True,
        slow_job_seconds: float | None = None,
    ):
        self.engine = engine if engine is not None else AnalysisEngine()
        self.max_workers = max(1, max_workers)
        self.batch_size = max(1, batch_size)
        if slow_job_seconds is None:
            slow_job_seconds = float(
                os.environ.get("REPRO_SLOW_JOB_SECONDS", DEFAULT_SLOW_JOB_SECONDS)
            )
        #: End-to-end latency above which a job lands in the slow-job
        #: log (and a warning is logged); 0 disables.
        self.slow_job_seconds = max(0.0, slow_job_seconds)
        self._lock = threading.Condition()
        self._heap: list[tuple[int, int, Job]] = []
        self._ticket = itertools.count()
        self._job_seq = itertools.count(1)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # result_key -> primary job
        self._running = 0
        self._shutdown = False
        self._stats = SchedulerStats()
        self._queue_depth = {priority: 0 for priority in JobPriority}
        self._slow_jobs: deque[dict] = deque(maxlen=SLOW_JOB_LOG_SIZE)
        self._workers: list[threading.Thread] = []
        if autostart:
            self.start_workers()

    def start_workers(self) -> None:
        """Launch the worker threads (idempotent; called by the
        constructor unless ``autostart=False``)."""
        if self._workers:
            return
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(
        self,
        request: AnalysisRequest,
        priority: JobPriority | str | int | None = None,
    ) -> Job:
        """Queue ``request``; returns immediately with a :class:`Job`.

        An identical request already queued or running is *coalesced*:
        the returned job shares the in-flight job's future and never
        occupies a queue slot of its own.
        """
        priority = JobPriority.parse(priority)
        key = request.result_key()
        with self._lock:
            if self._shutdown:
                raise SchedulerShutdown("scheduler is shut down")
            self._stats.submitted += 1
            primary = self._inflight.get(key)
            if primary is not None and not primary.state.finished:
                job = Job(self._next_id(), request, priority, primary=primary)
                self._jobs[job.id] = job
                primary.followers += 1
                self._stats.coalesced += 1
                job.record("queued", priority=priority.name.lower())
                job.record("coalesced", into=primary.id)
                if (
                    priority < primary.priority
                    and primary.state is JobState.QUEUED
                ):
                    # The coalesced submission outranks the queued
                    # primary: bump it.  The old heap entry stays behind
                    # and is skipped on pop (no longer QUEUED by then or
                    # claimed through the new entry first).
                    self._depth_changed(primary.priority, -1)
                    primary.priority = priority
                    self._depth_changed(priority, +1)
                    primary.record("bumped", priority=priority.name.lower(), by=job.id)
                    heapq.heappush(
                        self._heap, (int(priority), next(self._ticket), primary)
                    )
                    self._lock.notify()
                return job
            job = Job(self._next_id(), request, priority)
            self._jobs[job.id] = job
            self._inflight[key] = job
            if (
                request.kind is AnalysisKind.SPECULATIVE
                and request.scenario_shards >= 2
            ):
                self._stats.sharded_jobs += 1
            heapq.heappush(self._heap, (int(priority), next(self._ticket), job))
            self._depth_changed(priority, +1)
            job.record(
                "queued", priority=priority.name.lower(), label=request.describe()
            )
            self._lock.notify()
            return job

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that is still queued; True on success.  Running
        jobs, coalesced jobs, and primaries other clients have coalesced
        onto are not cancellable (cancelling a shared future would
        destroy the other clients' work)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if (
                job is None
                or job.coalesced
                or job.followers
                or job.state is not JobState.QUEUED
            ):
                return False
            job._state = JobState.CANCELLED
            job.finished_at = time.monotonic()
            self._inflight.pop(job.request.result_key(), None)
            self._stats.cancelled += 1
            self._depth_changed(job.priority, -1)
            job.record("cancelled")
        job.future.cancel()
        return True

    @property
    def stats(self) -> SchedulerStats:
        with self._lock:
            snapshot = SchedulerStats(**vars(self._stats))
            snapshot.queued = sum(
                1 for _, _, job in self._heap if job.state is JobState.QUEUED
            )
            snapshot.running = self._running
            snapshot.queue_depth = {
                priority.name.lower(): depth
                for priority, depth in self._queue_depth.items()
            }
            return snapshot

    def recent_jobs(self, limit: int = 32) -> list[dict]:
        """Status snapshots of the most recently submitted jobs (the
        ``top`` RPC's job table)."""
        with self._lock:
            jobs = list(self._jobs.values())[-max(1, limit):]
        return [job.status() for job in jobs]

    def slow_jobs(self) -> list[dict]:
        """Status snapshots of jobs that breached the slow threshold."""
        with self._lock:
            return [dict(entry) for entry in self._slow_jobs]

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job has finished; True iff the
        queue emptied within ``timeout`` seconds."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._heap or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._lock.wait(timeout=remaining if remaining is not None else 0.1)
        return True

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work; optionally wait for in-flight jobs."""
        with self._lock:
            self._shutdown = True
            self._lock.notify_all()
        if wait:
            for worker in self._workers:
                worker.join(timeout=timeout)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True, timeout=30.0)

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"job-{next(self._job_seq):06d}"

    def _depth_changed(self, priority: JobPriority, delta: int) -> None:
        """Track per-priority queue depth (caller holds the lock) and
        mirror it into the metrics registry's gauges."""
        self._queue_depth[priority] += delta
        metrics().gauge(f"scheduler.queue_depth.{priority.name.lower()}").set(
            self._queue_depth[priority]
        )

    @staticmethod
    def _fans_out(request: AnalysisRequest) -> bool:
        """True when executing ``request`` will spawn shard worker
        processes of its own (sharded speculative run, process backend).
        Such jobs are dispatched in a batch of their own: their workers
        already use the whole machine, so stacking other jobs' pool
        workers on top would oversubscribe it rather than speed it up."""
        if (
            request.kind is not AnalysisKind.SPECULATIVE
            or request.scenario_shards < 2
        ):
            return False
        try:
            backend = resolve_shard_backend(request.shard_backend)
        except ValueError:
            return False  # the engine will reject it with a clear error
        return backend == "processes"

    def _claim_batch(self) -> list[Job] | None:
        """Claim up to ``batch_size`` queued jobs (highest priority
        first, fan-out jobs solo); None once the scheduler drains after
        shutdown."""
        with self._lock:
            while not self._heap:
                if self._shutdown:
                    return None
                self._lock.wait()
            batch: list[Job] = []
            while self._heap and len(batch) < self.batch_size:
                _, _, job = self._heap[0]
                if job.state is not JobState.QUEUED:
                    heapq.heappop(self._heap)
                    continue  # cancelled while queued, or a stale bump entry
                fans_out = self._fans_out(job.request)
                if fans_out and batch:
                    break  # leave the fan-out job for its own dispatch
                heapq.heappop(self._heap)
                job._state = JobState.RUNNING
                job.started_at = time.monotonic()
                self._depth_changed(job.priority, -1)
                queue_wait = job.started_at - job.submitted_at
                metrics().histogram("scheduler.queue_wait_seconds").observe(queue_wait)
                job.record("dispatched", queued_seconds=round(queue_wait, 6))
                batch.append(job)
                if fans_out:
                    self._stats.fanout_dispatches += 1
                    break
            self._running += len(batch)
            self._stats.dispatched_batches += 1 if batch else 0
            return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._claim_batch()
            if batch is None:
                return
            if not batch:
                continue
            # The dispatch span carries the claimed job ids, so the
            # daemon's ``trace`` RPC can find the whole execution tree of
            # one job (every engine/fixpoint span nests under this one).
            with span(
                "scheduler.batch",
                job_ids=[job.id for job in batch],
                jobs=len(batch),
                queued_seconds=round(
                    max(job.started_at - job.submitted_at for job in batch), 6
                ),
            ) as batch_span:
                for job in batch:
                    job.record("running", jobs_in_batch=len(batch))
                with reporting(_BatchProgress(batch)):
                    try:
                        results = self.engine.run_batch(
                            [job.request for job in batch]
                        )
                    except Exception:
                        # A batch-level failure says nothing about which
                        # request is at fault — retry them individually so
                        # healthy jobs still complete and only the
                        # offender fails.
                        results = None
                if results is not None:
                    for job, result in zip(batch, results):
                        self._finish(job, result=result)
                else:
                    batch_span.set(retried_individually=True)
                    for job in batch:
                        with span("scheduler.job", job_id=job.id) as job_span, \
                                reporting(_BatchProgress([job])):
                            try:
                                result = self.engine.run(job.request)
                            except Exception as error:  # noqa: BLE001 — job-level report
                                job_span.set(failed=True)
                                self._finish(job, error=error)
                            else:
                                self._finish(job, result=result)

    def _finish(self, job: Job, result=None, error: Exception | None = None) -> None:
        with self._lock:
            job.finished_at = time.monotonic()
            execute_seconds = job.finished_at - (job.started_at or job.finished_at)
            e2e_seconds = job.finished_at - job.submitted_at
            registry = metrics()
            registry.histogram("scheduler.execute_seconds").observe(execute_seconds)
            registry.histogram("scheduler.e2e_seconds").observe(e2e_seconds)
            if error is not None:
                job._state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                self._stats.failed += 1
                job.record(
                    "failed",
                    error=job.error,
                    execute_seconds=round(execute_seconds, 6),
                    e2e_seconds=round(e2e_seconds, 6),
                )
            else:
                job._state = JobState.DONE
                self._stats.completed += 1
                job.record(
                    "done",
                    execute_seconds=round(execute_seconds, 6),
                    e2e_seconds=round(e2e_seconds, 6),
                    followers=job.followers,
                )
            if self.slow_job_seconds and e2e_seconds >= self.slow_job_seconds:
                self._stats.slow_jobs += 1
                registry.counter("scheduler.slow_jobs").inc()
                entry = job.status()
                entry["e2e_seconds"] = round(e2e_seconds, 6)
                self._slow_jobs.append(entry)
                _log.warning(
                    "slow job %s: %.1fs end-to-end (threshold %.1fs): %s",
                    job.id, e2e_seconds, self.slow_job_seconds,
                    job.request.describe(),
                )
            self._running -= 1
            inflight = self._inflight.get(job.request.result_key())
            if inflight is job:
                del self._inflight[job.request.result_key()]
            self._lock.notify_all()
        if error is not None:
            job.future.set_exception(error)
        else:
            job.future.set_result(result)
