"""The ``repro`` command-line interface.

Subcommands::

    repro serve        run the analysis daemon (socket server + scheduler + store)
    repro submit       analyse one MiniC source file (via the daemon, or --local)
    repro wcet         Table-5-shaped WCET comparison for benchmark kernels
    repro sidechannel  Table-7-shaped leak detection for crypto kernels
    repro lint         compile one MiniC file and verify the produced IR
    repro mitigate     synthesise verified fence placements that close leaks
    repro stats        engine / scheduler / store / metrics of a running daemon
    repro top          live queue/worker view of a running daemon
    repro trace        span tree of one daemon job (by job id)

``repro submit --watch`` streams the job's lifecycle + progress events
(fixpoint rounds, shard completions, mitigation candidates) live over
the daemon's ``watch`` RPC while the analysis runs.  ``repro stats
--prom`` renders the daemon's full metrics registry in Prometheus text
exposition format for scrapers; the human-readable ``repro stats``
output adds bucket-interpolated p50/p99 lines for every histogram.

``repro serve --trace PATH`` (or the ``REPRO_TRACE`` environment
variable, which works for every command) additionally streams every
completed span to ``PATH`` as JSON lines; the daemon always keeps a
bounded in-memory span buffer, so ``repro trace <job-id>`` works with no
trace file configured.  ``repro submit`` prints the id of the job that
served it when talking to a daemon.

``wcet``, ``sidechannel``, ``mitigate`` and ``stats`` accept ``--json``,
printing machine-readable rows for CI and scripts.  ``submit``, ``wcet``,
``sidechannel`` and ``mitigate`` also accept ``--associativity N`` and
``--policy {lru,fifo}`` to analyse against a set-associative and/or FIFO
cache model instead of the paper's fully-associative LRU default.

``submit``, ``wcet`` and ``sidechannel`` are thin service clients: they
build :class:`~repro.engine.request.AnalysisRequest` values locally and
resolve them against a daemon (``--host``/``--port``), falling back to an
in-process engine backed by the same on-disk store with ``--local`` — so
warm results are shared between the daemon and one-shot CLI runs.

``repro submit --verify`` additionally recomputes the request from
scratch in-process and asserts the served result is semantically
bit-identical (see :func:`repro.service.wire.result_fingerprint`); the CI
smoke job leans on this.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.engine.engine import AnalysisEngine, execute_request
from repro.engine.request import AnalysisKind, AnalysisRequest
from repro.obs import histogram_quantile, render_prometheus
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import DEFAULT_PORT, ReproServer
from repro.service.store import ResultStore
from repro.service.wire import result_fingerprint, result_to_wire

#: Default on-disk store location for ``serve`` and ``--local`` runs.
DEFAULT_STORE_DIR = ".repro-store"


# ----------------------------------------------------------------------
# Backends: a daemon connection or an in-process engine
# ----------------------------------------------------------------------
class _LocalBackend:
    """In-process execution with the same two-tier caching as the daemon."""

    def __init__(self, store_dir: str | None):
        self.engine = AnalysisEngine(
            result_store=ResultStore(store_dir) if store_dir else None
        )

    def analyze(self, request: AnalysisRequest) -> dict:
        return result_to_wire(self.engine.run(request))

    def mitigate(self, request: AnalysisRequest, optimize: bool = True) -> dict:
        from repro.mitigation import synthesize_mitigation

        return synthesize_mitigation(
            request, engine=self.engine, optimize=optimize
        ).to_wire()

    def close(self) -> None:
        pass


class _RemoteBackend:
    def __init__(self, host: str, port: int):
        self.client = ServiceClient(host=host, port=port)

    def analyze(self, request: AnalysisRequest) -> dict:
        return self.client.analyze(request)

    def mitigate(self, request: AnalysisRequest, optimize: bool = True) -> dict:
        return self.client.mitigate(request, optimize=optimize)

    def close(self) -> None:
        self.client.close()


def _backend(args: argparse.Namespace):
    if getattr(args, "local", False):
        return _LocalBackend(args.store_dir)
    return _RemoteBackend(args.host, args.port)


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    if args.trace:
        # The tracer mirrors REPRO_TRACE on every enabled check, so
        # setting it here (before any span opens) attaches the JSONL
        # sink for the daemon's whole lifetime.
        import os

        os.environ["REPRO_TRACE"] = args.trace
    server = ReproServer(
        store_dir=None if args.no_store else args.store_dir,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        batch_size=args.batch_size,
        slow_job_seconds=args.slow_job_seconds,
        incremental=args.incremental,
    )
    signal.signal(signal.SIGTERM, lambda *_: server.stop())
    store_note = "no store" if args.no_store else f"store at {args.store_dir}"
    incremental_note = (
        ", incremental" if server.engine.incremental_enabled else ""
    )
    print(
        f"repro daemon listening on {server.host}:{server.port} "
        f"({args.max_workers} workers, {store_note}{incremental_note})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    print("repro daemon stopped", flush=True)
    return 0


# ----------------------------------------------------------------------
# repro submit
# ----------------------------------------------------------------------
def _geometry_override(args: argparse.Namespace, base):
    """Apply the ``--associativity``/``--policy`` flags on top of ``base``.

    Returns ``base`` unchanged when neither flag was given, so the
    default requests hash to exactly the same cache keys as before.
    """
    from dataclasses import replace

    overrides = {}
    if getattr(args, "associativity", None) is not None:
        overrides["associativity"] = (
            None if args.associativity == 0 else args.associativity
        )
    if getattr(args, "policy", None) is not None:
        overrides["policy"] = args.policy
    return replace(base, **overrides) if overrides else base


def _add_cache_geometry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--associativity", type=int, default=None,
        help="cache ways per set (0 or omitted: fully associative)",
    )
    parser.add_argument(
        "--policy", choices=["lru", "fifo"], default=None,
        help="cache replacement policy (default: lru)",
    )


def _build_request(args: argparse.Namespace, source: str) -> AnalysisRequest:
    from repro.cache.config import CacheConfig
    from repro.speculation.config import SpeculationConfig

    cache_config = None
    if (
        args.num_lines is not None
        or args.associativity is not None
        or args.policy is not None
    ):
        base = CacheConfig.paper_default()
        cache_config = _geometry_override(
            args,
            CacheConfig(
                num_lines=args.num_lines if args.num_lines is not None else base.num_lines,
                line_size=args.line_size,
            ),
        )
    speculation = None
    if args.depth_miss is not None:
        depth_hit = args.depth_hit if args.depth_hit is not None else min(20, args.depth_miss)
        speculation = SpeculationConfig.paper_default().with_depths(
            args.depth_miss, depth_hit
        )
    return AnalysisRequest(
        source=source,
        kind=AnalysisKind(args.kind),
        entry=args.entry,
        line_size=args.line_size,
        cache_config=cache_config,
        speculation=speculation,
        scenario_shards=getattr(args, "scenario_shards", 1),
        prune_scenarios=getattr(args, "prune_scenarios", False),
        shard_backend=getattr(args, "shard_backend", None),
        label=args.label,
    )


def _print_result(wire: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(wire, indent=2, sort_keys=True))
        return
    name = wire["program_name"]
    cached = " (cached)" if wire.get("from_cache") else ""
    print(f"analysis of {name!r}{cached}")
    print(
        f"  accesses: {wire['access_sites']}  must-hit: {wire['must_hits']}  "
        f"possible misses: {wire['misses']}"
    )
    if wire.get("speculation") is not None:
        print(
            f"  speculative misses: {wire['speculative_misses']}  "
            f"speculative branches: {wire['speculative_branches']}"
        )
    verdict = "LEAK DETECTED" if wire["leak_detected"] else "no leak found"
    print(f"  iterations: {wire['iterations']}  time: {wire['analysis_time']:.3f}s")
    print(f"  side channel: {verdict}")


def _format_event(event: dict, first_t: float) -> str:
    """One streamed lifecycle/progress event as a human-readable line,
    timestamped relative to the first event of the stream."""
    name = event["event"]
    if name == "progress":
        name = f"progress {event.get('phase', '?')}"
    skip = {"event", "seq", "t", "ts", "job_id", "phase"}
    detail = "  ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in skip and value is not None
    )
    offset = event["t"] - first_t
    return f"  [{offset:8.3f}s] {name}" + (f"  {detail}" if detail else "")


def _watch_submit(args: argparse.Namespace, request: AnalysisRequest):
    """Submit to the daemon and stream the job's events while it runs;
    returns ``(wire result, job id)``."""
    with ServiceClient(host=args.host, port=args.port) as client:
        job_id = client.submit(request)
        print(f"watching {job_id}", flush=True)
        first_t: list[float] = []

        def show(event: dict) -> None:
            if not first_t:
                first_t.append(event["t"])
            print(_format_event(event, first_t[0]), flush=True)

        final = client.watch(job_id, on_event=show)
        if final.get("error"):
            raise ServiceError(final["error"])
        return client.result(job_id), job_id


def cmd_submit(args: argparse.Namespace) -> int:
    if args.source == "-":
        source = sys.stdin.read()
    else:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    if getattr(args, "trace", None):
        import os

        os.environ["REPRO_TRACE"] = args.trace
    request = _build_request(args, source)
    if args.watch:
        if getattr(args, "local", False):
            print("--watch streams from a daemon; drop --local", file=sys.stderr)
            return 2
        wire, job_id = _watch_submit(args, request)
    else:
        backend = _backend(args)
        try:
            wire = backend.analyze(request)
        finally:
            backend.close()
        job_id = getattr(getattr(backend, "client", None), "last_job_id", None)
    _print_result(wire, args.json)
    if job_id and not args.json:
        print(f"  job: {job_id}  (span tree: repro trace {job_id})")
    if args.verify:
        direct = execute_request(request)
        served, recomputed = result_fingerprint(wire), result_fingerprint(direct)
        if served != recomputed:
            print(
                f"VERIFY FAILED: served fingerprint {served[:16]} != "
                f"direct execution {recomputed[:16]}",
                file=sys.stderr,
            )
            return 2
        print(f"verified: served result identical to direct execution ({served[:16]})")
    return 0


# ----------------------------------------------------------------------
# repro wcet / repro sidechannel
# ----------------------------------------------------------------------
def _bench_requests(source: str, name: str, cache=None):
    """The baseline + speculative request pair every comparison needs."""
    from repro.bench.tables import BENCH_CACHE, BENCH_SPECULATION

    common = dict(
        source=source,
        line_size=BENCH_CACHE.line_size,
        cache_config=cache if cache is not None else BENCH_CACHE,
        label=name,
    )
    return (
        AnalysisRequest.baseline(**common),
        AnalysisRequest.speculative(speculation=BENCH_SPECULATION, **common),
    )


def cmd_wcet(args: argparse.Namespace) -> int:
    from repro.bench.programs import WCET_BENCHMARKS, wcet_benchmark_source
    from repro.bench.tables import BENCH_CACHE

    names = args.benchmarks or ["adpcm", "susan", "jcmarker", "g72", "vga"]
    unknown = [name for name in names if name not in WCET_BENCHMARKS]
    if unknown:
        print(
            f"unknown benchmarks {unknown}; available: {sorted(WCET_BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2

    cache = _geometry_override(args, BENCH_CACHE)
    backend = _backend(args)
    rows = []
    try:
        for name in names:
            source = wcet_benchmark_source(
                name, BENCH_CACHE.num_lines, BENCH_CACHE.line_size
            )
            base_req, spec_req = _bench_requests(source, name, cache)
            rows.append((name, backend.analyze(base_req), backend.analyze(spec_req)))
    finally:
        backend.close()

    from repro.apps.wcet import estimated_cycles

    def cycles(wire: dict) -> int:
        return estimated_cycles(wire["must_hits"], wire["misses"], cache)

    if args.json:
        from repro.service.wire import cache_config_to_wire

        payload = [
            {
                "name": name,
                "cache_config": cache_config_to_wire(cache),
                "access_sites": base["access_sites"],
                "base_misses": base["misses"],
                "spec_misses": spec["misses"],
                "speculative_misses": spec["speculative_misses"],
                "base_cycles": cycles(base),
                "spec_cycles": cycles(spec),
                "underestimated": cycles(spec) > cycles(base),
            }
            for name, base, spec in rows
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if cache is not BENCH_CACHE:
        print(f"cache: {cache.describe()}")
    print(f"{'name':10s} {'#acc':>5s} {'base miss':>9s} {'spec miss':>9s} "
          f"{'#SpMiss':>7s} {'base cyc':>9s} {'spec cyc':>9s}")
    for name, base, spec in rows:
        flag = "  UNDERESTIMATED" if cycles(spec) > cycles(base) else ""
        print(
            f"{name:10s} {base['access_sites']:5d} {base['misses']:9d} "
            f"{spec['misses']:9d} {spec['speculative_misses']:7d} "
            f"{cycles(base):9d} {cycles(spec):9d}{flag}"
        )
    return 0


def cmd_sidechannel(args: argparse.Namespace) -> int:
    from repro.bench.client import build_client_source
    from repro.bench.crypto import CRYPTO_BENCHMARKS, crypto_kernel
    from repro.bench.tables import BENCH_CACHE, TABLE7_BUFFER_BYTES

    names = args.kernels or ["hash", "encoder", "des", "aes", "salsa"]
    unknown = [name for name in names if name not in CRYPTO_BENCHMARKS]
    if unknown:
        print(
            f"unknown kernels {unknown}; available: {sorted(CRYPTO_BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2

    cache = _geometry_override(args, BENCH_CACHE)
    backend = _backend(args)
    rows = []
    sources: dict[str, str] = {}
    try:
        for name in names:
            kernel = crypto_kernel(name, BENCH_CACHE.num_lines, BENCH_CACHE.line_size)
            buffer_bytes = TABLE7_BUFFER_BYTES.get(name, BENCH_CACHE.size_bytes)
            source = build_client_source(
                kernel, buffer_bytes, line_size=BENCH_CACHE.line_size
            )
            sources[name] = source
            base_req, spec_req = _bench_requests(source, name, cache)
            rows.append(
                (name, buffer_bytes, backend.analyze(base_req), backend.analyze(spec_req))
            )
    finally:
        backend.close()

    # --explain reruns the taint pass locally against the same harness
    # source the requests carried (the daemon never ships blame graphs;
    # leak sites are matched back by (block, instruction index)).
    blames: dict[str, dict] = {}
    if getattr(args, "explain", False):
        from repro.apps.sidechannel import explain_leaks
        from repro.frontend import compile_source

        for name, _buffer_bytes, _base, spec in rows:
            program = compile_source(sources[name], line_size=BENCH_CACHE.line_size)
            sites = sorted(
                {
                    (c["block"], c["instruction_index"])
                    for c in spec["classifications"]
                    if c["secret_dependent"] and not c["speculative"]
                }
            )
            blames[name] = explain_leaks(program, sites)

    def leak_sites(wire: dict) -> int:
        # Committed (non-speculative) sites only — the same definition as
        # CacheAnalysisResult.leak_site_count and the wire leak_detected
        # flag; speculative window copies of a site are not extra leaks.
        return sum(
            1
            for c in wire["classifications"]
            if c["secret_dependent"] and not c["speculative"]
        )

    if args.json:
        from repro.service.wire import cache_config_to_wire

        payload = []
        for name, buffer_bytes, base, spec in rows:
            row = {
                "name": name,
                "cache_config": cache_config_to_wire(cache),
                "buffer_bytes": buffer_bytes,
                "base_leak": base["leak_detected"],
                "spec_leak": spec["leak_detected"],
                "base_leak_sites": leak_sites(base),
                "spec_leak_sites": leak_sites(spec),
                "only_under_speculation": (
                    spec["leak_detected"] and not base["leak_detected"]
                ),
            }
            if name in blames:
                row["blame"] = [
                    {
                        "block": block,
                        "instruction_index": index,
                        "path": [step.to_dict() for step in (path or [])],
                    }
                    for (block, index), path in sorted(blames[name].items())
                ]
            payload.append(row)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if cache is not BENCH_CACHE:
        print(f"cache: {cache.describe()}")
    print(f"{'kernel':10s} {'buffer':>7s} {'base':>6s} {'spec':>6s}")
    for name, buffer_bytes, base, spec in rows:
        base_leak = "leak" if base["leak_detected"] else "-"
        spec_leak = "leak" if spec["leak_detected"] else "-"
        marker = "  <-- only under speculation" if (
            spec["leak_detected"] and not base["leak_detected"]
        ) else ""
        print(f"{name:10s} {buffer_bytes:7d} {base_leak:>6s} {spec_leak:>6s}{marker}")
    if blames:
        from repro.apps.report import format_blame_paths

        for name, _buffer_bytes, _base, _spec in rows:
            if name in blames and blames[name]:
                print()
                print(format_blame_paths(name, blames[name]))
    return 0


# ----------------------------------------------------------------------
# repro lint
# ----------------------------------------------------------------------
def cmd_lint(args: argparse.Namespace) -> int:
    """Compile one MiniC file and verify the produced IR.

    Exit codes: 0 = clean, 1 = lint findings, 2 = the source does not
    even compile (or usage error).  Always local — the verifier inspects
    the compiled CFGs, which never cross the wire.
    """
    from repro.errors import ReproError
    from repro.frontend import compile_source
    from repro.ir.verify import verify_program

    if args.source == "-":
        source = sys.stdin.read()
    else:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    try:
        program = compile_source(
            source,
            entry=args.entry,
            line_size=args.line_size,
            unroll=not args.no_unroll,
            inline=not args.no_inline,
        )
    except ReproError as error:
        if args.json:
            print(json.dumps({"error": str(error), "findings": []}, indent=2))
        else:
            print(f"repro lint: compile failed: {error}", file=sys.stderr)
        return 2
    findings = verify_program(program)
    if args.json:
        print(
            json.dumps(
                {
                    "program": program.entry_function,
                    "clean": not findings,
                    "findings": [finding.to_dict() for finding in findings],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if findings else 0
    if not findings:
        blocks = len(program.cfg.blocks)
        print(f"{program.entry_function}: IR clean ({blocks} blocks verified)")
        return 0
    print(f"{program.entry_function}: {len(findings)} finding(s)")
    for finding in findings:
        print(f"  {finding.render()}")
    return 1


# ----------------------------------------------------------------------
# repro mitigate
# ----------------------------------------------------------------------
def cmd_mitigate(args: argparse.Namespace) -> int:
    from repro.bench.crypto import CRYPTO_BENCHMARKS
    from repro.bench.tables import BENCH_CACHE, BENCH_SPECULATION, table7_client_request

    cache = _geometry_override(args, BENCH_CACHE)
    requests: list[AnalysisRequest] = []
    if args.source is not None:
        if args.kernels:
            print("pass either kernel names or --source, not both", file=sys.stderr)
            return 2
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
        requests.append(
            AnalysisRequest.speculative(
                source,
                line_size=BENCH_CACHE.line_size,
                cache_config=cache,
                speculation=BENCH_SPECULATION,
                label=args.source,
            )
        )
    else:
        names = args.kernels or sorted(CRYPTO_BENCHMARKS)
        unknown = [name for name in names if name not in CRYPTO_BENCHMARKS]
        if unknown:
            print(
                f"unknown kernels {unknown}; available: {sorted(CRYPTO_BENCHMARKS)}",
                file=sys.stderr,
            )
            return 2
        requests.extend(table7_client_request(name, cache) for name in names)

    backend = _backend(args)
    mitigations: list[dict] = []
    try:
        for request in requests:
            mitigations.append(
                backend.mitigate(request, optimize=not args.no_optimize)
            )
    finally:
        backend.close()

    if args.emit_dir:
        import os

        os.makedirs(args.emit_dir, exist_ok=True)
        for request, wire in zip(requests, mitigations):
            chosen = wire.get(wire["chosen"]) if wire["chosen"] != "none" else None
            if chosen is None:
                continue
            # The name is the label, which for --source is a user path:
            # keep only its basename so output stays inside --emit-dir.
            stem = os.path.basename(wire["name"]) or "program"
            path = os.path.join(args.emit_dir, f"{stem}.mitigated.mc")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(chosen["patched_source"])

    if args.json:
        from repro.service.wire import cache_config_to_wire

        for wire in mitigations:
            wire.setdefault("cache_config", cache_config_to_wire(cache))
        print(json.dumps(mitigations, indent=2, sort_keys=True))
        return 0

    if cache is not BENCH_CACHE:
        print(f"cache: {cache.describe()}")
    print(f"{'kernel':10s} {'leaks':>5s} {'chosen':>9s} {'fences':>6s} "
          f"{'baseline':>8s} {'overhead':>8s} {'verified':>8s}")
    for wire in mitigations:
        chosen = wire.get(wire["chosen"]) if wire["chosen"] != "none" else None
        baseline = wire.get("baseline")
        if chosen is None:
            print(f"{wire['name']:10s} {wire['leak_sites_before']:5d} "
                  f"{'-':>9s} {0:6d} {0:8d} {0:8d} {'safe':>8s}")
            continue
        print(
            f"{wire['name']:10s} {wire['leak_sites_before']:5d} "
            f"{wire['chosen']:>9s} {chosen['source_fences']:6d} "
            f"{baseline['source_fences'] if baseline else 0:8d} "
            f"{chosen['wcet_overhead_cycles']:8d} "
            f"{'yes' if chosen['verified'] else 'NO':>8s}"
        )
    return 0


# ----------------------------------------------------------------------
# repro stats
# ----------------------------------------------------------------------
def cmd_stats(args: argparse.Namespace) -> int:
    with ServiceClient(host=args.host, port=args.port) as client:
        if args.prom:
            # Pure exposition: the registry snapshot rendered in
            # Prometheus text format, nothing else on stdout.
            print(render_prometheus(client.metrics()), end="")
            return 0
        stats = client.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"requests: {stats['requests']}  batches: {stats['batches']} "
          f"({stats['parallel_batches']} parallel)")
    for tier in ("compile_cache", "result_cache", "result_store"):
        counters = stats.get(tier)
        if counters is None:
            print(f"{tier:13s}: (not attached)")
            continue
        extras = ", ".join(
            f"{key}={value}"
            for key, value in counters.items()
            if key not in ("hits", "misses")
        )
        print(f"{tier:13s}: {counters['hits']} hits / {counters['misses']} misses"
              + (f" ({extras})" if extras else ""))
    sched = stats["scheduler"]
    print(
        f"scheduler    : {sched['submitted']} submitted "
        f"({sched['coalesced']} coalesced), {sched['completed']} completed, "
        f"{sched['failed']} failed, {sched['queued']} queued, "
        f"{sched['running']} running"
    )
    incremental = stats.get("incremental")
    if incremental is not None:
        state = "on" if incremental["enabled"] else "off"
        print(
            f"incremental  : {state}, {incremental['warm_hits']} warm hits / "
            f"{incremental['cold_fallbacks']} cold fallbacks "
            f"({incremental['warm_rate']:.0%} warm), "
            f"{incremental['retained']} snapshots retained "
            f"({incremental['snapshots_stored']} stored)"
        )
    if "sharded_jobs" in sched:
        print(
            f"sharding     : {sched['sharded_jobs']} sharded jobs, "
            f"{sched['fanout_dispatches']} fan-out dispatches"
        )
    slow = stats.get("slow_jobs") or []
    if slow:
        print(f"slow jobs    : {len(slow)} over threshold (most recent last)")
        for entry in slow[-5:]:
            print(
                f"  {entry['job_id']}  {entry.get('e2e_seconds', 0.0):.1f}s  "
                f"{entry.get('label') or ''}"
            )
    registry = stats.get("metrics") or {}
    if registry:
        print("metrics      :")
        for name, entry in sorted(registry.items()):
            if entry.get("type") == "histogram":
                quantiles = ""
                p50 = histogram_quantile(entry, 0.5)
                p99 = histogram_quantile(entry, 0.99)
                if p50 is not None:
                    quantiles = f" p50={p50:.6f} p99={p99:.6f}"
                print(
                    f"  {name:26s} count={entry['count']} "
                    f"sum={entry['sum']:.6f}{quantiles}"
                )
            else:
                print(f"  {name:26s} {entry['value']}")
    return 0


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def _render_top(top: dict) -> list[str]:
    """One frame of the live queue/worker view as printable lines."""
    import time as _time

    sched = top["scheduler"]
    depth = sched.get("queue_depth") or {}
    instruments = top.get("metrics") or {}

    def quantile_ms(name: str, q: float) -> str:
        payload = instruments.get(name)
        if not payload or payload.get("type") != "histogram":
            return "-"
        value = histogram_quantile(payload, q)
        return f"{value * 1000:.0f}ms" if value is not None else "-"

    clock = _time.strftime("%H:%M:%S", _time.localtime(top.get("time", 0.0)))
    lines = [
        f"repro daemon — {clock}",
        (
            f"queued  high={depth.get('high', 0)} "
            f"normal={depth.get('normal', 0)} low={depth.get('low', 0)}   "
            f"running {sched['running']}/{top.get('max_workers', '?')} workers   "
            f"submitted {sched['submitted']} ({sched['coalesced']} coalesced)   "
            f"completed {sched['completed']}   failed {sched['failed']}   "
            f"slow {sched.get('slow_jobs', 0)}"
        ),
        (
            f"latency  queue-wait p50={quantile_ms('scheduler.queue_wait_seconds', 0.5)} "
            f"p99={quantile_ms('scheduler.queue_wait_seconds', 0.99)}   "
            f"e2e p50={quantile_ms('scheduler.e2e_seconds', 0.5)} "
            f"p99={quantile_ms('scheduler.e2e_seconds', 0.99)}"
        ),
    ]
    incremental = top.get("incremental")
    if incremental and (incremental.get("enabled") or incremental.get("warm_hits")):
        lines.append(
            f"warm     {incremental['warm_hits']} hits / "
            f"{incremental['cold_fallbacks']} cold "
            f"({incremental['warm_rate']:.0%} warm)   "
            f"snapshots {incremental['retained']} retained"
        )
    lines += [
        "",
        f"{'JOB':12s} {'STATE':9s} {'PHASE':16s} {'PRIO':6s} "
        f"{'QUEUED':>8s} {'RUN':>8s}  LABEL",
    ]
    for job in top.get("jobs") or []:
        running = job.get("running_seconds")
        label = (job.get("label") or "")[:40]
        lines.append(
            f"{job['job_id']:12s} {job['state']:9s} "
            f"{(job.get('phase') or '-'):16s} {job['priority']:6s} "
            f"{job['queued_seconds']:8.3f} "
            f"{running if running is not None else 0.0:8.3f}  {label}"
        )
    return lines


def cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    with ServiceClient(host=args.host, port=args.port) as client:
        if args.json:
            print(json.dumps(client.top(limit=args.limit), indent=2, sort_keys=True))
            return 0
        if args.once:
            for line in _render_top(client.top(limit=args.limit)):
                print(line)
            return 0
        try:
            while True:
                frame = _render_top(client.top(limit=args.limit))
                # Clear screen + home, like top(1); one write per frame
                # so partially drawn frames never show.
                sys.stdout.write("\x1b[2J\x1b[H" + "\n".join(frame) + "\n")
                sys.stdout.flush()
                _time.sleep(max(0.2, args.interval))
        except KeyboardInterrupt:
            return 0


# ----------------------------------------------------------------------
# repro trace
# ----------------------------------------------------------------------
def _render_span_tree(spans: list[dict]) -> list[str]:
    """Indent spans by parent relation (completion order preserved
    within siblings; orphans — parents evicted from the ring buffer —
    print as roots)."""
    by_id = {s["span_id"]: s for s in spans}
    children: dict = {}
    roots = []
    for s in spans:
        parent = s.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    for group in children.values():
        group.sort(key=lambda s: s.get("ts", 0.0))
    roots.sort(key=lambda s: s.get("ts", 0.0))

    lines: list[str] = []

    def walk(s: dict, depth: int) -> None:
        attrs = ", ".join(
            f"{key}={value}" for key, value in sorted((s.get("attrs") or {}).items())
        )
        lines.append(
            f"{'  ' * depth}{s['name']}  {s['duration'] * 1000:.3f}ms"
            + (f"  [{attrs}]" if attrs else "")
        )
        for child in children.get(s["span_id"], ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return lines


def cmd_trace(args: argparse.Namespace) -> int:
    with ServiceClient(host=args.host, port=args.port) as client:
        spans = client.trace(args.job_id)
    if args.json:
        print(json.dumps(spans, indent=2, sort_keys=True))
        return 0
    if not spans:
        print(f"no spans buffered for job {args.job_id} "
              "(evicted from the ring buffer, or the job has not run yet)")
        return 1
    for line in _render_span_tree(spans):
        print(line)
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _add_connection_args(parser: argparse.ArgumentParser, local_ok: bool = True) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="daemon host")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="daemon port")
    if local_ok:
        parser.add_argument(
            "--local",
            action="store_true",
            help="run in-process instead of connecting to a daemon",
        )
        parser.add_argument(
            "--store-dir",
            default=DEFAULT_STORE_DIR,
            help="on-disk result store used with --local",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speculation-sound cache analysis as a service "
        "(PLDI 2019 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the analysis daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    serve.add_argument("--no-store", action="store_true",
                       help="run without the on-disk result store")
    serve.add_argument("--max-workers", type=int, default=2)
    serve.add_argument("--batch-size", type=int, default=8)
    serve.add_argument("--slow-job-seconds", type=float, default=None,
                       help="end-to-end latency above which a job is logged as "
                            "slow (default: REPRO_SLOW_JOB_SECONDS, then 30; "
                            "0 disables)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write every completed span to PATH as JSON lines "
                            "(equivalent to REPRO_TRACE=PATH)")
    serve.add_argument("--incremental", action="store_true", default=None,
                       help="retain analysis snapshots and warm-start "
                            "re-analyses of edited programs (equivalent to "
                            "REPRO_INCREMENTAL=1; omitting the flag defers "
                            "to the environment)")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser("submit", help="analyse one MiniC source file")
    submit.add_argument("source", help="path to a MiniC file, or '-' for stdin")
    submit.add_argument("--kind", choices=[k.value for k in AnalysisKind],
                        default=AnalysisKind.SPECULATIVE.value)
    submit.add_argument("--entry", default=None)
    submit.add_argument("--line-size", type=int, default=64)
    submit.add_argument("--num-lines", type=int, default=None,
                        help="cache lines (default: the paper's 512)")
    _add_cache_geometry_args(submit)
    submit.add_argument("--depth-miss", type=int, default=None,
                        help="speculation depth bound bm")
    submit.add_argument("--scenario-shards", type=int, default=1,
                        help="speculative engine scheduler: 1 = canonical sparse "
                             "fixpoint, N >= 2 = N scenario shards around an outer "
                             "normal-state fixpoint (exact, unwidened results)")
    submit.add_argument("--shard-backend", default=None,
                        choices=("serial", "threads", "processes"),
                        help="where sharded fixpoints execute (bit-identical "
                             "results either way; default: the server's "
                             "REPRO_SHARD_BACKEND, then serial)")
    submit.add_argument("--prune-scenarios", action="store_true",
                        help="taint-prune speculation scenarios with provably "
                             "access-free windows before solving (identical "
                             "verdicts and classifications; fewer slots, "
                             "fewer iterations)")
    submit.add_argument("--depth-hit", type=int, default=None,
                        help="speculation depth bound bh")
    submit.add_argument("--label", default=None)
    submit.add_argument("--json", action="store_true", help="print the raw wire result")
    submit.add_argument("--watch", action="store_true",
                        help="stream the job's lifecycle + progress events live "
                             "while it runs (daemon only)")
    submit.add_argument("--verify", action="store_true",
                        help="recompute in-process and assert identical results")
    submit.add_argument("--trace", default=None, metavar="PATH",
                        help="write this process's spans to PATH as JSON lines "
                             "(covers --local and --verify execution; daemon-side "
                             "spans are served by 'repro trace')")
    _add_connection_args(submit)
    submit.set_defaults(func=cmd_submit)

    wcet = sub.add_parser("wcet", help="WCET comparison on benchmark kernels")
    wcet.add_argument("benchmarks", nargs="*")
    wcet.add_argument("--json", action="store_true",
                      help="print machine-readable rows")
    _add_cache_geometry_args(wcet)
    _add_connection_args(wcet)
    wcet.set_defaults(func=cmd_wcet)

    sidechannel = sub.add_parser("sidechannel",
                                 help="leak detection on crypto kernels")
    sidechannel.add_argument("kernels", nargs="*")
    sidechannel.add_argument("--json", action="store_true",
                             help="print machine-readable rows")
    sidechannel.add_argument("--explain", action="store_true",
                             help="attach a taint blame path (secret source "
                                  "to leaking access) to every leak site")
    _add_cache_geometry_args(sidechannel)
    _add_connection_args(sidechannel)
    sidechannel.set_defaults(func=cmd_sidechannel)

    lint = sub.add_parser(
        "lint",
        help="compile one MiniC file and verify the produced IR",
    )
    lint.add_argument("source", help="path to a MiniC file, or '-' for stdin")
    lint.add_argument("--entry", default=None)
    lint.add_argument("--line-size", type=int, default=64)
    lint.add_argument("--no-unroll", action="store_true",
                      help="lint without unrolling fixed loops")
    lint.add_argument("--no-inline", action="store_true",
                      help="lint without inlining user functions")
    lint.add_argument("--json", action="store_true",
                      help="print findings as JSON")
    lint.set_defaults(func=cmd_lint)

    mitigate = sub.add_parser(
        "mitigate",
        help="synthesise verified fence placements that close detected leaks",
    )
    mitigate.add_argument("kernels", nargs="*",
                          help="crypto kernels (default: all Table-7 kernels)")
    mitigate.add_argument("--source", default=None,
                          help="mitigate one MiniC file instead of kernels")
    mitigate.add_argument("--no-optimize", action="store_true",
                          help="evaluate only the fence-every-branch baseline")
    mitigate.add_argument("--emit-dir", default=None,
                          help="write each chosen patched source to this directory")
    mitigate.add_argument("--json", action="store_true",
                          help="print machine-readable results")
    _add_cache_geometry_args(mitigate)
    _add_connection_args(mitigate)
    mitigate.set_defaults(func=cmd_mitigate)

    stats = sub.add_parser("stats", help="statistics of a running daemon")
    stats.add_argument("--json", action="store_true")
    stats.add_argument("--prom", action="store_true",
                       help="render the metrics registry in Prometheus text "
                            "exposition format")
    _add_connection_args(stats, local_ok=False)
    stats.set_defaults(func=cmd_stats)

    top = sub.add_parser("top", help="live queue/worker view of a running daemon")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (no screen clearing)")
    top.add_argument("--limit", type=int, default=32,
                     help="how many recent jobs to list")
    top.add_argument("--json", action="store_true",
                     help="print the raw top payload")
    _add_connection_args(top, local_ok=False)
    top.set_defaults(func=cmd_top)

    trace = sub.add_parser("trace", help="span tree of one daemon job")
    trace.add_argument("job_id", help="job id as printed by 'repro submit'")
    trace.add_argument("--json", action="store_true",
                       help="print the raw span dicts")
    _add_connection_args(trace, local_ok=False)
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ConfigError
    from repro.mitigation import MitigationError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as error:
        print(f"repro: invalid cache configuration: {error}", file=sys.stderr)
        return 2
    except MitigationError as error:
        print(f"repro: unmitigable: {error}", file=sys.stderr)
        return 3
    except ServiceError as error:
        if "MitigationError" in str(error):
            # A daemon-side MitigationError arrives as a generic protocol
            # error string; keep the exit-code contract identical to
            # --local (3 = unmitigable).
            print(f"repro: unmitigable: {error}", file=sys.stderr)
            return 3
        print(f"repro: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
