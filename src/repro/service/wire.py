"""Wire encoding for the analysis service protocol.

The daemon and its clients exchange line-delimited JSON.  This module
defines the only two payload shapes that cross the socket:

* **requests** — a lossless JSON form of
  :class:`~repro.engine.request.AnalysisRequest` (including the cache
  geometry and speculation knobs), so a client-built request hashes to
  the same compile/result keys on the server;
* **results** — a report-shaped JSON form of
  :class:`~repro.analysis.result.CacheAnalysisResult`: every access-site
  classification plus the aggregate counters.  Abstract fixpoint states
  are deliberately *not* serialised — they are analysis internals, and
  the applications only consume classifications.

:func:`result_fingerprint` gives a canonical digest of the semantic
content of a result (timing and cache provenance excluded), used by
``repro submit --verify`` and the CI smoke job to assert that
service-served results are bit-identical to direct engine execution.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.analysis.result import CacheAnalysisResult
from repro.cache.config import CacheConfig
from repro.engine.request import SHARD_BACKENDS, AnalysisKind, AnalysisRequest
from repro.speculation.config import SpeculationConfig
from repro.speculation.merge import MergeStrategy


class WireError(ValueError):
    """Raised for malformed wire payloads."""


# ----------------------------------------------------------------------
# Configurations
# ----------------------------------------------------------------------
def cache_config_to_wire(config: CacheConfig) -> dict:
    return {
        "num_lines": config.num_lines,
        "line_size": config.line_size,
        "associativity": config.associativity,
        "hit_latency": config.hit_latency,
        "miss_penalty": config.miss_penalty,
        "policy": config.policy,
    }


def cache_config_from_wire(data: Mapping[str, Any]) -> CacheConfig:
    return CacheConfig(
        num_lines=int(data["num_lines"]),
        line_size=int(data["line_size"]),
        associativity=(
            None if data.get("associativity") is None else int(data["associativity"])
        ),
        hit_latency=int(data.get("hit_latency", 2)),
        miss_penalty=int(data.get("miss_penalty", 100)),
        policy=str(data.get("policy", "lru")),
    )


def speculation_to_wire(config: SpeculationConfig) -> dict:
    return {
        "depth_miss": config.depth_miss,
        "depth_hit": config.depth_hit,
        "merge_strategy": config.merge_strategy.value,
        "dynamic_depth_bounding": config.dynamic_depth_bounding,
        "use_shadow_state": config.use_shadow_state,
    }


def speculation_from_wire(data: Mapping[str, Any]) -> SpeculationConfig:
    return SpeculationConfig(
        depth_miss=int(data["depth_miss"]),
        depth_hit=int(data["depth_hit"]),
        merge_strategy=MergeStrategy(data.get("merge_strategy", "just_in_time")),
        dynamic_depth_bounding=bool(data.get("dynamic_depth_bounding", True)),
        use_shadow_state=bool(data.get("use_shadow_state", True)),
    )


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def request_to_wire(request: AnalysisRequest) -> dict:
    return {
        "source": request.source,
        "kind": request.kind.value,
        "entry": request.entry,
        "line_size": request.line_size,
        "cache_config": (
            None
            if request.cache_config is None
            else cache_config_to_wire(request.cache_config)
        ),
        "speculation": (
            None
            if request.speculation is None
            else speculation_to_wire(request.speculation)
        ),
        "use_shadow_state": request.use_shadow_state,
        "unroll": request.unroll,
        "inline": request.inline,
        "max_unroll_iterations": request.max_unroll_iterations,
        "scenario_shards": request.scenario_shards,
        "prune_scenarios": request.prune_scenarios,
        "shard_backend": request.shard_backend,
        "label": request.label,
        "warm_from": request.warm_from,
    }


def request_from_wire(data: Mapping[str, Any]) -> AnalysisRequest:
    try:
        source = data["source"]
    except KeyError as error:
        raise WireError("request payload is missing 'source'") from error
    if not isinstance(source, str):
        raise WireError(f"request 'source' must be a string, got {type(source).__name__}")
    try:
        kind = AnalysisKind(data.get("kind", AnalysisKind.SPECULATIVE.value))
    except ValueError as error:
        raise WireError(f"unknown analysis kind {data.get('kind')!r}") from error
    shard_backend = data.get("shard_backend")
    if shard_backend is not None and shard_backend not in SHARD_BACKENDS:
        raise WireError(
            f"unknown shard backend {shard_backend!r} "
            f"(expected one of {SHARD_BACKENDS})"
        )
    # Pre-incremental clients simply omit the lineage handle; a handle the
    # server has no snapshot for silently degrades to a cold run, so no
    # existence check belongs here — only a shape check.
    warm_from = data.get("warm_from")
    if warm_from is not None and not isinstance(warm_from, str):
        raise WireError(
            f"request 'warm_from' must be a string result key or null, "
            f"got {type(warm_from).__name__}"
        )
    try:
        return AnalysisRequest(
            source=source,
            kind=kind,
            entry=data.get("entry"),
            line_size=int(data.get("line_size", 64)),
            cache_config=(
                None
                if data.get("cache_config") is None
                else cache_config_from_wire(data["cache_config"])
            ),
            speculation=(
                None
                if data.get("speculation") is None
                else speculation_from_wire(data["speculation"])
            ),
            use_shadow_state=bool(data.get("use_shadow_state", True)),
            unroll=bool(data.get("unroll", True)),
            inline=bool(data.get("inline", True)),
            max_unroll_iterations=int(data.get("max_unroll_iterations", 4096)),
            # Payloads from pre-sharding clients default to the canonical
            # (unsharded) engine; pre-backend payloads default to the
            # server's own backend resolution (env, then serial).
            scenario_shards=int(data.get("scenario_shards", 1)),
            # Pre-taint clients never prune (legacy default off), so
            # their result keys — and any stored results — are unchanged.
            prune_scenarios=bool(data.get("prune_scenarios", False)),
            shard_backend=shard_backend,
            label=data.get("label"),
            warm_from=warm_from,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed request payload: {error}") from error


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_to_wire(result: CacheAnalysisResult) -> dict:
    classifications = [
        {
            "block": c.block,
            "instruction_index": c.instruction_index,
            "symbol": c.ref.symbol,
            "line": c.ref.line,
            "is_write": c.ref.is_write,
            "kind": c.kind.name.lower(),
            "must_hit": c.must_hit,
            "speculative": c.speculative,
            "scenario_color": c.scenario_color,
            "secret_indexed": c.secret_indexed,
            "secret_dependent": c.secret_dependent,
        }
        for c in result.classifications
    ]
    return {
        "program_name": result.program_name,
        "cache_config": cache_config_to_wire(result.cache_config),
        "speculation": (
            None if result.speculation is None else speculation_to_wire(result.speculation)
        ),
        "access_sites": result.access_count,
        "must_hits": result.hit_count,
        "misses": result.miss_count,
        "speculative_misses": result.speculative_miss_count,
        "speculative_branches": result.num_speculative_branches,
        "virtual_edges": result.num_virtual_edges,
        "virtual_edges_active": result.num_virtual_edges_active,
        "iterations": result.iterations,
        "widenings": result.widenings,
        "leak_detected": result.leak_detected,
        "classifications": classifications,
        "analysis_time": result.analysis_time,
        "from_cache": result.from_cache,
        "provenance": (
            None
            if getattr(result, "provenance", None) is None
            else result.provenance.to_wire()
        ),
    }


#: Wire-result keys that describe *how* a result was produced rather
#: than *what* was computed; excluded from the semantic fingerprint.
#: The provenance stamp carries a wall-clock timestamp and the executing
#: backend, so it must never enter the digest — "replayed from the
#: store" and "recomputed on another backend" compare equal exactly when
#: the verdicts are bit-identical.
_PROVENANCE_KEYS = ("analysis_time", "from_cache", "provenance")


def result_fingerprint(result: "CacheAnalysisResult | Mapping[str, Any]") -> str:
    """Canonical digest of a result's semantic content.

    Accepts either a live :class:`CacheAnalysisResult` or its wire dict,
    and produces the same digest for both, with timing and cache
    provenance stripped — so "served from the store" and "recomputed
    from scratch" compare equal exactly when the analysis verdicts are
    bit-identical.
    """
    wire = dict(result) if isinstance(result, Mapping) else result_to_wire(result)
    for key in _PROVENANCE_KEYS:
        wire.pop(key, None)
    canonical = json.dumps(wire, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
