"""Sharded, content-addressed on-disk result store.

The store is the engine's second cache tier: entries are keyed by the
same content hash as the in-memory result cache
(:meth:`~repro.engine.request.AnalysisRequest.result_key`), so a result
computed by any process — a daemon, a batch worker, a one-shot CLI run —
is replayable by every later process that builds the same request.

Layout and durability:

* keys are 64-character SHA-256 hex digests; entries live in
  ``root/<key[:2]>/<key>.res`` so no directory grows beyond ~1/256 of
  the store (the usual content-addressed sharding, cf. ``.git/objects``);
* writes are atomic: the payload goes to a temporary file in the final
  shard directory and is published with :func:`os.replace`, so readers
  never observe a half-written entry and concurrent writers of the same
  key simply race to an identical result;
* every entry starts with a versioned header and a payload checksum.
  Reads tolerate arbitrary corruption — bad magic, a stale format
  version, truncation, checksum mismatch, unpicklable payload — by
  deleting the entry and reporting a miss, which makes the store safe to
  reuse across releases and crashes: the worst case is recomputation.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.obs import metrics

#: Bump whenever the pickled payload layout changes incompatibly; every
#: entry written under an older version is evicted on first read.
STORE_FORMAT_VERSION = 1

#: First header line of every entry (magic + format version).
_MAGIC = b"repro-result-store"

#: Entry filename suffix.
_SUFFIX = ".res"

_KEY_ALPHABET = frozenset("0123456789abcdef")


class StoreError(ValueError):
    """Raised for malformed keys; never for on-disk corruption (corrupt
    entries are evicted and reported as misses)."""


@dataclass
class StoreStats:
    """Accounting for one store instance (its own process only)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_evicted: int = 0
    version_evicted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "StoreStats":
        return StoreStats(
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            corrupt_evicted=self.corrupt_evicted,
            version_evicted=self.version_evicted,
        )

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate, {self.writes} writes, "
            f"{self.corrupt_evicted} corrupt + {self.version_evicted} stale evicted)"
        )


class ResultStore:
    """A persistent key → analysis-result mapping under one directory.

    Values are pickled Python objects (analysis results are plain
    dataclasses, already required to be picklable by the process-pool
    batch path).  All methods are thread-safe; cross-process safety
    follows from atomic publication via :func:`os.replace`.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        version: int = STORE_FORMAT_VERSION,
        fsync: bool = False,
    ):
        self.root = Path(root)
        self.version = version
        self.fsync = fsync
        self.stats = StoreStats()
        self._stats_lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths and headers
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """The entry path for ``key`` (which must be a hex digest)."""
        if len(key) < 3 or not set(key) <= _KEY_ALPHABET:
            raise StoreError(f"store keys must be hex digests, got {key!r}")
        return self.root / key[:2] / f"{key}{_SUFFIX}"

    def _header(self, digest: str) -> bytes:
        return b"%s v%d\n%s\n" % (_MAGIC, self.version, digest.encode("ascii"))

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Return the stored value for ``key``, or ``default``.

        Any malformed entry — wrong magic, stale version, truncated or
        corrupted payload — is deleted and treated as a miss.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self._count("misses")
            return default
        except OSError:
            self._evict(path, "corrupt_evicted")
            return default

        value, failure = self._decode(raw)
        if failure is not None:
            self._evict(path, failure)
            return default
        self._count("hits")
        return value

    def _decode(self, raw: bytes) -> tuple[Any, str | None]:
        """Parse one entry; returns ``(value, None)`` or
        ``(None, stats_field)`` naming the eviction reason."""
        magic_end = raw.find(b"\n")
        if magic_end < 0:
            return None, "corrupt_evicted"
        magic_line = raw[:magic_end]
        if not magic_line.startswith(_MAGIC + b" v"):
            return None, "corrupt_evicted"
        try:
            version = int(magic_line[len(_MAGIC) + 2 :])
        except ValueError:
            return None, "corrupt_evicted"
        if version != self.version:
            return None, "version_evicted"
        digest_end = raw.find(b"\n", magic_end + 1)
        if digest_end < 0:
            return None, "corrupt_evicted"
        digest = raw[magic_end + 1 : digest_end].decode("ascii", errors="replace")
        payload = raw[digest_end + 1 :]
        if hashlib.sha256(payload).hexdigest() != digest:
            return None, "corrupt_evicted"
        try:
            return pickle.loads(payload), None
        except Exception:
            # Checksum passed but the payload does not unpickle in this
            # process (e.g. written by an incompatible code revision
            # under the same format version) — still just a miss.
            return None, "corrupt_evicted"

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = self._header(hashlib.sha256(payload).hexdigest()) + payload
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("writes")
        metrics().counter("store.bytes_written").inc(len(blob))

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix == _SUFFIX:
                    yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def size_bytes(self) -> int:
        """Total on-disk payload size (headers included)."""
        total = 0
        for key in self.keys():
            try:
                total += self.path_for(key).stat().st_size
            except OSError:
                pass
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _count(self, field_name: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, field_name, getattr(self.stats, field_name) + amount)
        metrics().counter(f"store.{field_name}").inc(amount)

    def _evict(self, path: Path, reason_field: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        with self._stats_lock:
            setattr(self.stats, reason_field, getattr(self.stats, reason_field) + 1)
            self.stats.misses += 1
        metrics().counter(f"store.{reason_field}").inc()
        metrics().counter("store.misses").inc()
