"""Synthetic counterparts of the Table-4 cryptographic benchmark set.

Each entry provides the *kernel* part only (tables plus a processing
function); :mod:`repro.bench.client` wraps it in the Figure-10 client
harness (preload an S-box, touch an attacker-controlled buffer, run the
kernel, access the S-box with a secret index).

What matters for the experiment is the kernel's *speculative footprint
asymmetry*: kernels whose data-dependent branches touch different tables
on the two sides add extra cache pressure only when speculation is
modelled, which is what lets the speculative analysis find leaks the
baseline misses.  Kernels without such branches (or whose branches touch
the same lines on both sides) stay indistinguishable — mirroring the
half/half split of the paper's Table 7.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class CryptoKernel:
    """Descriptor of one crypto benchmark kernel."""

    name: str
    source: str
    entry: str
    description: str
    asymmetric_branch: bool


def _table(name: str, bytes_: int, element: str = "char") -> str:
    length = bytes_ if element == "char" else bytes_ // 4
    return f"{element} {name}[{length}];"


def hash_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """hpn-ssh hash: a chaining loop over the message plus a finalisation
    branch that pads with one of two constant tables."""
    pad_bytes = 2 * line_size
    source = f"""
// hash (hpn-ssh): iterated compression with padding selection.
{_table("hash_pad_even", pad_bytes)}
{_table("hash_pad_odd", pad_bytes)}
int hash_state; int hash_len;

int hash_process(int message, int length) {{
  int digest;
  int round;
  digest = hash_state;
  for (round = 0; round < 8; round = round + 1) {{
    digest = (digest * 33) + message + round;
  }}
  if (length % 2 == 0) {{
    digest = digest + hash_pad_even[0] + hash_pad_even[{line_size}];
  }} else {{
    digest = digest + hash_pad_odd[0] + hash_pad_odd[{line_size}];
  }}
  hash_len = length;
  return digest;
}}
"""
    return CryptoKernel(
        name="hash",
        source=source,
        entry="hash_process",
        description="hpn-ssh hash function",
        asymmetric_branch=True,
    )


def encoder_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """LibTomCrypt hex encoder: upper-case vs lower-case alphabet tables."""
    alphabet_bytes = line_size
    source = f"""
// encoder (LibTomCrypt): hex encode a string.
{_table("hex_upper", alphabet_bytes)}
{_table("hex_lower", alphabet_bytes)}
{_table("encoder_out", 2 * line_size)}
int encoder_flags;

int encoder_process(int data, int length) {{
  int acc;
  acc = encoder_out[0];
  if (encoder_flags > 0) {{
    acc = acc + hex_upper[0];
  }} else {{
    acc = acc + hex_lower[0];
  }}
  encoder_out[{line_size}];
  return acc + data + length;
}}
"""
    return CryptoKernel(
        name="encoder",
        source=source,
        entry="encoder_process",
        description="LibTomCrypt hex encoder",
        asymmetric_branch=True,
    )


def chacha20_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """chacha20poly1305: ARX rounds over the state plus a tag-selection
    branch touching one of two constant tables."""
    const_bytes = 2 * line_size
    source = f"""
// chacha20 (LibTomCrypt): chacha20poly1305 AEAD.
{_table("chacha_sigma", const_bytes, "int")}
{_table("chacha_tau", const_bytes, "int")}
int chacha_state[16];
int chacha_counter;

int chacha20_process(int data, int length) {{
  int a; int b;
  int round;
  a = chacha_state[0] + data;
  b = chacha_state[4] + chacha_counter;
  for (round = 0; round < 10; round = round + 1) {{
    a = a + b;
    b = (b << 7) ^ a;
  }}
  if (length > 32) {{
    a = a + chacha_sigma[0] + chacha_sigma[{line_size // 4}];
  }} else {{
    a = a + chacha_tau[0] + chacha_tau[{line_size // 4}];
  }}
  chacha_state[8];
  return a + b;
}}
"""
    return CryptoKernel(
        name="chacha20",
        source=source,
        entry="chacha20_process",
        description="LibTomCrypt chacha20poly1305 cipher",
        asymmetric_branch=True,
    )


def ocb_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """OCB mode: offset table plus a final-block branch with distinct
    padding tables for full and partial blocks."""
    offset_bytes = 2 * line_size
    source = f"""
// ocb (LibTomCrypt): offset codebook mode.
{_table("ocb_offsets", offset_bytes, "int")}
{_table("ocb_pad_full", line_size)}
{_table("ocb_pad_partial", line_size)}
int ocb_nonce;

int ocb_process(int data, int length) {{
  int checksum;
  int block;
  checksum = ocb_nonce;
  for (block = 0; block < 4; block = block + 1) {{
    checksum = checksum ^ (data + block);
  }}
  checksum = checksum + ocb_offsets[0] + ocb_offsets[{line_size // 4}];
  if (length % 16 == 0) {{
    checksum = checksum + ocb_pad_full[0];
  }} else {{
    checksum = checksum + ocb_pad_partial[0];
  }}
  return checksum;
}}
"""
    return CryptoKernel(
        name="ocb",
        source=source,
        entry="ocb_process",
        description="LibTomCrypt OCB implementation",
        asymmetric_branch=True,
    )


def des_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """openssl DES: the kernel carries its own user-controlled schedule
    buffer (this is why the paper reports a leak even with a zero-byte
    client buffer), plus asymmetric permutation tables."""
    schedule_lines = max(4, int(num_lines * 0.73))
    schedule_bytes = schedule_lines * line_size
    source = f"""
// des (openssl): Feistel rounds over a user-sized key schedule.
{_table("des_schedule", schedule_bytes)}
{_table("des_perm_left", line_size)}
{_table("des_perm_right", line_size)}
int des_rounds;

int des_process(int data, int length) {{
  reg int i;
  int left; int right;
  left = data;
  right = length;
  for (i = 0; i < {schedule_bytes}; i += {line_size}) {{
    des_schedule[i];                          // walk the key schedule
  }}
  if (left > right) {{
    left = left ^ des_perm_left[0];
  }} else {{
    right = right ^ des_perm_right[0];
  }}
  des_rounds = left + right;
  return des_rounds;
}}
"""
    return CryptoKernel(
        name="des",
        source=source,
        entry="des_process",
        description="openssl DES cipher",
        asymmetric_branch=True,
    )


def aes_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """LibTomCrypt AES: table-based rounds with *no* data-dependent branch —
    both analyses agree on its cache behaviour."""
    te_bytes = 4 * line_size
    source = f"""
// aes (LibTomCrypt): T-table rounds, branch-free data path.
{_table("aes_te0", te_bytes, "int")}
{_table("aes_te1", te_bytes, "int")}
int aes_round_keys[16];

int aes_process(int data, int length) {{
  int state;
  int round;
  state = data ^ aes_round_keys[0];
  for (round = 0; round < 10; round = round + 1) {{
    state = state ^ aes_te0[0] ^ aes_te1[0];
    state = state + aes_round_keys[4];
  }}
  return state + length;
}}
"""
    return CryptoKernel(
        name="aes",
        source=source,
        entry="aes_process",
        description="LibTomCrypt AES implementation",
        asymmetric_branch=False,
    )


def str2key_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """openssl DES string-to-key: a branch-free (constant-time style)
    parity fix-up, so speculation adds no cache pressure."""
    odd_bytes = 2 * line_size
    source = f"""
// str2key (openssl): key preparation with branch-free parity fix-up.
{_table("parity_table", odd_bytes)}
int str2key_salt;

int str2key_process(int data, int length) {{
  int key;
  int i;
  int mask;
  key = str2key_salt;
  for (i = 0; i < 8; i = i + 1) {{
    key = (key << 1) + data + i;
  }}
  mask = (length > 8);
  key = key + mask * parity_table[0] - (1 - mask) * parity_table[0];
  return key;
}}
"""
    return CryptoKernel(
        name="str2key",
        source=source,
        entry="str2key_process",
        description="openssl DES key preparation",
        asymmetric_branch=False,
    )


def seed_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """linux-tegra SEED: branch-free SS-box rounds."""
    ss_bytes = 2 * line_size
    source = f"""
// seed (linux-tegra): SEED block cipher rounds.
{_table("seed_ss0", ss_bytes, "int")}
{_table("seed_ss1", ss_bytes, "int")}
int seed_subkeys[8];

int seed_process(int data, int length) {{
  int left; int right;
  int round;
  left = data;
  right = length;
  for (round = 0; round < 8; round = round + 1) {{
    left = left ^ seed_ss0[0];
    right = right ^ seed_ss1[0];
    left = left + seed_subkeys[0];
  }}
  return left ^ right;
}}
"""
    return CryptoKernel(
        name="seed",
        source=source,
        entry="seed_process",
        description="linux-tegra SEED cipher",
        asymmetric_branch=False,
    )


def camellia_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """linux-tegra Camellia: branch-free Feistel rounds (constant-time
    style), so speculation adds no cache pressure."""
    sigma_bytes = 2 * line_size
    source = f"""
// camellia (linux-tegra): Feistel rounds with FL/FL^-1 layers.
{_table("camellia_sigma", sigma_bytes, "int")}
int camellia_subkeys[12];

int camellia_process(int data, int length) {{
  int left; int right;
  int round;
  left = data ^ camellia_subkeys[0];
  right = length ^ camellia_subkeys[4];
  for (round = 0; round < 6; round = round + 1) {{
    left = left + camellia_sigma[0];
    right = right ^ left;
  }}
  left = left + camellia_sigma[{line_size // 4}];
  return left ^ right;
}}
"""
    return CryptoKernel(
        name="camellia",
        source=source,
        entry="camellia_process",
        description="linux-tegra Camellia cipher",
        asymmetric_branch=False,
    )


def salsa_kernel(num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """linux-tegra Salsa20: pure ARX, no tables beyond the state."""
    source = """
// salsa (linux-tegra): Salsa20 stream cipher quarter rounds.
int salsa_state[16];
int salsa_nonce;

int salsa_process(int data, int length) {
  int a; int b; int c;
  int round;
  a = salsa_state[0] + data;
  b = salsa_state[4] + salsa_nonce;
  c = salsa_state[8] + length;
  for (round = 0; round < 10; round = round + 1) {
    a = a + (b << 7);
    b = b ^ (c << 9);
    c = c + (a << 13);
  }
  return a ^ b ^ c;
}
"""
    return CryptoKernel(
        name="salsa",
        source=source,
        entry="salsa_process",
        description="linux-tegra Salsa20 stream cipher",
        asymmetric_branch=False,
    )


#: Registry of the Table-4 benchmark set: name -> kernel generator.
CRYPTO_BENCHMARKS: dict[str, Callable[[int, int], CryptoKernel]] = {
    "hash": hash_kernel,
    "encoder": encoder_kernel,
    "chacha20": chacha20_kernel,
    "ocb": ocb_kernel,
    "aes": aes_kernel,
    "str2key": str2key_kernel,
    "des": des_kernel,
    "seed": seed_kernel,
    "camellia": camellia_kernel,
    "salsa": salsa_kernel,
}


def crypto_kernel(name: str, num_lines: int = 64, line_size: int = 64) -> CryptoKernel:
    """Return the kernel descriptor for one Table-4 benchmark."""
    try:
        generator = CRYPTO_BENCHMARKS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown crypto benchmark {name!r}; known: {sorted(CRYPTO_BENCHMARKS)}"
        ) from exc
    return generator(num_lines, line_size)
